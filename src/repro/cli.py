"""Command-line interface: generate traces, run ad-hoc queries, explain.

Subcommands (also reachable as ``python -m repro.cli``):

* ``generate`` — synthesise a feed and persist it as a trace file::

      python -m repro.cli generate --feed research --seconds 60 \\
          --rate-scale 0.01 --out trace.bin

* ``query`` — run one GSQL query over a trace file and print the rows::

      python -m repro.cli query --trace trace.bin \\
          --sql "SELECT tb, sum(len) FROM TCP GROUP BY time/20 as tb"
      python -m repro.cli query examples/queries/subset_sum.gsql

  The query comes from a ``.gsql`` file (positional) or ``--sql``; with
  no ``--trace`` a default research-center feed is synthesised in
  memory.  The subset-sum / reservoir / heavy-hitters / distinct SFUN
  packs are pre-registered, so the paper's sampling queries work out of
  the box (``--relax-factor`` configures the subset-sum pack).
  Observability (docs/OBSERVABILITY.md): ``--metrics-out m.json`` dumps
  the metrics registry (``.prom``/``.txt`` renders Prometheus text),
  ``--trace-out t.jsonl`` records window/cleaning trace events, and
  ``--profile`` charges per-operator wall time into
  ``operator_seconds``.

* ``serve`` — run many standing queries over one feed concurrently
  (docs/SERVING.md)::

      python -m repro.cli serve examples/queries/*.gsql --report
      python -m repro.cli serve examples/queries/big_flows.gsql \\
          --listen 127.0.0.1:9090 --pace 0.001
      python -m repro.cli serve --journal serve.wal examples/queries/*.gsql
      python -m repro.cli serve --journal serve.wal --resume

  Every ``.gsql`` file becomes one standing query; queries whose
  compiled plans share a low-level prefix are served off one shared
  scan (disable with ``--no-share`` — results are byte-identical either
  way).  ``--tenant-quota acme=5000`` caps a tenant's spend to that
  many cost-model cycles per offered record, shedding its batches at
  the serving edge once it exceeds the budget.  ``--listen HOST:PORT``
  exposes the HTTP control plane (``/metrics``, ``/queries``,
  ``/healthz``) while the feed drains; ``--journal``/``--resume`` make
  the standing-query set itself durable.

* ``explain`` — compile a query and print its plan without running it.

* ``lint`` — statically analyze queries without running them::

      python -m repro.cli lint examples/queries/subset_sum.gsql
      python -m repro.cli lint --sql "SELECT srcIP FROM TCP GROUP BY srcIP"
      python -m repro.cli lint --target shards=4,durable examples/queries/*.gsql
      python -m repro.cli lint --format sarif --output lint.sarif examples/queries/*.gsql

  Prints every diagnostic with source carets; exits 1 on errors (or, with
  ``--strict``, on any diagnostic).  ``--target shards=4,durable,...``
  additionally runs the SA3xx execution-safety rules, reporting at
  compile time every deployment the sharded/durable runtimes would
  refuse.  ``--format json|sarif`` emits a machine-readable report
  (SARIF 2.1.0 uploads straight to GitHub code scanning); ``--output``
  writes it to a file while the human summary stays on stderr.
  ``query`` also lints before running and prints warnings to stderr;
  disable with ``--no-lint`` or escalate with ``--strict``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.dsms.durability import DurableRunner
from repro.dsms.explain import explain
from repro.dsms.parser import compile_query
from repro.dsms.rebalance import RebalancePolicy
from repro.dsms.resilience import SupervisionPolicy
from repro.dsms.runtime import Gigascope
from repro.dsms.sharded import ShardedGigascope
from repro.errors import ExecutionError, PlanningError, SourceError
from repro.obs import TraceSink, write_metrics, write_trace
from repro.streams.persistence import load_trace, save_trace
from repro.streams.schema import TCP_SCHEMA
from repro.streams.sources import (
    QuarantineStream,
    RetryPolicy,
    resilient_trace_source,
)
from repro.streams.traces import (
    TraceConfig,
    data_center_feed,
    ddos_feed,
    research_center_feed,
)
from repro.algorithms.bindings import (
    basic_subset_sum_library,
    distinct_sampling_library,
    heavy_hitters_library,
    reservoir_library,
    subset_sum_library,
)

_FEEDS = {
    "research": research_center_feed,
    "datacenter": data_center_feed,
    "ddos": ddos_feed,
}


def _standard_instance(
    relax_factor: float,
    shards: int = 0,
    shard_processes: bool = False,
    supervise: bool = False,
    max_restarts: int = 2,
    shed_threshold: Optional[int] = None,
    trace_sink: Optional[TraceSink] = None,
    profile: bool = False,
    quarantine: Optional[QuarantineStream] = None,
    validate_admission: bool = False,
    vectorize: bool = False,
    rebalance=None,
):
    """A DSMS instance with the TCP stream and all SFUN packs loaded.

    ``shards > 0`` returns a :class:`ShardedGigascope` running the query
    hash-partitioned across that many shards instead of serially.
    ``vectorize`` enables the columnar batch engine (serial instances
    only; eligible operators fall back per plan, see DESIGN.md §11).
    ``supervise`` runs shard workers under crash supervision with up to
    ``max_restarts`` restarts each; ``shed_threshold`` enables overload
    shedding (ring-backlog admission control, and — supervised — input
    queue shedding).  ``trace_sink`` / ``profile`` attach the
    observability layer (docs/OBSERVABILITY.md).  ``quarantine`` /
    ``validate_admission`` route malformed records to a dead-letter
    stream at admission instead of raising (docs/RESILIENCE.md).
    """
    if shards > 0:
        gs = ShardedGigascope(
            shards=shards,
            processes=shard_processes,
            supervise=supervise,
            supervision=SupervisionPolicy(max_restarts=max_restarts)
            if supervise
            else None,
            shed_threshold=shed_threshold,
            trace=trace_sink,
            quarantine=quarantine,
            validate_admission=validate_admission,
            rebalance=rebalance,
        )
    else:
        gs = Gigascope(
            shed_threshold=shed_threshold,
            trace=trace_sink,
            profile=profile,
            quarantine=quarantine,
            validate_admission=validate_admission,
            vectorize=vectorize,
        )
    gs.register_stream(TCP_SCHEMA)
    gs.use_stateful_library(subset_sum_library(relax_factor=relax_factor))
    gs.use_stateful_library(basic_subset_sum_library())
    gs.use_stateful_library(reservoir_library())
    gs.use_stateful_library(heavy_hitters_library())
    gs.use_stateful_library(distinct_sampling_library())
    return gs


def _cmd_generate(args: argparse.Namespace) -> int:
    config = TraceConfig(
        duration_seconds=args.seconds,
        rate_scale=args.rate_scale,
        seed=args.seed,
    )
    feed = _FEEDS[args.feed](config)
    count = save_trace(feed, args.out)
    print(f"wrote {count:,} records to {args.out}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if args.file is None and args.sql is None:
        print("query needs a .gsql file or --sql", file=sys.stderr)
        return 2
    if args.file is not None and args.sql is not None:
        print("query takes a .gsql file or --sql, not both", file=sys.stderr)
        return 2
    if args.file is not None:
        try:
            with open(args.file, "r", encoding="utf-8") as fh:
                sql = fh.read()
        except OSError as exc:
            print(f"cannot read {args.file}: {exc}", file=sys.stderr)
            return 2
    else:
        sql = args.sql

    if args.resume and not args.journal:
        print("--resume needs --journal <path>", file=sys.stderr)
        return 2

    # The hardened ingest edge (docs/RESILIENCE.md): a dead-letter
    # quarantine plus admission validation whenever the caller asked for
    # any of its knobs, and a retrying torn-tail-tolerant trace source
    # when --source-retries is given.
    harden = args.quarantine_out is not None or args.source_retries is not None
    quarantine = QuarantineStream() if harden else None

    if args.trace is not None:
        if args.source_retries is not None:
            policy = RetryPolicy(max_retries=args.source_retries)
            try:
                trace = list(
                    resilient_trace_source(
                        args.trace, policy, quarantine=quarantine, name="cli"
                    )
                )
            except SourceError as exc:
                print(f"cannot read {args.trace}: {exc}", file=sys.stderr)
                return 1
        else:
            trace = load_trace(args.trace)
    else:
        # No trace given: synthesise the default research-center feed
        # (same parameters as `generate` defaults) in memory.
        config = TraceConfig(duration_seconds=60, rate_scale=0.01, seed=20050614)
        trace = list(research_center_feed(config))
        print(
            f"-- no --trace: synthesised research feed ({len(trace):,} records)",
            file=sys.stderr,
        )
    if not trace:
        print("trace is empty", file=sys.stderr)
        return 1

    trace_sink = TraceSink() if args.trace_out else None
    if args.profile and args.shards > 0:
        print("-- --profile is serial-only; ignored with --shards", file=sys.stderr)
    if args.vectorize and args.shards > 0:
        print("--vectorize is not yet supported with --shards", file=sys.stderr)
        return 2
    rebalance = None
    if args.rebalance:
        if args.shards <= 0:
            print("--rebalance needs --shards N", file=sys.stderr)
            return 2
        if args.shard_processes and not args.supervise:
            print(
                "--rebalance with --shard-processes needs --supervise"
                " (migration runs at the supervisor's checkpoint barrier)",
                file=sys.stderr,
            )
            return 2
        rebalance = RebalancePolicy(
            check_interval=args.rebalance_interval,
            imbalance_threshold=args.rebalance_threshold,
            max_shards=args.max_shards,
            curate=args.rebalance_curate,
        )
    gs = _standard_instance(
        args.relax_factor,
        shards=args.shards,
        shard_processes=args.shard_processes,
        supervise=args.supervise,
        max_restarts=args.max_restarts,
        shed_threshold=args.shed_threshold,
        trace_sink=trace_sink,
        profile=args.profile,
        quarantine=quarantine,
        validate_admission=harden,
        vectorize=args.vectorize,
        rebalance=rebalance,
    )
    # Re-register the trace's own schema if it is not the stock TCP one.
    if trace[0].schema != TCP_SCHEMA:
        if args.shards > 0:
            gs = ShardedGigascope(
                shards=args.shards,
                processes=args.shard_processes,
                supervise=args.supervise,
                supervision=SupervisionPolicy(max_restarts=args.max_restarts)
                if args.supervise
                else None,
                shed_threshold=args.shed_threshold,
                trace=trace_sink,
                quarantine=quarantine,
                validate_admission=harden,
                rebalance=rebalance,
            )
        else:
            gs = Gigascope(
                shed_threshold=args.shed_threshold,
                trace=trace_sink,
                profile=args.profile,
                quarantine=quarantine,
                validate_admission=harden,
                vectorize=args.vectorize,
            )
        gs.register_stream(trace[0].schema)
    if args.lint:
        result = gs.lint(sql, name="cli")
        if result.diagnostics:
            print(result.render(), file=sys.stderr)
        if result.errors or (args.strict and result.diagnostics):
            return 1
    try:
        handle = gs.add_query(sql, name="cli")
    except PlanningError as exc:
        print(f"cannot run this query under --shards: {exc}", file=sys.stderr)
        print(
            "-- `repro lint --target shards=N[,durable,...]` reports this"
            " statically (rules SA301/SA302)",
            file=sys.stderr,
        )
        return 2
    if args.vectorize and getattr(handle.operator, "execution_mode", "tuple") != "vectorized":
        reason = (
            getattr(handle.operator, "vectorize_fallback", None)
            or "this plan kind runs per-tuple"
        )
        print(f"-- --vectorize: tuple-path fallback ({reason})", file=sys.stderr)
    if args.journal is not None:
        try:
            runner = DurableRunner(gs, args.journal)
        except ExecutionError as exc:
            print(f"cannot journal this run: {exc}", file=sys.stderr)
            return 2
        if args.resume:
            consumed = runner.resume(iter(trace))
            print(
                f"-- resumed from {args.journal}; {consumed:,} records total",
                file=sys.stderr,
            )
        else:
            consumed = runner.run(iter(trace))
            print(
                f"-- journalled {consumed:,} records to {args.journal}",
                file=sys.stderr,
            )
    else:
        gs.run(iter(trace))
    rows = handle.results
    limit = args.limit if args.limit is not None else len(rows)
    print("\t".join(handle.output_schema.names))
    for row in rows[:limit]:
        print("\t".join(str(value) for value in row.values))
    if limit < len(rows):
        print(f"... ({len(rows) - limit} more rows)")
    print(f"-- {len(rows)} rows", file=sys.stderr)
    _print_run_report(gs, force=args.report)
    if args.metrics_out:
        count = write_metrics(gs.metrics, args.metrics_out)
        print(f"-- wrote {count} metric series to {args.metrics_out}", file=sys.stderr)
    if args.trace_out:
        count = write_trace(trace_sink, args.trace_out)
        print(f"-- wrote {count} trace events to {args.trace_out}", file=sys.stderr)
    if args.quarantine_out:
        count = quarantine.write_jsonl(args.quarantine_out)
        print(
            f"-- wrote {count} quarantined record(s) to {args.quarantine_out}"
            f" ({quarantine.total} total, {quarantine.evicted} evicted)",
            file=sys.stderr,
        )
    return 0


def _print_run_report(gs, force: bool = False) -> None:
    """Degradation counters to stderr: drops, backlog, shed, late tuples.

    Printed only when something was actually dropped/shed (the healthy
    path stays quiet), or always with ``--report``.
    """
    report = gs.run_report()
    for stream, counters in sorted(report["streams"].items()):
        if force or any(counters.values()):
            print(
                f"-- stream {stream}: drops={counters['drops']}"
                f" backlog={counters['backlog']} shed={counters['shed']}"
                f" quarantined={counters['quarantined']}",
                file=sys.stderr,
            )
    for name, counters in sorted(report["queries"].items()):
        if force or any(counters.values()):
            rendered = " ".join(f"{key}={value}" for key, value in sorted(counters.items()))
            print(f"-- query {name}: {rendered}", file=sys.stderr)
    for name, reason in sorted(
        report.get("vectorize", {}).get("fallbacks", {}).items()
    ):
        print(
            f"-- vectorize fallback {name}: {reason}",
            file=sys.stderr,
        )
    rebalance = report.get("rebalance")
    if rebalance is not None and (force or rebalance["plans"] or rebalance["deferred"]):
        routing = rebalance["routing"]
        print(
            f"-- rebalance: plans={rebalance['plans']}"
            f" deferred={rebalance['deferred']}"
            f" migrated_groups={rebalance['migrated_groups']}"
            f" migrated_supergroups={rebalance['migrated_supergroups']}"
            f" moved_slots={rebalance['moved_slots']}"
            f" pinned_keys={rebalance['pinned_keys']}"
            f" scale_ups={rebalance['scale_ups']}"
            f" scale_downs={rebalance['scale_downs']}"
            f" curated_records={rebalance['curated_records']}"
            f" routing=v{routing['version']}/{routing['shard_count']} shards",
            file=sys.stderr,
        )
    supervision = getattr(gs, "last_supervision", None)
    if supervision is not None and (
        force or supervision.total_restarts or supervision.total_shed
    ):
        print(
            f"-- supervision: restarts={supervision.total_restarts}"
            f" checkpoints={sum(supervision.checkpoints.values())}"
            f" replayed_batches={sum(supervision.replayed_batches.values())}"
            f" shed_records={supervision.total_shed}",
            file=sys.stderr,
        )
        for failure in supervision.failures:
            print(f"--   {failure}", file=sys.stderr)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.execsafety import parse_target
    from repro.analysis.linter import lint_query
    from repro.analysis.sarif import render_report

    if not args.files and args.sql is None:
        print("lint needs one or more query files or --sql", file=sys.stderr)
        return 2
    if args.files and args.sql is not None:
        print("lint takes query files or --sql, not both", file=sys.stderr)
        return 2
    target = None
    if args.target is not None:
        try:
            target = parse_target(args.target)
        except ValueError as exc:
            print(f"bad --target: {exc}", file=sys.stderr)
            return 2

    sources: List[tuple] = []
    if args.sql is not None:
        sources.append(("<sql>", args.sql))
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                sources.append((path, fh.read()))
        except OSError as exc:
            print(f"cannot read {path}: {exc}", file=sys.stderr)
            return 2

    registries = _standard_instance(args.relax_factor).registries
    results = [
        lint_query(text, registries, filename=filename, target=target)
        for filename, text in sources
    ]

    if args.format == "text":
        for result in results:
            if result.diagnostics:
                print(result.render())
            else:
                print(f"{result.filename}: ok")
    else:
        report = render_report(results, args.format)
        if args.output is not None:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(report + "\n")
            print(f"-- wrote {args.format} report to {args.output}", file=sys.stderr)
        else:
            print(report)

    errors = sum(len(r.errors) for r in results)
    warnings = sum(len(r.warnings) for r in results)
    if errors or warnings:
        print(f"-- {errors} error(s), {warnings} warning(s)", file=sys.stderr)
    if errors or (args.strict and any(r.diagnostics for r in results)):
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from repro.serving.faults import BreakerConfig
    from repro.serving.journal import ServingJournal
    from repro.serving.server import (
        DRAIN_EXIT_CODE,
        HttpLimits,
        QueryServer,
        StandingQueryEngine,
        drive,
        resume_serving,
    )

    if args.resume and not args.journal:
        print("--resume needs --journal <path>", file=sys.stderr)
        return 2
    if not args.files and not args.resume:
        print("serve needs one or more .gsql files (or --resume)", file=sys.stderr)
        return 2

    quotas = {}
    for raw in args.tenant_quota or ():
        tenant, sep, value = raw.partition("=")
        if not sep or not tenant:
            print(
                f"bad --tenant-quota {raw!r}: expected tenant=CYCLES",
                file=sys.stderr,
            )
            return 2
        try:
            quotas[tenant.strip()] = float(value)
        except ValueError:
            print(
                f"bad --tenant-quota {raw!r}: CYCLES must be a number",
                file=sys.stderr,
            )
            return 2

    if args.trace is not None:
        records = load_trace(args.trace)
    else:
        config = TraceConfig(duration_seconds=60, rate_scale=0.01, seed=20050614)
        records = list(research_center_feed(config))
        print(
            f"-- no --trace: synthesised research feed ({len(records):,} records)",
            file=sys.stderr,
        )

    def factory():
        return _standard_instance(args.relax_factor)

    try:
        breaker = BreakerConfig(
            failure_threshold=args.breaker_failures,
            cooldown_batches=args.breaker_cooldown,
        )
    except ValueError as exc:
        print(f"bad breaker configuration: {exc}", file=sys.stderr)
        return 2

    drained = False
    if args.resume:
        if not os.path.exists(args.journal):
            print(f"cannot resume: {args.journal} does not exist", file=sys.stderr)
            return 2
        engine = resume_serving(
            factory,
            args.journal,
            records,
            share=args.share,
            quotas=quotas,
            batch_size=args.batch_size,
            commit_interval=args.commit_interval,
            breaker=breaker,
        )
        print(
            f"-- resumed {len(engine.queries())} standing quer(y/ies) from"
            f" {args.journal}; {engine.consumed:,} records total",
            file=sys.stderr,
        )
    else:
        journal = (
            ServingJournal(args.journal, fresh=True) if args.journal else None
        )
        engine = StandingQueryEngine(
            factory,
            share=args.share,
            quotas=quotas,
            journal=journal,
            breaker=breaker,
        )
        for path in args.files:
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    text = fh.read()
            except OSError as exc:
                print(f"cannot read {path}: {exc}", file=sys.stderr)
                return 2
            name = os.path.splitext(os.path.basename(path))[0]
            try:
                sq = engine.register(text, name=name, tenant=args.tenant)
            except (PlanningError, ExecutionError) as exc:
                print(f"cannot serve {path}: {exc}", file=sys.stderr)
                return 2
            shared = "shared" if sq.signature is not None else "private feed"
            print(f"-- registered {sq.qid} ({name}): {shared}", file=sys.stderr)

        if args.listen is not None:
            host, _, port_text = args.listen.partition(":")
            try:
                port = int(port_text) if port_text else 0
            except ValueError:
                print(f"bad --listen {args.listen!r}: expected HOST:PORT", file=sys.stderr)
                return 2
            server = QueryServer(
                engine,
                batch_size=args.batch_size,
                commit_interval=args.commit_interval,
                pace=args.pace,
                limits=HttpLimits(
                    read_timeout=args.http_timeout,
                    write_timeout=args.http_timeout,
                    max_connections=args.http_max_connections,
                ),
            )

            async def _serve() -> None:
                # Only when this (main) thread owns a running loop; a
                # host embedding the server elsewhere handles signals
                # itself (install_signal_handlers returns False there).
                if server.install_signal_handlers():
                    print(
                        "-- SIGTERM/SIGINT drain gracefully"
                        f" (exit code {DRAIN_EXIT_CODE})",
                        file=sys.stderr,
                    )
                bound_host, bound_port = await server.start_http(
                    host or "127.0.0.1", port
                )
                print(
                    f"-- serving http://{bound_host}:{bound_port}"
                    " (/metrics /queries /healthz /readyz /drain)",
                    file=sys.stderr,
                )
                await server.ingest(records, close=True)
                if server.drained:
                    print(
                        f"-- drained after {engine.consumed:,} records;"
                        " final state committed",
                        file=sys.stderr,
                    )
                elif args.linger > 0:
                    print(
                        f"-- feed drained; lingering {args.linger}s",
                        file=sys.stderr,
                    )
                    await server.linger(args.linger)
                await server.stop_http()

            asyncio.run(_serve())
            drained = server.drained
        else:
            drive(
                engine,
                records,
                batch_size=args.batch_size,
                commit_interval=args.commit_interval,
            )

    for sq in engine.queries():
        rows = sq.results
        status = "active" if sq.active else f"retired@{sq.unregistered_at}"
        if sq.quarantined:
            status += f", breaker {sq.breaker.state}"
        print(
            f"-- {sq.qid} ({sq.name}, tenant={sq.tenant}, {status}):"
            f" {len(rows)} rows",
            file=sys.stderr,
        )
        if args.limit:
            print("\t".join(sq.instance.query(sq.name).output_schema.names))
            for row in rows[: args.limit]:
                print("\t".join(str(value) for value in row.values))
            if args.limit < len(rows):
                print(f"... ({len(rows) - args.limit} more rows)")
    if args.report:
        import json

        print(json.dumps(engine.report(), indent=2))
    if args.metrics_out:
        count = write_metrics(engine.export_metrics(), args.metrics_out)
        print(
            f"-- wrote {count} metric series to {args.metrics_out}",
            file=sys.stderr,
        )
    if args.dead_letters_out:
        count = engine.dead_letters.write_jsonl(args.dead_letters_out)
        print(
            f"-- wrote {count} dead-letter entries to"
            f" {args.dead_letters_out}"
            f" ({engine.dead_letters.evicted} older entries evicted)",
            file=sys.stderr,
        )
    return DRAIN_EXIT_CODE if drained else 0


def _cmd_explain(args: argparse.Namespace) -> int:
    gs = _standard_instance(args.relax_factor)
    plan = compile_query(args.sql, gs.registries, query_name="cli")
    print(explain(plan))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stream-sampling-operator reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="synthesise and persist a trace")
    generate.add_argument("--feed", choices=sorted(_FEEDS), default="research")
    generate.add_argument("--seconds", type=int, default=60)
    generate.add_argument("--rate-scale", type=float, default=0.01)
    generate.add_argument("--seed", type=int, default=20050614)
    generate.add_argument("--out", required=True)
    generate.set_defaults(fn=_cmd_generate)

    query = sub.add_parser("query", help="run one GSQL query over a trace")
    query.add_argument(
        "file", nargs="?", help="path to a .gsql query file (or use --sql)"
    )
    query.add_argument(
        "--trace",
        default=None,
        help="trace file to run over (default: synthesise a research feed)",
    )
    query.add_argument("--sql", help="query text instead of a .gsql file")
    query.add_argument("--limit", type=int, default=20)
    query.add_argument("--relax-factor", type=float, default=10.0)
    query.add_argument(
        "--no-lint",
        dest="lint",
        action="store_false",
        help="skip the pre-execution static analysis",
    )
    query.add_argument(
        "--strict",
        action="store_true",
        help="refuse to run if the linter reports anything",
    )
    query.add_argument(
        "--shards",
        type=int,
        default=0,
        help="run the query hash-partitioned across N parallel shards"
        " (0 = serial)",
    )
    query.add_argument(
        "--vectorize",
        action="store_true",
        help="execute eligible operators on the columnar batch engine"
        " (byte-identical results; plans needing per-tuple state fall"
        " back automatically)",
    )
    query.add_argument(
        "--shard-processes",
        action="store_true",
        help="with --shards, fork one worker process per shard instead of"
        " interleaving the shards in-process",
    )
    query.add_argument(
        "--rebalance",
        action="store_true",
        help="with --shards, watch per-shard load and migrate hot key"
        " ranges between shards at window boundaries (elastic skew"
        " defence; results stay byte-identical to serial)",
    )
    query.add_argument(
        "--rebalance-threshold",
        type=float,
        default=1.5,
        metavar="RATIO",
        help="with --rebalance, trigger when the hottest shard carries"
        " this multiple of the mean load (default 1.5)",
    )
    query.add_argument(
        "--rebalance-interval",
        type=int,
        default=4,
        metavar="ROUNDS",
        help="with --rebalance, check the load balance every N rounds"
        " (default 4)",
    )
    query.add_argument(
        "--max-shards",
        type=int,
        default=None,
        metavar="N",
        help="with --rebalance, let the pool grow up to N shards under"
        " sustained skew (default: the initial --shards count)",
    )
    query.add_argument(
        "--rebalance-curate",
        action="store_true",
        help="with --rebalance, degrade gracefully when one key is too"
        " hot to migrate away from: deterministically downsample only"
        " that key's traffic, with shed-style cost accounting",
    )
    query.add_argument(
        "--supervise",
        action="store_true",
        help="with --shards, run shard workers under crash supervision:"
        " dead/stalled workers restart and recover from checkpoints plus"
        " batch replay (implies worker processes)",
    )
    query.add_argument(
        "--max-restarts",
        type=int,
        default=2,
        help="with --supervise, restarts allowed per shard before the run"
        " fails (default 2)",
    )
    query.add_argument(
        "--shed-threshold",
        type=int,
        default=None,
        help="shed admission beyond this ring backlog (and, supervised,"
        " drop batches when a shard queue stays this deep) instead of"
        " blocking; shed counts appear in the run report",
    )
    query.add_argument(
        "--report",
        action="store_true",
        help="always print the degradation/supervision report to stderr"
        " (default: only when something was dropped or shed)",
    )
    query.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the metrics registry after the run (.prom/.txt ="
        " Prometheus text format, anything else = JSON)",
    )
    query.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record window/cleaning trace events and write them as JSONL",
    )
    query.add_argument(
        "--profile",
        action="store_true",
        help="charge per-operator wall time into the operator_seconds"
        " histogram (serial runs only)",
    )
    query.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="journal committed windows to this write-ahead file so a"
        " killed run can be resumed with --resume (serial or"
        " --supervise runs; incompatible with --shed-threshold)",
    )
    query.add_argument(
        "--resume",
        action="store_true",
        help="with --journal, replay committed state from the journal and"
        " continue from the last committed window instead of starting"
        " over; output is byte-identical to an uninterrupted run",
    )
    query.add_argument(
        "--quarantine-out",
        default=None,
        metavar="PATH",
        help="validate records at admission, divert malformed ones to a"
        " dead-letter quarantine instead of failing the query, and write"
        " the quarantined records to PATH as JSONL",
    )
    query.add_argument(
        "--source-retries",
        type=int,
        default=None,
        metavar="N",
        help="read --trace through a fault-tolerant source that survives"
        " torn trace tails and retries transient read failures up to N"
        " times with capped exponential backoff",
    )
    query.set_defaults(fn=_cmd_query)

    lint_cmd = sub.add_parser(
        "lint", help="statically analyze queries without running them"
    )
    lint_cmd.add_argument(
        "files", nargs="*", help="paths to .gsql query files (one result each)"
    )
    lint_cmd.add_argument("--sql", help="lint this query text instead of files")
    lint_cmd.add_argument(
        "--strict", action="store_true", help="exit 1 on warnings too"
    )
    lint_cmd.add_argument("--relax-factor", type=float, default=10.0)
    lint_cmd.add_argument(
        "--target",
        default=None,
        metavar="SPEC",
        help="deployment configuration for the SA3xx execution-safety"
        " and SA4xx serving rules, e.g. 'shards=4,durable,supervise'"
        " (flags: durable, supervise, processes, rebalance, serve;"
        " keyed: shards=N, shed=N)",
    )
    lint_cmd.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="diagnostic output format (default: text with source carets)",
    )
    lint_cmd.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="with --format json|sarif, write the report to PATH instead"
        " of stdout",
    )
    lint_cmd.set_defaults(fn=_cmd_lint)

    serve = sub.add_parser(
        "serve",
        help="serve many standing queries over one feed",
        epilog="exit codes: 0 = feed served to completion; 2 = bad"
        " arguments or rejected query; 3 = terminated early by a"
        " graceful drain (SIGTERM, SIGINT, or POST /drain) — standing"
        " state was flushed and, with --journal, committed, so"
        " --resume reads no further input",
    )
    serve.add_argument(
        "files", nargs="*", help="paths to .gsql files, one standing query each"
    )
    serve.add_argument(
        "--trace",
        default=None,
        help="trace file to serve (default: synthesise a research feed)",
    )
    serve.add_argument("--relax-factor", type=float, default=10.0)
    serve.add_argument(
        "--tenant",
        default="default",
        help="tenant to register the queries under (default: 'default')",
    )
    serve.add_argument(
        "--tenant-quota",
        action="append",
        metavar="TENANT=CYCLES",
        help="cap TENANT's spend to CYCLES cost-model cycles per offered"
        " record; its batches are shed at the serving edge beyond that"
        " (repeatable)",
    )
    serve.add_argument(
        "--no-share",
        dest="share",
        action="store_false",
        help="run every query on its own private feed instead of sharing"
        " common low-level prefixes (results are byte-identical)",
    )
    serve.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="expose the HTTP control plane (/metrics /queries /healthz)"
        " while the feed drains; PORT 0 picks a free port",
    )
    serve.add_argument(
        "--pace",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="with --listen, sleep this long between batches so the"
        " endpoint can be inspected mid-stream (default 0)",
    )
    serve.add_argument(
        "--linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="with --listen, keep the endpoint up this long after the"
        " feed drains (default 0)",
    )
    serve.add_argument(
        "--http-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="with --listen, per-connection read and write deadline;"
        " slow or stalled clients are dropped past it (default 5)",
    )
    serve.add_argument(
        "--http-max-connections",
        type=int,
        default=64,
        metavar="N",
        help="with --listen, concurrent-connection cap; beyond it new"
        " connections are shed with 503 (default 64)",
    )
    serve.add_argument(
        "--breaker-failures",
        type=int,
        default=3,
        metavar="N",
        help="consecutive batch failures that open a standing query's"
        " circuit breaker and quarantine it (default 3)",
    )
    serve.add_argument(
        "--breaker-cooldown",
        type=int,
        default=8,
        metavar="BATCHES",
        help="batches a quarantined query skips before one half-open"
        " probe batch is admitted (default 8)",
    )
    serve.add_argument(
        "--dead-letters-out",
        default=None,
        metavar="PATH",
        help="write the dead-letter log (batches that raised inside a"
        " query's fault boundary) to PATH as JSONL after the serve",
    )
    serve.add_argument("--batch-size", type=int, default=512)
    serve.add_argument(
        "--commit-interval",
        type=int,
        default=4,
        metavar="BATCHES",
        help="with --journal, commit a durable snapshot every N batches"
        " (default 4)",
    )
    serve.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="journal registrations and commits to this write-ahead file"
        " so a killed serve can be resumed with --resume",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="with --journal, restore the standing-query set and committed"
        " state from the journal and continue; byte-identical to an"
        " uninterrupted serve",
    )
    serve.add_argument(
        "--limit",
        type=int,
        default=0,
        metavar="N",
        help="print up to N result rows per query (default: counts only)",
    )
    serve.add_argument(
        "--report",
        action="store_true",
        help="print the serving report (queries, sharing groups, tenant"
        " ledgers) as JSON",
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the combined per-query/per-tenant metrics registry"
        " (.prom/.txt = Prometheus text format, anything else = JSON)",
    )
    serve.set_defaults(fn=_cmd_serve)

    explain_cmd = sub.add_parser("explain", help="compile and explain a query")
    explain_cmd.add_argument("--sql", required=True)
    explain_cmd.add_argument("--relax-factor", type=float, default=10.0)
    explain_cmd.set_defaults(fn=_cmd_explain)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
