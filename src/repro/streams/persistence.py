"""Trace persistence: save and replay packet traces.

Experiments become comparable across machines and sessions when the
exact trace is an artifact rather than a (seed, generator-version) pair.
The format is a compact struct-packed binary:

* header: magic, version, schema name, attribute count, attribute specs
  (name, type tag, ordering);
* body: one fixed-width little-endian record per tuple (int/uint/bool as
  8-byte signed, float as 8-byte double; ``str`` attributes are not
  supported — packet schemas are numeric).

``save_trace`` / ``load_trace`` round-trip any list of records over one
numeric schema.  Loading reconstructs the schema from the header, so a
trace file is self-describing.

Decoding failures raise :class:`repro.errors.TraceCorruptError` carrying
the byte offset and record index of the damage — never a bare
``struct.error`` or ``UnicodeDecodeError`` — so ingest-edge code (the
resilient tail source in :mod:`repro.streams.sources`) can resync on the
fixed-width record framing instead of aborting the run.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Iterable, Iterator, List, Tuple, Union

from repro.errors import StreamError, TraceCorruptError
from repro.streams.records import Record
from repro.streams.schema import Attribute, Ordering, StreamSchema

_MAGIC = b"RPTRACE1"
_HEADER = struct.Struct("<8sH")  # magic, attribute count
_NAME = struct.Struct("<H")  # length-prefixed utf-8 strings
_VALUE = struct.Struct("<q")
_FLOAT = struct.Struct("<d")

_NUMERIC_TAGS = {"int", "uint", "bool", "float"}


def _write_string(fh: BinaryIO, text: str) -> None:
    data = text.encode("utf-8")
    fh.write(_NAME.pack(len(data)))
    fh.write(data)


def _read_string(fh: BinaryIO, what: str) -> str:
    offset = fh.tell()
    prefix = fh.read(_NAME.size)
    if len(prefix) < _NAME.size:
        raise TraceCorruptError(
            f"truncated trace file: incomplete {what} length", offset=offset
        )
    (length,) = _NAME.unpack(prefix)
    data = fh.read(length)
    if len(data) < length:
        raise TraceCorruptError(
            f"truncated trace file: incomplete {what}", offset=offset
        )
    try:
        return data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceCorruptError(
            f"garbled trace file: {what} is not valid UTF-8 ({exc.reason})",
            offset=offset,
        ) from None


def save_trace(records: Iterable[Record], target: Union[str, BinaryIO]) -> int:
    """Write records to ``target`` (path or binary file); returns count.

    All records must share one schema with numeric attributes only.
    """
    own = isinstance(target, str)
    fh: BinaryIO = open(target, "wb") if own else target  # type: ignore[assignment]
    try:
        count = 0
        schema: StreamSchema | None = None
        body = io.BytesIO()
        for record in records:
            if schema is None:
                schema = record.schema
                for attr in schema:
                    if attr.type_tag not in _NUMERIC_TAGS:
                        raise StreamError(
                            f"cannot persist non-numeric attribute"
                            f" {attr.name!r} ({attr.type_tag})"
                        )
            elif record.schema != schema:
                raise StreamError("all records in a trace must share one schema")
            for attr, value in zip(schema, record.values):
                if attr.type_tag == "float":
                    body.write(_FLOAT.pack(float(value)))
                else:
                    body.write(_VALUE.pack(int(value)))
            count += 1
        if schema is None:
            raise StreamError("cannot persist an empty trace")
        fh.write(_HEADER.pack(_MAGIC, len(schema)))
        _write_string(fh, schema.name)
        for attr in schema:
            _write_string(fh, attr.name)
            _write_string(fh, attr.type_tag)
            _write_string(fh, attr.ordering.value)
        fh.write(body.getvalue())
        return count
    finally:
        if own:
            fh.close()


def _read_schema(fh: BinaryIO) -> StreamSchema:
    header = fh.read(_HEADER.size)
    if len(header) < _HEADER.size:
        raise TraceCorruptError("truncated trace file: missing header", offset=0)
    magic, attr_count = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise TraceCorruptError("not a repro trace file (bad magic)", offset=0)
    schema_name = _read_string(fh, "schema name")
    attributes = []
    for _ in range(attr_count):
        name = _read_string(fh, "attribute name")
        type_tag = _read_string(fh, "attribute type tag")
        ordering_offset = fh.tell()
        ordering_text = _read_string(fh, "attribute ordering")
        try:
            ordering = Ordering(ordering_text)
        except ValueError:
            raise TraceCorruptError(
                f"garbled trace file: unknown ordering {ordering_text!r}",
                offset=ordering_offset,
            ) from None
        try:
            attributes.append(Attribute(name, type_tag, ordering))
        except Exception as exc:
            raise TraceCorruptError(
                f"garbled trace file: invalid attribute spec ({exc})",
                offset=ordering_offset,
            ) from None
    try:
        return StreamSchema(schema_name, attributes)
    except Exception as exc:
        raise TraceCorruptError(
            f"garbled trace file: invalid schema ({exc})", offset=fh.tell()
        ) from None


def read_header(fh: BinaryIO) -> Tuple[StreamSchema, int]:
    """Decode the header; returns ``(schema, body_offset)``.

    ``body_offset`` is the byte offset of the first record, which —
    combined with the fixed ``8 * len(schema)`` row width — lets a tail
    reader compute the framing offset of any record without rescanning.
    """
    schema = _read_schema(fh)
    return schema, fh.tell()


def decode_row(schema: StreamSchema, row: bytes) -> Record:
    """Decode one fixed-width body row (``8 * len(schema)`` bytes)."""
    values = []
    for index, attr in enumerate(schema):
        chunk = row[index * 8:(index + 1) * 8]
        if attr.type_tag == "float":
            values.append(_FLOAT.unpack(chunk)[0])
        elif attr.type_tag == "bool":
            values.append(bool(_VALUE.unpack(chunk)[0]))
        else:
            values.append(_VALUE.unpack(chunk)[0])
    return Record(schema, values)


def _iter_rows(fh: BinaryIO, schema: StreamSchema) -> Iterator[Record]:
    row_size = 8 * len(schema)
    index = 0
    while True:
        offset = fh.tell()
        row = fh.read(row_size)
        if not row:
            return
        if len(row) < row_size:
            raise TraceCorruptError(
                "truncated trace file: partial record"
                f" ({len(row)} of {row_size} bytes)",
                offset=offset,
                record_index=index,
            )
        yield decode_row(schema, row)
        index += 1


def load_trace(source: Union[str, BinaryIO]) -> List[Record]:
    """Read a whole trace written by :func:`save_trace`."""
    own = isinstance(source, str)
    fh: BinaryIO = open(source, "rb") if own else source  # type: ignore[assignment]
    try:
        schema = _read_schema(fh)
        return list(_iter_rows(fh, schema))
    finally:
        if own:
            fh.close()


def iter_trace(source: Union[str, BinaryIO]) -> Iterator[Record]:
    """Streaming variant of :func:`load_trace` (constant memory).

    With a path argument the file stays open until the iterator is
    exhausted or garbage-collected.
    """
    own = isinstance(source, str)
    fh: BinaryIO = open(source, "rb") if own else source  # type: ignore[assignment]
    try:
        schema = _read_schema(fh)
        yield from _iter_rows(fh, schema)
    finally:
        if own:
            fh.close()
