"""Fault-tolerant ingest sources and the dead-letter quarantine.

The paper's operator ran against live AT&T NIC taps where "dirty" input
— truncated captures, malformed packets, feed stalls and reconnects —
is the normal case (§1).  This module hardens the ingest edge of the
reproduction accordingly:

* :class:`ResilientSource` — wraps any record-iterator *factory* with
  per-read timeouts, capped exponential backoff + jitter reconnection
  and a pluggable :class:`RetryPolicy`.  A read that stalls or raises
  does not abort the query: the source reconnects (the factory is called
  with the number of records already delivered, so a replayable source
  resumes without loss or duplication) and only an exhausted retry
  budget surfaces as :class:`repro.errors.SourceError`.
* :class:`TraceTailSource` — reads the trace-file format of
  :mod:`repro.streams.persistence` record by record, surviving truncated
  or partially-written files by *resyncing on the fixed-width record
  framing*: every complete row decodes, a torn tail is quarantined (or,
  in ``follow`` mode, awaited until the writer completes it).
* :class:`QuarantineStream` — the bounded, inspectable dead-letter
  stream.  Malformed, corrupt, or uncoercible records land here (with a
  reason, source and index) instead of raising mid-query; the runtime
  counts them so the conservation identity
  ``records == ingested + shed + quarantined`` stays checkable.

Validation/coercion itself lives in :func:`repro.streams.schema.coerce_record`;
this module routes its rejections.
"""

from __future__ import annotations

import json
import os
import queue as _queue
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.errors import SchemaError, SourceError, StreamError, TraceCorruptError
from repro.streams.persistence import decode_row, read_header
from repro.streams.records import Record
from repro.streams.schema import StreamSchema, coerce_record


# ---------------------------------------------------------------------------
# Dead-letter quarantine
# ---------------------------------------------------------------------------


@dataclass
class QuarantinedRecord:
    """One dead-lettered input: what it was and why it was refused."""

    reason: str
    payload: Any  # Record, raw bytes, mapping — whatever failed admission
    source: str = ""
    index: Optional[int] = None  # record index at the source, when known

    def as_dict(self) -> Dict[str, Any]:
        if isinstance(self.payload, Record):
            payload: Any = self.payload.as_dict()
        elif isinstance(self.payload, (bytes, bytearray)):
            payload = {"hex": bytes(self.payload).hex()}
        else:
            payload = repr(self.payload)
        return {
            "reason": self.reason,
            "source": self.source,
            "index": self.index,
            "payload": payload,
        }


class QuarantineStream:
    """Bounded, inspectable dead-letter stream for refused input.

    Keeps the most recent ``capacity`` entries (older ones are evicted
    and only counted), a running ``total``, and per-reason counts — a
    quarantine must never become the unbounded buffer that sinks the
    process it is protecting.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise StreamError("quarantine capacity must be >= 1")
        self.capacity = capacity
        self._entries: deque = deque(maxlen=capacity)
        self.total = 0
        self.evicted = 0
        self._by_reason: Dict[str, int] = {}

    def put(
        self,
        reason: str,
        payload: Any,
        *,
        source: str = "",
        index: Optional[int] = None,
    ) -> QuarantinedRecord:
        entry = QuarantinedRecord(
            reason=reason, payload=payload, source=source, index=index
        )
        if len(self._entries) == self.capacity:
            self.evicted += 1
        self._entries.append(entry)
        self.total += 1
        self._by_reason[reason] = self._by_reason.get(reason, 0) + 1
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[QuarantinedRecord]:
        return iter(list(self._entries))

    @property
    def entries(self) -> List[QuarantinedRecord]:
        return list(self._entries)

    def counts_by_reason(self) -> Dict[str, int]:
        return dict(self._by_reason)

    def write_jsonl(self, path: str) -> int:
        """Dump the retained entries as JSONL; returns the entry count."""
        with open(path, "w", encoding="utf-8") as fh:
            for entry in self._entries:
                fh.write(json.dumps(entry.as_dict(), default=repr))
                fh.write("\n")
        return len(self._entries)


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Reconnection discipline for a :class:`ResilientSource`.

    ``max_retries`` bounds consecutive reconnect attempts per failure
    event; a successful read resets the budget.  The Nth attempt waits
    ``min(backoff_base * 2**(N-1), backoff_cap)`` seconds, stretched by
    up to ``jitter`` (a fraction, drawn from a seeded RNG so tests are
    repeatable).  ``read_timeout`` is the per-read stall ceiling: a pull
    that produces nothing for that long counts as a failure (None
    disables the watchdog, and with it the reader thread).

    Subclass and override :meth:`retryable` to make the policy pluggable
    — e.g. treat :class:`TraceCorruptError` as fatal while retrying
    transient I/O errors.
    """

    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.1
    read_timeout: Optional[float] = None

    def delay(self, attempt: int, rng: random.Random) -> float:
        base = min(self.backoff_base * (2 ** (attempt - 1)), self.backoff_cap)
        if self.jitter <= 0:
            return base
        return base * (1.0 + self.jitter * rng.random())

    def retryable(self, exc: BaseException) -> bool:
        """Whether a failed read/connect is worth another attempt."""
        return True


#: No waiting, no watchdog: retries happen back-to-back (test-friendly).
EAGER_RETRY = RetryPolicy(backoff_base=0.0, backoff_cap=0.0, jitter=0.0)


@dataclass
class SourceStats:
    """What the resilient source did (mirrors its metric counters)."""

    records: int = 0
    reconnects: int = 0
    read_errors: int = 0
    stalls: int = 0
    quarantined: int = 0
    failures: List[str] = field(default_factory=list)


class _Stall(Exception):
    """Internal: a read exceeded the policy's read_timeout."""


class _Connection:
    """One live underlying iterator, optionally pulled on a watchdog thread.

    Without a read timeout, ``next_record`` is a plain ``next`` — no
    thread, no queue, no overhead.  With one, a daemon thread pulls
    records into a bounded queue and the consumer waits at most
    ``read_timeout`` per record; an abandoned connection's thread parks
    on the ``_abandoned`` flag and exits at the next item boundary (a
    thread blocked *inside* the underlying read can only be leaked — it
    is a daemon, and its queue is private so it cannot contaminate the
    replacement connection).
    """

    def __init__(self, iterator: Iterator[Any], read_timeout: Optional[float]) -> None:
        self._iterator = iterator
        self._read_timeout = read_timeout
        self._abandoned = False
        if read_timeout is not None:
            self._pipe: _queue.Queue = _queue.Queue(maxsize=8)
            self._buffer: deque = deque()
            thread = threading.Thread(target=self._pull, daemon=True)
            thread.start()

    def _pull(self) -> None:
        # Records cross the thread boundary in adaptive batches: while
        # the consumer keeps the queue drained (it is waiting) each
        # record is flushed immediately, but when the consumer lags the
        # batch grows up to 64, amortising the queue round-trip that
        # would otherwise dominate a fast source.  Stall detection is
        # unaffected — the consumer's timeout clock only runs while its
        # local buffer is empty.
        batch = []
        try:
            for item in self._iterator:
                batch.append(item)
                if len(batch) >= 64 or self._pipe.empty():
                    if not self._flush(("recs", batch)):
                        return
                    batch = []
            if batch and not self._flush(("recs", batch)):
                return
            self._pipe.put(("end", None))
        except BaseException as exc:
            self._pipe.put(("err", exc))

    def _flush(self, message) -> bool:
        while not self._abandoned:
            try:
                self._pipe.put(message, timeout=0.1)
                return True
            except _queue.Full:
                continue
        return False

    def next_record(self) -> Any:
        if self._read_timeout is None:
            return next(self._iterator)
        if self._buffer:
            return self._buffer.popleft()
        try:
            kind, payload = self._pipe.get(timeout=self._read_timeout)
        except _queue.Empty:
            raise _Stall() from None
        if kind == "recs":
            self._buffer.extend(payload)
            return self._buffer.popleft()
        if kind == "end":
            raise StopIteration
        raise payload

    def abandon(self) -> None:
        self._abandoned = True
        close = getattr(self._iterator, "close", None)
        if close is not None and self._read_timeout is None:
            # Generators support close(); only safe when no thread is
            # mid-pull on the iterator.
            try:
                close()
            except Exception:
                pass


class ResilientSource:
    """A record iterator that reconnects instead of dying.

    ``factory(skip)`` must return a fresh iterator positioned *after*
    the first ``skip`` records of the logical stream — for a trace file
    that is a seek, for a list a slice (:func:`replayable`), for a live
    feed typically a resubscription (at-least-once sources may
    re-deliver; exact resume needs a positionable source).  The source
    tracks how many records it has delivered and passes that count on
    every reconnect, so a crash of the *underlying* source is invisible
    to the query: same records, same order.

    ``schema`` (optional) turns on admission validation: each record is
    passed through :func:`repro.streams.schema.coerce_record`, and
    uncoercible ones are routed to ``quarantine`` (required with
    ``schema``) instead of being yielded — note that quarantined records
    still advance the skip position.
    """

    def __init__(
        self,
        factory: Callable[[int], Iterator[Any]],
        policy: Optional[RetryPolicy] = None,
        *,
        schema: Optional[StreamSchema] = None,
        quarantine: Optional[QuarantineStream] = None,
        name: str = "source",
        metrics: Any = None,
        seed: int = 0,
        clock: Callable[[float], None] = time.sleep,
    ) -> None:
        if schema is not None and quarantine is None:
            raise StreamError(
                "ResilientSource(schema=...) needs a quarantine stream for"
                " the records that fail validation"
            )
        self._factory = factory
        self.policy = policy or RetryPolicy()
        self.schema = schema
        self.quarantine = quarantine
        self.name = name
        self.stats = SourceStats()
        self._rng = random.Random(seed)
        self._sleep = clock
        self._metrics = metrics

    # -- observability -----------------------------------------------------

    def _count(self, metric: str, by: int = 1, help: str = "") -> None:
        if self._metrics is not None:
            self._metrics.counter(
                metric, help=help or None, source=self.name
            ).inc(by)

    # -- connection management ---------------------------------------------

    def _connect(self, skip: int, reason: str) -> _Connection:
        """Open the underlying source, burning retry budget on failures."""
        attempt = 0
        while True:
            try:
                return _Connection(self._factory(skip), self.policy.read_timeout)
            except Exception as exc:
                reason = f"connect failed: {exc!r}"
                attempt = self._note_failure(attempt, reason, exc)

    def _reconnect(self, attempt: int, skip: int, reason: str, exc: Optional[BaseException]) -> tuple:
        """One failure event: charge the budget, back off, reopen.

        Returns ``(attempt, connection)`` so the caller can keep the
        ladder position until a successful read resets it.
        """
        attempt = self._note_failure(attempt, reason, exc)
        self.stats.reconnects += 1
        self._count(
            "source_reconnects_total", help="source reconnections attempted"
        )
        try:
            return attempt, _Connection(self._factory(skip), self.policy.read_timeout)
        except Exception as connect_exc:
            return self._reconnect(
                attempt, skip, f"connect failed: {connect_exc!r}", connect_exc
            )

    def _note_failure(
        self, attempt: int, reason: str, exc: Optional[BaseException]
    ) -> int:
        self.stats.failures.append(reason)
        if exc is not None and not self.policy.retryable(exc):
            raise SourceError(
                f"source {self.name!r} failed non-retryably: {reason}",
                attempts=attempt,
            ) from exc
        attempt += 1
        if attempt > self.policy.max_retries:
            raise SourceError(
                f"source {self.name!r} exhausted {self.policy.max_retries}"
                f" retries: {'; '.join(self.stats.failures[-3:])}",
                attempts=attempt - 1,
            ) from exc
        delay = self.policy.delay(attempt, self._rng)
        if delay > 0:
            self._sleep(delay)
        return attempt

    # -- iteration ---------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        emitted = 0
        attempt = 0
        connection = self._connect(emitted, "initial connect")
        while True:
            try:
                record = connection.next_record()
            except StopIteration:
                return
            except _Stall:
                self.stats.stalls += 1
                self._count(
                    "source_stalls_total",
                    help="reads that exceeded the per-read timeout",
                )
                connection.abandon()
                attempt, connection = self._reconnect(
                    attempt,
                    emitted,
                    f"stalled: no record within {self.policy.read_timeout}s",
                    None,
                )
                continue
            except Exception as exc:
                self.stats.read_errors += 1
                self._count(
                    "source_read_errors_total", help="reads that raised"
                )
                connection.abandon()
                attempt, connection = self._reconnect(
                    attempt, emitted, f"read failed: {exc!r}", exc
                )
                continue
            attempt = 0  # a successful read resets the backoff ladder
            emitted += 1
            if self.schema is not None:
                try:
                    record = coerce_record(self.schema, record)
                except SchemaError as exc:
                    self.stats.quarantined += 1
                    self._count(
                        "source_quarantined_total",
                        help="records dead-lettered at the source",
                    )
                    assert self.quarantine is not None
                    self.quarantine.put(
                        str(exc), record, source=self.name, index=emitted - 1
                    )
                    continue
            self.stats.records += 1
            yield record


def replayable(records: List[Any]) -> Callable[[int], Iterator[Any]]:
    """A :class:`ResilientSource` factory over an in-memory record list."""

    def factory(skip: int) -> Iterator[Any]:
        return iter(records[skip:])

    return factory


# ---------------------------------------------------------------------------
# Trace-file tail source
# ---------------------------------------------------------------------------


class TraceTailSource:
    """Iterate a persisted trace file record by record, tolerating damage.

    The persistence format is self-framing: a header followed by
    fixed-width rows, so the byte offset of record *i* is
    ``body_offset + i * row_size``.  This source exploits that framing:

    * a **torn tail** (partially-written last record — the normal state
      of a file another process is still writing, or of a capture cut by
      a crash) is quarantined with its raw bytes and offset, not raised;
    * in ``follow`` mode the source instead *waits* for the writer to
      complete the row (tail -f semantics), up to ``idle_timeout``
      seconds of no growth;
    * ``skip`` positions past already-consumed records, which is exactly
      the reconnect contract of :class:`ResilientSource` — see
      :func:`resilient_trace_source`.

    Header damage is not recoverable (there is no framing yet to resync
    on) and raises :class:`TraceCorruptError`.
    """

    def __init__(
        self,
        path: str,
        *,
        skip: int = 0,
        follow: bool = False,
        poll_interval: float = 0.02,
        idle_timeout: float = 5.0,
        quarantine: Optional[QuarantineStream] = None,
    ) -> None:
        self.path = path
        self.follow = follow
        self.poll_interval = poll_interval
        self.idle_timeout = idle_timeout
        self.quarantine = quarantine
        self._fh = open(path, "rb")
        try:
            self.schema, self._body_offset = read_header(self._fh)
        except Exception:
            self._fh.close()
            raise
        self._row_size = 8 * len(self.schema)
        self.index = skip
        self._fh.seek(self._body_offset + skip * self._row_size)

    def close(self) -> None:
        self._fh.close()

    def __iter__(self) -> "TraceTailSource":
        return self

    def __next__(self) -> Record:
        waited = 0.0
        while True:
            offset = self._body_offset + self.index * self._row_size
            self._fh.seek(offset)
            row = self._fh.read(self._row_size)
            if len(row) == self._row_size:
                self.index += 1
                return decode_row(self.schema, row)
            if self.follow and waited < self.idle_timeout:
                # The writer may still be mid-append: wait for the rest
                # of the row to land.
                time.sleep(self.poll_interval)
                waited += self.poll_interval
                continue
            if row:
                # Torn tail: the framing says this is a partial record.
                # Dead-letter the raw bytes (inspectable, counted) and
                # end the stream at the last complete record.
                if self.quarantine is not None:
                    self.quarantine.put(
                        "torn tail: partial record"
                        f" ({len(row)} of {self._row_size} bytes)",
                        row,
                        source=f"trace:{os.path.basename(self.path)}",
                        index=self.index,
                    )
                if self.follow:
                    self.close()
                    raise TraceCorruptError(
                        "trace tail stayed partial for"
                        f" {self.idle_timeout}s (writer died mid-record?)",
                        offset=offset,
                        record_index=self.index,
                    )
            self.close()
            raise StopIteration


def resilient_trace_source(
    path: str,
    policy: Optional[RetryPolicy] = None,
    *,
    quarantine: Optional[QuarantineStream] = None,
    validate: bool = False,
    follow: bool = False,
    metrics: Any = None,
    name: Optional[str] = None,
) -> ResilientSource:
    """A :class:`ResilientSource` over a trace file.

    Reconnection reopens the file and seeks past the records already
    delivered (fixed-width framing makes the position exact), so a
    reader surviving transient I/O errors, stalls, or a concurrently
    appending writer yields the same record sequence a clean
    :func:`repro.streams.persistence.iter_trace` would.  With
    ``validate=True`` (requires ``quarantine``) each decoded record also
    passes admission coercion, dead-lettering rows whose *values* are
    corrupt — e.g. a NaN timestamp from flipped bytes mid-file.
    """
    quarantine = quarantine if quarantine is not None else QuarantineStream()
    with open(path, "rb") as fh:
        schema, _ = read_header(fh)

    def factory(skip: int) -> TraceTailSource:
        return TraceTailSource(
            path, skip=skip, follow=follow, quarantine=quarantine
        )

    return ResilientSource(
        factory,
        policy,
        schema=schema if validate else None,
        quarantine=quarantine,
        name=name or f"trace:{os.path.basename(path)}",
        metrics=metrics,
    )
