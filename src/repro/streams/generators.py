"""Composable random processes for synthetic packet traces.

The paper evaluates on two live AT&T feeds we cannot access.  This module
provides the building blocks from which :mod:`repro.streams.traces`
assembles statistically similar synthetic feeds:

* rate processes — packets-per-second over time.  The research-center feed
  is "highly variable" (paper §7), which is exactly what stresses the
  dynamic subset-sum threshold carryover; we model it as a regime-switching
  process with multiplicative jumps.  The data-center feed is steady.
* a packet-length model — the empirical mix of small (ACK-sized), medium,
  and MTU-sized packets that makes subset-sum sampling interesting (sums
  are dominated by large packets).
* an address space and flow model — realistic srcIP/destIP structure with
  Zipf-distributed flow popularity, so heavy-hitter and min-hash queries
  have genuine skew to find.

All processes take an explicit :class:`random.Random` so traces are fully
reproducible from a seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import StreamError


class RateProcess:
    """Interface: packets-per-second as a function of the second index."""

    def rate_at(self, second: int, rng: random.Random) -> int:
        raise NotImplementedError


@dataclass
class SteadyRateProcess(RateProcess):
    """A nearly constant rate with small relative jitter.

    Models the data-center tap: "highly aggregated, and hence has a much
    lower variability in its data rate" (paper §7).
    """

    mean_rate: int
    jitter: float = 0.03

    def __post_init__(self) -> None:
        if self.mean_rate <= 0:
            raise StreamError("mean_rate must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise StreamError("jitter must be in [0, 1)")

    def rate_at(self, second: int, rng: random.Random) -> int:
        factor = 1.0 + rng.uniform(-self.jitter, self.jitter)
        return max(1, int(self.mean_rate * factor))


@dataclass
class BurstyRateProcess(RateProcess):
    """Regime-switching bursty rate.

    The process holds a base rate for a geometrically distributed number of
    seconds, then jumps to a new rate drawn log-uniformly between
    ``low_rate`` and ``high_rate``.  Within a regime there is moderate
    second-to-second noise.  Sharp downward regime changes are the events
    that make non-relaxed dynamic subset-sum under-sample (paper §7.1), so
    the generator guarantees a mix of both directions.
    """

    low_rate: int = 5_000
    high_rate: int = 15_000
    mean_regime_seconds: float = 25.0
    within_regime_noise: float = 0.15

    _current_rate: Optional[int] = field(default=None, repr=False)
    _seconds_left: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.low_rate <= 0 or self.high_rate < self.low_rate:
            raise StreamError("need 0 < low_rate <= high_rate")
        if self.mean_regime_seconds <= 0:
            raise StreamError("mean_regime_seconds must be positive")

    def _draw_regime(self, rng: random.Random) -> None:
        log_low, log_high = math.log(self.low_rate), math.log(self.high_rate)
        previous = self._current_rate
        rate = int(math.exp(rng.uniform(log_low, log_high)))
        if previous is not None:
            # Force genuine jumps: redraw until the new regime differs from
            # the old by at least 40% in one direction or the other.
            attempts = 0
            while 0.6 * previous < rate < 1.67 * previous and attempts < 20:
                rate = int(math.exp(rng.uniform(log_low, log_high)))
                attempts += 1
        self._current_rate = max(self.low_rate, min(self.high_rate, rate))
        # Geometric holding time with the configured mean, at least 1 s.
        self._seconds_left = max(1, int(rng.expovariate(1.0 / self.mean_regime_seconds)))

    def rate_at(self, second: int, rng: random.Random) -> int:
        if self._current_rate is None or self._seconds_left <= 0:
            self._draw_regime(rng)
        self._seconds_left -= 1
        noise = 1.0 + rng.uniform(-self.within_regime_noise, self.within_regime_noise)
        assert self._current_rate is not None
        return max(1, int(self._current_rate * noise))


@dataclass(frozen=True)
class PacketLengthModel:
    """Trimodal packet-length distribution.

    Internet packet lengths are famously trimodal: ~40-byte control
    packets, a mid-size mode, and MTU-sized data packets.  ``weights`` are
    the mixture probabilities for (small, medium, large); within a mode the
    length is uniform over a narrow band.
    """

    small: Tuple[int, int] = (40, 80)
    medium: Tuple[int, int] = (300, 700)
    large: Tuple[int, int] = (1300, 1500)
    weights: Tuple[float, float, float] = (0.5, 0.2, 0.3)

    def __post_init__(self) -> None:
        if abs(sum(self.weights) - 1.0) > 1e-9:
            raise StreamError("length-model weights must sum to 1")
        for lo, hi in (self.small, self.medium, self.large):
            if not 0 < lo <= hi:
                raise StreamError("length bands must satisfy 0 < lo <= hi")

    def draw(self, rng: random.Random) -> int:
        u = rng.random()
        if u < self.weights[0]:
            band = self.small
        elif u < self.weights[0] + self.weights[1]:
            band = self.medium
        else:
            band = self.large
        return rng.randint(band[0], band[1])

    @property
    def mean_length(self) -> float:
        bands = (self.small, self.medium, self.large)
        return sum(w * (lo + hi) / 2.0 for w, (lo, hi) in zip(self.weights, bands))


@dataclass(frozen=True)
class AddressSpace:
    """A pool of synthetic IPv4 addresses with Zipf-like popularity.

    ``pick`` draws an index with probability proportional to
    ``1 / (rank + 1) ** alpha`` using the inverse-CDF of a precomputed
    table, then maps it to a 32-bit address inside ``base_prefix``.
    Skewed popularity is what makes heavy-hitters and per-source grouping
    realistic.
    """

    size: int = 5_000
    alpha: float = 1.1
    base_prefix: int = 0x0A000000  # 10.0.0.0/8

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise StreamError("address space size must be positive")
        if self.alpha < 0:
            raise StreamError("alpha must be non-negative")
        weights = [1.0 / (rank + 1) ** self.alpha for rank in range(self.size)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        object.__setattr__(self, "_cumulative", cumulative)

    def pick(self, rng: random.Random) -> int:
        """Draw one address (32-bit int), heavier ranks more likely."""
        u = rng.random()
        cumulative: List[float] = getattr(self, "_cumulative")
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return self.address_of(lo)

    def address_of(self, rank: int) -> int:
        """The address assigned to popularity rank ``rank``."""
        if not 0 <= rank < self.size:
            raise StreamError(f"rank {rank} outside address space of {self.size}")
        # Spread ranks through the prefix with a fixed odd multiplier so
        # adjacent ranks do not share a /24 (mimics real address scatter).
        scrambled = (rank * 2654435761) & 0x00FFFFFF
        return self.base_prefix | scrambled


@dataclass
class FlowModel:
    """Generates (srcIP, destIP, srcPort, destPort, protocol) flow keys.

    A configurable fraction of packets continue an existing active flow
    (drawn uniformly from a bounded table of live flows); the rest start a
    new flow with Zipf-popular endpoints.  This produces the mixture of a
    few elephant flows and many mice that subset-sum sampling targets.
    """

    sources: AddressSpace = field(default_factory=AddressSpace)
    destinations: AddressSpace = field(default_factory=lambda: AddressSpace(base_prefix=0xC0A80000))
    continue_probability: float = 0.8
    max_live_flows: int = 20_000

    _live: List[Tuple[int, int, int, int, int]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.continue_probability < 1.0:
            raise StreamError("continue_probability must be in [0, 1)")
        if self.max_live_flows <= 0:
            raise StreamError("max_live_flows must be positive")

    def next_flow_key(self, rng: random.Random) -> Tuple[int, int, int, int, int]:
        if self._live and rng.random() < self.continue_probability:
            return self._live[rng.randrange(len(self._live))]
        key = (
            self.sources.pick(rng),
            self.destinations.pick(rng),
            rng.randint(1024, 65535),
            rng.choice((80, 443, 53, 22, 25, rng.randint(1024, 65535))),
            rng.choice((6, 6, 6, 17)),  # mostly TCP, some UDP
        )
        if len(self._live) < self.max_live_flows:
            self._live.append(key)
        else:
            self._live[rng.randrange(len(self._live))] = key
        return key

    def reset(self) -> None:
        """Forget all live flows (used when replaying a fresh trace)."""
        self._live.clear()
