"""Lightweight stream records.

A :class:`Record` is a tuple of values bound to a :class:`StreamSchema`.
Records are immutable and hashable so they can serve directly as group keys
and live inside sets during tests.  Field access is by name (``rec.len`` /
``rec["len"]``) or by position.

The implementation intentionally avoids per-record dicts: values live in a
plain tuple and name lookup goes through the schema's precomputed index,
which keeps record creation cheap — the DSMS creates one per packet.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Sequence, Tuple

from repro.errors import SchemaError
from repro.streams.schema import StreamSchema


class Record:
    """One stream tuple: a value vector bound to a schema."""

    __slots__ = ("schema", "values")

    def __init__(self, schema: StreamSchema, values: Sequence[Any]) -> None:
        values = tuple(values)
        if len(values) != len(schema):
            raise SchemaError(
                f"record for schema {schema.name!r} needs {len(schema)} values,"
                f" got {len(values)}"
            )
        self.schema = schema
        self.values = values

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_mapping(cls, schema: StreamSchema, mapping: Mapping[str, Any]) -> "Record":
        """Build a record from a name->value mapping.

        Missing attributes default to ``0`` for numeric types and ``""`` for
        strings; unknown keys raise :class:`SchemaError`.  Key columns —
        the schema's *ordered* attributes, which become window ids and
        group keys — reject ``None`` and ``NaN`` here with a clear
        diagnostic: letting them through produces incomparable groups
        that fail silently, deep inside the sampling operator.
        """
        unknown = set(mapping) - set(schema.names)
        if unknown:
            raise SchemaError(
                f"unknown attributes for schema {schema.name!r}: {sorted(unknown)}"
            )
        defaults = {"int": 0, "uint": 0, "float": 0.0, "bool": False, "str": ""}
        values = []
        for attr in schema:
            if attr.name in mapping:
                value = mapping[attr.name]
            else:
                try:
                    value = defaults[attr.type_tag]
                except KeyError:
                    # A tag outside the defaults table (a schema built
                    # around validation, or a future type) must name the
                    # attribute, not surface as a bare KeyError.
                    raise SchemaError(
                        f"attribute {attr.name!r} of schema {schema.name!r}"
                        f" has type {attr.type_tag!r}, which has no default"
                        " value; supply it explicitly"
                    ) from None
            if attr.ordering.is_ordered:
                if value is None:
                    raise SchemaError(
                        f"key column {attr.name!r} of schema {schema.name!r}"
                        " is None; ordered attributes become window ids and"
                        " must be concrete"
                    )
                if isinstance(value, float) and value != value:
                    raise SchemaError(
                        f"key column {attr.name!r} of schema {schema.name!r}"
                        " is NaN; NaN window ids are incomparable and would"
                        " poison group keys"
                    )
            values.append(value)
        return cls(schema, values)

    # -- access ---------------------------------------------------------------

    def __getitem__(self, key: Any) -> Any:
        if isinstance(key, str):
            return self.values[self.schema.index_of(key)]
        return self.values[key]

    def __getattr__(self, name: str) -> Any:
        # __getattr__ is only called when normal lookup fails, so schema and
        # values resolve through __slots__ first.  During unpickling the
        # slots are not yet set, and looking up self.schema would re-enter
        # __getattr__ forever — hence the guarded access.
        try:
            schema = object.__getattribute__(self, "schema")
        except AttributeError:
            raise AttributeError(name) from None
        try:
            idx = schema.index_of(name)
        except SchemaError:
            raise AttributeError(name) from None
        return self.values[idx]

    def get(self, name: str, default: Any = None) -> Any:
        if name in self.schema:
            return self.values[self.schema.index_of(name)]
        return default

    def as_dict(self) -> Dict[str, Any]:
        """Materialise a name->value dict (test/debug convenience)."""
        return dict(zip(self.schema.names, self.values))

    def replace(self, **updates: Any) -> "Record":
        """Return a copy with the named fields updated."""
        unknown = set(updates) - set(self.schema.names)
        if unknown:
            raise SchemaError(
                f"unknown attributes for schema {self.schema.name!r}: {sorted(unknown)}"
            )
        new_values = list(self.values)
        for name, value in updates.items():
            new_values[self.schema.index_of(name)] = value
        return Record(self.schema, new_values)

    # -- protocol -------------------------------------------------------------

    def __reduce__(self) -> Tuple[Any, ...]:
        # Rebuild through the constructor: the slots+__getattr__ combination
        # breaks pickle's default state protocol (it probes __setstate__ on
        # a not-yet-initialised instance).  The sharded runtime ships record
        # batches between processes, so records must pickle cleanly.
        return (Record, (self.schema, self.values))

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return self.schema == other.schema and self.values == other.values

    def __hash__(self) -> int:
        return hash((self.schema.name, self.values))

    def __repr__(self) -> str:
        fields = ", ".join(f"{n}={v!r}" for n, v in zip(self.schema.names, self.values))
        return f"Record<{self.schema.name}>({fields})"
