"""Stream substrate: schemas, records, and synthetic network feeds.

This package stands in for Gigascope's packet-capture layer.  It provides:

* :mod:`repro.streams.schema` — typed stream schemas with *ordered*
  attribute markers (Gigascope marks e.g. ``time`` as ``increasing``; the
  query analyzer uses ordering to derive window boundaries).
* :mod:`repro.streams.records` — lightweight tuple records.
* :mod:`repro.streams.generators` — composable random processes (bursty
  rate processes, heavy-tailed length distributions, flow arrival models).
* :mod:`repro.streams.traces` — the two concrete feeds used throughout the
  paper's evaluation: the highly variable *research-center* feed and the
  steady high-rate *data-center* feed, plus a DDoS scenario used by the
  flow-sampling extension.
* :mod:`repro.streams.sources` — the hardened ingest edge: reconnecting
  :class:`ResilientSource` wrappers, the trace-file tail source that
  survives torn writes, and the dead-letter :class:`QuarantineStream`.
"""

from repro.streams.schema import Attribute, Ordering, StreamSchema, PKT_SCHEMA, TCP_SCHEMA
from repro.streams.records import Record
from repro.streams.generators import (
    BurstyRateProcess,
    SteadyRateProcess,
    PacketLengthModel,
    AddressSpace,
    FlowModel,
)
from repro.streams.traces import (
    TraceConfig,
    research_center_feed,
    data_center_feed,
    ddos_feed,
    replay,
)
from repro.streams.sources import (
    EAGER_RETRY,
    QuarantinedRecord,
    QuarantineStream,
    ResilientSource,
    RetryPolicy,
    SourceStats,
    TraceTailSource,
    replayable,
    resilient_trace_source,
)

__all__ = [
    "Attribute",
    "Ordering",
    "StreamSchema",
    "PKT_SCHEMA",
    "TCP_SCHEMA",
    "Record",
    "BurstyRateProcess",
    "SteadyRateProcess",
    "PacketLengthModel",
    "AddressSpace",
    "FlowModel",
    "TraceConfig",
    "research_center_feed",
    "data_center_feed",
    "ddos_feed",
    "replay",
    "EAGER_RETRY",
    "QuarantinedRecord",
    "QuarantineStream",
    "ResilientSource",
    "RetryPolicy",
    "SourceStats",
    "TraceTailSource",
    "replayable",
    "resilient_trace_source",
]
