"""Stream schemas with ordered-attribute markers.

Gigascope determines query evaluation windows by analyzing how queries
reference *ordered* attributes of the input stream (paper §3).  A schema
here is a named, ordered list of attributes; each attribute has a type tag
and an optional ordering property (``increasing`` / ``decreasing``).

The two schemas the paper queries against are provided as module constants:

* ``PKT_SCHEMA`` — ``PKT(time increasing, srcIP, destIP, len)``
* ``TCP_SCHEMA`` — the same shape under the name ``TCP`` (the §6.6 example
  queries read ``FROM TCP``), with an extra nanosecond ``uts`` timestamp
  used by the subset-sum query to make every packet its own group.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.errors import SchemaError


class Ordering(enum.Enum):
    """Ordering property of a stream attribute."""

    NONE = "none"
    INCREASING = "increasing"
    DECREASING = "decreasing"

    @property
    def is_ordered(self) -> bool:
        return self is not Ordering.NONE


#: Type tags understood by the expression engine.  We deliberately keep the
#: type system small: the paper's queries only use integer-like columns
#: (timestamps, IP addresses as 32-bit ints, packet lengths) and floats
#: appear only as intermediate expression values.
VALID_TYPES = ("int", "uint", "float", "str", "bool")


@dataclass(frozen=True)
class Attribute:
    """A single stream attribute.

    Parameters
    ----------
    name:
        Column name, referenced by queries.
    type_tag:
        One of :data:`VALID_TYPES`.
    ordering:
        Whether the attribute is monotone over the stream.  Ordered
        attributes are the ones on which window boundaries may be defined.
    """

    name: str
    type_tag: str = "int"
    ordering: Ordering = Ordering.NONE

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid attribute name: {self.name!r}")
        if self.type_tag not in VALID_TYPES:
            raise SchemaError(
                f"attribute {self.name!r} has unknown type {self.type_tag!r};"
                f" expected one of {VALID_TYPES}"
            )


class StreamSchema:
    """A named, ordered collection of attributes describing one stream."""

    def __init__(self, name: str, attributes: Iterable[Attribute]) -> None:
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid schema name: {name!r}")
        attrs: Tuple[Attribute, ...] = tuple(attributes)
        if not attrs:
            raise SchemaError(f"schema {name!r} must have at least one attribute")
        seen: Dict[str, Attribute] = {}
        for attr in attrs:
            if attr.name in seen:
                raise SchemaError(f"duplicate attribute {attr.name!r} in schema {name!r}")
            seen[attr.name] = attr
        self.name = name
        self.attributes = attrs
        self._by_name = seen
        self._index = {attr.name: i for i, attr in enumerate(attrs)}

    # -- lookups -----------------------------------------------------------

    def __contains__(self, attr_name: str) -> bool:
        return attr_name in self._by_name

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name`` or raise :class:`SchemaError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no attribute {name!r};"
                f" known: {[a.name for a in self.attributes]}"
            ) from None

    def index_of(self, name: str) -> int:
        """Positional index of attribute ``name`` within the schema."""
        self.attribute(name)
        return self._index[name]

    def ordered_attributes(self) -> Tuple[Attribute, ...]:
        """All attributes marked increasing or decreasing."""
        return tuple(a for a in self.attributes if a.ordering.is_ordered)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    # -- misc ---------------------------------------------------------------

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{a.name} {a.ordering.value}" if a.ordering.is_ordered else a.name
            for a in self.attributes
        )
        return f"{self.name}({cols})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamSchema):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))


def _packet_attributes(with_uts: bool) -> Tuple[Attribute, ...]:
    attrs = [
        Attribute("time", "uint", Ordering.INCREASING),
        Attribute("srcIP", "uint"),
        Attribute("destIP", "uint"),
        Attribute("len", "uint"),
        Attribute("srcPort", "uint"),
        Attribute("destPort", "uint"),
        Attribute("protocol", "uint"),
    ]
    if with_uts:
        # Nanosecond-granularity timestamp "with its timestamp-ness cast
        # away" (paper §6.1): it is unique per packet but NOT marked ordered,
        # so grouping on it makes each tuple its own group without creating
        # a window boundary per packet.
        attrs.insert(1, Attribute("uts", "uint"))
    return tuple(attrs)


#: ``PKT(time increasing, srcIP, destIP, len, ...)`` from paper §3.
PKT_SCHEMA = StreamSchema("PKT", _packet_attributes(with_uts=False))

#: ``TCP`` stream used by the §6.6 example queries; includes ``uts``.
TCP_SCHEMA = StreamSchema("TCP", _packet_attributes(with_uts=True))
