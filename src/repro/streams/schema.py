"""Stream schemas with ordered-attribute markers.

Gigascope determines query evaluation windows by analyzing how queries
reference *ordered* attributes of the input stream (paper §3).  A schema
here is a named, ordered list of attributes; each attribute has a type tag
and an optional ordering property (``increasing`` / ``decreasing``).

The two schemas the paper queries against are provided as module constants:

* ``PKT_SCHEMA`` — ``PKT(time increasing, srcIP, destIP, len)``
* ``TCP_SCHEMA`` — the same shape under the name ``TCP`` (the §6.6 example
  queries read ``FROM TCP``), with an extra nanosecond ``uts`` timestamp
  used by the subset-sum query to make every packet its own group.
"""

from __future__ import annotations

import enum
import weakref
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.errors import SchemaError


class Ordering(enum.Enum):
    """Ordering property of a stream attribute."""

    NONE = "none"
    INCREASING = "increasing"
    DECREASING = "decreasing"

    @property
    def is_ordered(self) -> bool:
        return self is not Ordering.NONE


#: Type tags understood by the expression engine.  We deliberately keep the
#: type system small: the paper's queries only use integer-like columns
#: (timestamps, IP addresses as 32-bit ints, packet lengths) and floats
#: appear only as intermediate expression values.
VALID_TYPES = ("int", "uint", "float", "str", "bool")


@dataclass(frozen=True)
class Attribute:
    """A single stream attribute.

    Parameters
    ----------
    name:
        Column name, referenced by queries.
    type_tag:
        One of :data:`VALID_TYPES`.
    ordering:
        Whether the attribute is monotone over the stream.  Ordered
        attributes are the ones on which window boundaries may be defined.
    """

    name: str
    type_tag: str = "int"
    ordering: Ordering = Ordering.NONE

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid attribute name: {self.name!r}")
        if self.type_tag not in VALID_TYPES:
            raise SchemaError(
                f"attribute {self.name!r} has unknown type {self.type_tag!r};"
                f" expected one of {VALID_TYPES}"
            )


class StreamSchema:
    """A named, ordered collection of attributes describing one stream."""

    def __init__(self, name: str, attributes: Iterable[Attribute]) -> None:
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid schema name: {name!r}")
        attrs: Tuple[Attribute, ...] = tuple(attributes)
        if not attrs:
            raise SchemaError(f"schema {name!r} must have at least one attribute")
        seen: Dict[str, Attribute] = {}
        for attr in attrs:
            if attr.name in seen:
                raise SchemaError(f"duplicate attribute {attr.name!r} in schema {name!r}")
            seen[attr.name] = attr
        self.name = name
        self.attributes = attrs
        self._by_name = seen
        self._index = {attr.name: i for i, attr in enumerate(attrs)}

    # -- lookups -----------------------------------------------------------

    def __contains__(self, attr_name: str) -> bool:
        return attr_name in self._by_name

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name`` or raise :class:`SchemaError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no attribute {name!r};"
                f" known: {[a.name for a in self.attributes]}"
            ) from None

    def index_of(self, name: str) -> int:
        """Positional index of attribute ``name`` within the schema."""
        self.attribute(name)
        return self._index[name]

    def ordered_attributes(self) -> Tuple[Attribute, ...]:
        """All attributes marked increasing or decreasing."""
        return tuple(a for a in self.attributes if a.ordering.is_ordered)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    # -- misc ---------------------------------------------------------------

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{a.name} {a.ordering.value}" if a.ordering.is_ordered else a.name
            for a in self.attributes
        )
        return f"{self.name}({cols})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamSchema):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))


# ---------------------------------------------------------------------------
# Admission-time validation / coercion
# ---------------------------------------------------------------------------
#
# The paper's operator ran against live NIC taps where malformed input is
# the normal case.  These helpers give the ingest edge one place to decide
# whether a raw value is (a) valid, (b) coercible to the attribute's type,
# or (c) quarantine-worthy — instead of letting a NaN timestamp surface
# later as an incomparable window id deep inside the sampling operator.

_INTEGRAL_TAGS = ("int", "uint")


def _is_nan(value: object) -> bool:
    return isinstance(value, float) and value != value


_FAST_CLEAN_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _fast_clean_check(schema: "StreamSchema"):
    """A compiled predicate: are these values already exactly valid?

    Admission validation runs per record on the ingest hot path, and in
    the overwhelmingly common case the record is clean and needs no
    coercion.  This compiles the whole "nothing to do" test into one
    short-circuiting expression, so :func:`coerce_record` pays a single
    call instead of per-attribute branching; any ``False`` falls
    through to the full diagnostic path.  The cache is a side table,
    not a schema attribute: schemas are pickled into checkpoints and
    across worker IPC, and a compiled lambda must never travel along.
    """
    cached = _FAST_CLEAN_CACHE.get(schema)
    if cached is not None:
        return cached
    parts = []
    for i, attr in enumerate(schema):
        v = f"v[{i}]"
        tag = attr.type_tag
        if tag == "uint":
            parts.append(f"type({v}) is int and {v} >= 0")
        elif tag == "int":
            parts.append(f"type({v}) is int")
        elif tag == "float":
            # coerce_value allows inf, and NaN only on unordered columns.
            if attr.ordering.is_ordered:
                parts.append(f"type({v}) is float and {v} == {v}")
            else:
                parts.append(f"type({v}) is float")
        elif tag == "bool":
            parts.append(f"type({v}) is bool")
        elif tag == "str":
            parts.append(f"type({v}) is str")
        else:  # unknown tag: force the slow path's diagnostic
            parts.append("False")
    check = eval("lambda v: " + " and ".join(parts))  # noqa: S307 - built from type tags only
    _FAST_CLEAN_CACHE[schema] = check
    return check


def coerce_value(attr: Attribute, value: object) -> object:
    """Validate ``value`` for ``attr``; returns the (possibly coerced) value.

    Raises :class:`SchemaError` with a diagnostic naming the attribute
    when the value is missing (``None``), non-finite where an orderable
    number is required, or not coercible to the attribute's type.
    Coercions performed: integral floats and numeric strings into
    ``int``/``uint``; ints and numeric strings into ``float``; 0/1 into
    ``bool``.  Ordered (key) attributes additionally reject ``NaN`` —
    a NaN window id is incomparable and silently poisons group keys.
    """
    if value is None:
        raise SchemaError(
            f"attribute {attr.name!r} is None; {attr.type_tag} columns"
            " need a concrete value"
        )
    tag = attr.type_tag
    if tag in _INTEGRAL_TAGS:
        if isinstance(value, bool):
            value = int(value)
        elif isinstance(value, float):
            if value != value or value in (float("inf"), float("-inf")):
                raise SchemaError(
                    f"attribute {attr.name!r} is non-finite ({value!r});"
                    f" cannot coerce to {tag}"
                )
            if not value.is_integer():
                raise SchemaError(
                    f"attribute {attr.name!r} has fractional value {value!r};"
                    f" cannot coerce to {tag}"
                )
            value = int(value)
        elif isinstance(value, str):
            try:
                value = int(value, 0)
            except ValueError:
                raise SchemaError(
                    f"attribute {attr.name!r} has non-numeric text {value!r};"
                    f" cannot coerce to {tag}"
                ) from None
        elif not isinstance(value, int):
            raise SchemaError(
                f"attribute {attr.name!r} has type {type(value).__name__};"
                f" expected {tag}"
            )
        if tag == "uint" and value < 0:
            raise SchemaError(
                f"attribute {attr.name!r} is negative ({value}); uint"
                " columns must be >= 0"
            )
        return value
    if tag == "float":
        if isinstance(value, bool):
            raise SchemaError(
                f"attribute {attr.name!r} is a bool; expected float"
            )
        if isinstance(value, str):
            try:
                value = float(value)
            except ValueError:
                raise SchemaError(
                    f"attribute {attr.name!r} has non-numeric text {value!r};"
                    " cannot coerce to float"
                ) from None
        elif isinstance(value, int):
            value = float(value)
        elif not isinstance(value, float):
            raise SchemaError(
                f"attribute {attr.name!r} has type {type(value).__name__};"
                " expected float"
            )
        if _is_nan(value) and attr.ordering.is_ordered:
            raise SchemaError(
                f"ordered attribute {attr.name!r} is NaN; NaN window ids"
                " are incomparable and would poison group keys"
            )
        return value
    if tag == "bool":
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        raise SchemaError(
            f"attribute {attr.name!r} has value {value!r}; expected bool"
        )
    if tag == "str":
        if isinstance(value, str):
            return value
        raise SchemaError(
            f"attribute {attr.name!r} has type {type(value).__name__};"
            " expected str"
        )
    raise SchemaError(f"attribute {attr.name!r} has unknown type {tag!r}")


def coerce_record(schema: StreamSchema, payload: object) -> "object":
    """Validate/coerce one raw payload into a :class:`Record` of ``schema``.

    Accepts a ``Record`` (revalidated in place, returned unchanged when
    already clean), a mapping, or a value sequence.  Raises
    :class:`SchemaError` with a per-attribute diagnostic on uncoercible
    input — callers at the ingest edge catch it and route the payload to
    the dead-letter quarantine instead of aborting the query.
    """
    from repro.streams.records import Record

    if isinstance(payload, Record):
        if payload.schema is not schema and payload.schema != schema:
            raise SchemaError(
                f"record is for schema {payload.schema.name!r}, expected"
                f" {schema.name!r}"
            )
        values = payload.values
        if _fast_clean_check(schema)(values):
            return payload
        coerced = tuple(
            coerce_value(attr, value) for attr, value in zip(schema, values)
        )
        if coerced == values:
            return payload
        return Record(schema, coerced)
    if isinstance(payload, dict):
        unknown = set(payload) - set(schema.names)
        if unknown:
            raise SchemaError(
                f"unknown attributes for schema {schema.name!r}:"
                f" {sorted(unknown)}"
            )
        missing = [a.name for a in schema if a.name not in payload]
        if missing:
            raise SchemaError(
                f"missing attributes for schema {schema.name!r}: {missing}"
            )
        return Record(
            schema,
            [coerce_value(attr, payload[attr.name]) for attr in schema],
        )
    if isinstance(payload, (list, tuple)):
        if len(payload) != len(schema):
            raise SchemaError(
                f"record for schema {schema.name!r} needs {len(schema)}"
                f" values, got {len(payload)}"
            )
        return Record(
            schema,
            [coerce_value(attr, value) for attr, value in zip(schema, payload)],
        )
    raise SchemaError(
        f"cannot build a {schema.name!r} record from"
        f" {type(payload).__name__}"
    )


def _packet_attributes(with_uts: bool) -> Tuple[Attribute, ...]:
    attrs = [
        Attribute("time", "uint", Ordering.INCREASING),
        Attribute("srcIP", "uint"),
        Attribute("destIP", "uint"),
        Attribute("len", "uint"),
        Attribute("srcPort", "uint"),
        Attribute("destPort", "uint"),
        Attribute("protocol", "uint"),
    ]
    if with_uts:
        # Nanosecond-granularity timestamp "with its timestamp-ness cast
        # away" (paper §6.1): it is unique per packet but NOT marked ordered,
        # so grouping on it makes each tuple its own group without creating
        # a window boundary per packet.
        attrs.insert(1, Attribute("uts", "uint"))
    return tuple(attrs)


#: ``PKT(time increasing, srcIP, destIP, len, ...)`` from paper §3.
PKT_SCHEMA = StreamSchema("PKT", _packet_attributes(with_uts=False))

#: ``TCP`` stream used by the §6.6 example queries; includes ``uts``.
TCP_SCHEMA = StreamSchema("TCP", _packet_attributes(with_uts=True))
