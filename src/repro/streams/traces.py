"""Concrete synthetic feeds mirroring the paper's two network taps.

Paper §7: *"We had two network feeds available for experiments.  The first
is the network connection to our research center.  This data stream
produces a moderate 5,000 to 15,000 packets per second, with a rate that
is highly variable.  The second network feed is a data center tap,
producing moderately high speed 100,000 packets per second (about 400
Mbits/sec).  This data feed is highly aggregated, and hence has a much
lower variability."*

Both feeds are generators of :class:`~repro.streams.records.Record` over
``TCP_SCHEMA``.  Packets carry:

* ``time`` — integer seconds (the ordered attribute windows are cut on),
* ``uts`` — a unique per-packet nanosecond counter (paper §6.1 uses this to
  make each packet its own group in the subset-sum query),
* flow five-tuple fields and a trimodal ``len``.

For the paper's default experiment the trace rates are scaled down by
``rate_scale`` (default 1/100) so a full multi-window experiment runs in
seconds of Python time; the *shape* of every per-window series is
unaffected because all per-window quantities are relative (sums are
compared to estimated sums, sample counts to target counts).  Benchmarks
that need absolute throughput use ``rate_scale=1.0`` over short spans.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, List, Optional

from repro.errors import StreamError
from repro.streams.generators import (
    BurstyRateProcess,
    FlowModel,
    PacketLengthModel,
    RateProcess,
    SteadyRateProcess,
)
from repro.streams.records import Record
from repro.streams.schema import TCP_SCHEMA, StreamSchema


@dataclass(frozen=True)
class TraceConfig:
    """Parameters shared by all feed constructors.

    ``duration_seconds`` is trace length in stream time; ``rate_scale``
    multiplies the per-second packet rate (use < 1 to shrink experiments
    while preserving relative shapes); ``seed`` makes the trace
    reproducible.
    """

    duration_seconds: int = 300
    rate_scale: float = 0.01
    seed: int = 20050614  # SIGMOD 2005 opening day
    start_time: int = 0

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise StreamError("duration_seconds must be positive")
        if self.rate_scale <= 0:
            raise StreamError("rate_scale must be positive")


def _generate(
    config: TraceConfig,
    rate_process: RateProcess,
    lengths: PacketLengthModel,
    flows: FlowModel,
    schema: StreamSchema = TCP_SCHEMA,
) -> Iterator[Record]:
    """Yield records second by second according to the rate process."""
    rng = random.Random(config.seed)
    uts = 0
    for second in range(config.duration_seconds):
        now = config.start_time + second
        rate = rate_process.rate_at(second, rng)
        count = max(1, int(rate * config.rate_scale))
        for _ in range(count):
            src, dst, sport, dport, proto = flows.next_flow_key(rng)
            uts += 1 + rng.randrange(1000)  # strictly increasing, gappy
            yield Record(
                schema,
                (
                    now,
                    uts,
                    src,
                    dst,
                    lengths.draw(rng),
                    sport,
                    dport,
                    proto,
                ),
            )


def research_center_feed(config: Optional[TraceConfig] = None) -> Iterator[Record]:
    """The highly variable research-center feed (5k–15 kpps before scaling).

    High variability is the point: the accuracy experiments (Figs 2–4) rely
    on sharp inter-window load changes to expose the non-relaxed dynamic
    subset-sum's under-sampling.
    """
    config = config or TraceConfig()
    rate = BurstyRateProcess(low_rate=5_000, high_rate=15_000, mean_regime_seconds=25.0)
    return _generate(config, rate, PacketLengthModel(), FlowModel())


def data_center_feed(config: Optional[TraceConfig] = None) -> Iterator[Record]:
    """The steady data-center feed (100 kpps before scaling).

    Low variability makes performance measurements consistent (paper §7),
    so this feed backs the CPU-usage figures (Figs 5–6).
    """
    config = config or TraceConfig(duration_seconds=120)
    rate = SteadyRateProcess(mean_rate=100_000, jitter=0.03)
    flows = FlowModel(continue_probability=0.9, max_live_flows=50_000)
    return _generate(config, rate, PacketLengthModel(), flows)


def ddos_feed(
    config: Optional[TraceConfig] = None,
    attack_start: int = 60,
    attack_duration: int = 60,
    attack_rate_multiplier: float = 8.0,
) -> Iterator[Record]:
    """A feed with a DDoS phase: a storm of tiny single-packet flows.

    Paper §8 motivates the integrated flow-aggregation + sampling query
    with exactly this scenario: "a large number of small flows consisting
    of only a few packets (e.g. during DDOS attacks)" exhausts the group
    table of a naive flow-aggregation query.
    """
    config = config or TraceConfig(duration_seconds=180)
    if attack_start < 0 or attack_duration <= 0:
        raise StreamError("attack window must be non-empty and non-negative")
    rng = random.Random(config.seed ^ 0xDD05)
    lengths = PacketLengthModel()
    attack_lengths = PacketLengthModel(weights=(0.95, 0.04, 0.01))
    flows = FlowModel()
    base_rate = SteadyRateProcess(mean_rate=10_000, jitter=0.1)
    uts = 0
    for second in range(config.duration_seconds):
        now = config.start_time + second
        in_attack = attack_start <= second < attack_start + attack_duration
        rate = base_rate.rate_at(second, rng)
        if in_attack:
            rate = int(rate * attack_rate_multiplier)
        count = max(1, int(rate * config.rate_scale))
        for _ in range(count):
            uts += 1 + rng.randrange(1000)
            if in_attack and rng.random() < 0.8:
                # Spoofed sources: each attack packet is its own tiny flow.
                src = rng.getrandbits(32)
                dst = flows.destinations.address_of(0)  # one victim
                rec = (now, uts, src, dst, attack_lengths.draw(rng),
                       rng.randint(1024, 65535), 80, 6)
            else:
                src, dst, sport, dport, proto = flows.next_flow_key(rng)
                rec = (now, uts, src, dst, lengths.draw(rng), sport, dport, proto)
            yield Record(TCP_SCHEMA, rec)


def replay(records: Iterable[Record]) -> Iterator[Record]:
    """Replay a materialised trace (list) as a fresh iterator.

    Experiments that compare several query configurations on *identical*
    input materialise a trace once and replay it per configuration.
    """
    return iter(list(records) if not isinstance(records, list) else records)
