"""Shared diagnostic types for the static query-analysis subsystem.

Every pass — clause-legality analysis, type inference, semantic lints,
plan lints — reports through the same :class:`Diagnostic` shape so the
CLI, the runtime's strict mode, and the tests all consume one format.

Diagnostics are *collected*, not raised: a :class:`DiagnosticCollector`
accumulates everything the passes find so a single ``repro lint`` run
shows every problem in the query, with source-line caret rendering via
:func:`render_diagnostics`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.dsms.span import Span


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` means the query cannot run correctly (or at all);
    ``WARNING`` means it runs but likely computes the wrong sample or
    wastes resources; ``INFO`` is advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the analyzer/linter.

    Parameters
    ----------
    rule:
        The stable rule identifier (``SA001`` ... ``SA1xx``); see
        ``docs/LINT_RULES.md`` for the catalogue.
    severity:
        :class:`Severity` of the finding.
    message:
        One-line human-readable description of the problem.
    span:
        Source location (``None`` when no position is known, e.g. for
        whole-query findings on programmatic ASTs).
    hint:
        Optional fix suggestion, rendered under the caret line.
    """

    rule: str
    severity: Severity
    message: str
    span: Optional[Span] = None
    hint: Optional[str] = None

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def location(self) -> str:
        """``line:col`` of the finding, or ``-`` when unknown."""
        if self.span is None or self.span.line <= 0:
            return "-"
        return f"{self.span.line}:{self.span.col}"

    def __str__(self) -> str:
        return f"{self.location()}: {self.rule} {self.severity}: {self.message}"


class DiagnosticCollector:
    """Accumulates diagnostics across analysis passes.

    The parser-level analyzer historically raised on the first problem;
    passing a collector switches it (and every lint pass) to
    collect-and-continue, so users see *all* violations in one run.
    """

    def __init__(self) -> None:
        self._diagnostics: List[Diagnostic] = []

    def add(self, diagnostic: Diagnostic) -> None:
        self._diagnostics.append(diagnostic)

    def report(
        self,
        rule: str,
        severity: Severity,
        message: str,
        span: Optional[Span] = None,
        hint: Optional[str] = None,
    ) -> None:
        self.add(Diagnostic(rule, severity, message, span, hint))

    def error(self, rule: str, message: str, span: Optional[Span] = None,
              hint: Optional[str] = None) -> None:
        self.report(rule, Severity.ERROR, message, span, hint)

    def warning(self, rule: str, message: str, span: Optional[Span] = None,
                hint: Optional[str] = None) -> None:
        self.report(rule, Severity.WARNING, message, span, hint)

    # -- accessors -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diagnostics)

    def __bool__(self) -> bool:
        return bool(self._diagnostics)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        return list(self._diagnostics)

    @property
    def has_errors(self) -> bool:
        return any(d.is_error for d in self._diagnostics)

    def sorted(self) -> List[Diagnostic]:
        """Diagnostics in source order (unknown positions last)."""
        def key(d: Diagnostic):
            if d.span is None or d.span.line <= 0:
                return (1, 0, 0, d.rule)
            return (0, d.span.line, d.span.col, d.rule)

        return sorted(self._diagnostics, key=key)


def render_diagnostics(
    diagnostics: Sequence[Diagnostic],
    source: Optional[str] = None,
    filename: str = "<query>",
) -> str:
    """Render diagnostics with source-line carets, compiler style::

        <query>:5:15: SA004 warning: CLEANING BY predicate is always TRUE ...
            CLEANING BY TRUE
                        ^^^^
          hint: make the predicate depend on group state

    ``source`` enables the caret lines; without it only the one-line
    headers are emitted.
    """
    lines: List[str] = []
    source_lines = source.splitlines() if source is not None else []
    for diag in diagnostics:
        lines.append(
            f"{filename}:{diag.location()}: {diag.rule}"
            f" {diag.severity}: {diag.message}"
        )
        span = diag.span
        if span is not None and 0 < span.line <= len(source_lines):
            text = source_lines[span.line - 1]
            lines.append(f"    {text}")
            indent = " " * (span.col - 1)
            lines.append(f"    {indent}{span.caret_line()}")
        if diag.hint:
            lines.append(f"  hint: {diag.hint}")
    return "\n".join(lines)
