"""Sampling-soundness analysis: the SA2xx rule family.

The paper's value proposition is that a sampled GSQL query computes a
*statistically meaningful* answer — yet nothing in the pipeline used to
check that a plan's composition of samplers and aggregates is actually
unbiased.  This pass closes that gap with the GUS ("Generalized Uniform
Sampling") formalism of *A Sampling Algebra for Aggregate Estimation*
(Nirkhiwale–Dobra–Jermaine, PVLDB 2013): every plan edge is annotated
with an abstract :class:`SamplingFact` (sampling scheme, independence /
exchangeability, conditioning columns, available Horvitz–Thompson
corrections) derived from the :data:`~repro.analysis.signatures.
SAMPLER_PROFILES` of the SFUNs the WHERE clause calls, propagated by the
generic dataflow engine (:mod:`repro.analysis.dataflow`).

Rules (all warnings — the query runs, but its estimates are suspect):

``SA201``
    A non-linear aggregate (``avg``/``min``/``max``/``count_distinct``)
    is computed over a sampled tuple stream.  Non-linear estimators are
    biased under *any* sampling design without a dedicated estimator
    (GUS §4: only linear aggregates compose with sampling operators).
``SA202``
    A linear aggregate (``sum``/``count``) is computed under a
    weighted or keyed sampler but the SELECT list exports no correction
    (threshold / sampling level), so the output cannot be
    Horvitz–Thompson-corrected downstream.
``SA203``
    The admission predicate chains samplers from *different* families.
    The composed inclusion probabilities are the product of
    per-family probabilities only under independence the packs do not
    guarantee — chaining breaks exchangeability and every downstream
    estimate (GUS theorem 2 requires a single sampling design per
    stream edge).
``SA204``
    A (non-window) GROUP BY variable is a column the sampler's
    inclusion decision conditions on.  Group membership and inclusion
    are then dependent: groups whose key correlates with high inclusion
    probability are over-represented.  Keyed schemes (distinct
    sampling, min-hash) are exempt — conditioning on the hashed group
    key is exactly how they work.

The computed annotations are also exported on the plan object
(``plan.annotations["sampling"]``) so a later layer can attach
confidence intervals to sampled aggregates (ROADMAP item 5).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.dataflow import (
    DataflowAnalysis,
    DataflowResult,
    PlanGraph,
    PlanNode,
    build_plan_graph,
    run_dataflow,
)
from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.signatures import SamplerProfile, sampler_profile
from repro.dsms.expr import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    Expr,
    StatefulCall,
    SuperAggregateCall,
    column_names,
    find_nodes,
)
from repro.dsms.parser.analyzer import AnalyzedQuery, Registries
from repro.dsms.parser.planner import QueryPlan

#: Group aggregates whose plain value is an unbiased estimator of the
#: full-population value under uniform sampling *after linear scaling* —
#: the only aggregates GUS composes with sampling operators.
LINEAR_AGGREGATES = frozenset({"sum", "count"})

#: Group aggregates with no unbiased sample-based estimator at all
#: (order statistics and distinct counts need dedicated sketches).
NONLINEAR_AGGREGATES = frozenset({"avg", "min", "max", "count_distinct"})


@dataclass(frozen=True)
class SamplingFact:
    """The abstract sampling state of one plan edge (the GUS lattice).

    ``scheme`` is the least upper bound of the admission schemes applied
    upstream: ``"all"`` (no sampling) < {``"uniform"``, ``"weighted"``,
    ``"keyed"``} < ``"composite"`` (mixed families — top, nothing is
    known about inclusion probabilities any more).
    """

    scheme: str = "all"  # "all" | "uniform" | "weighted" | "keyed" | "composite"
    families: Tuple[str, ...] = ()
    exchangeable: bool = True
    condition_columns: FrozenSet[str] = frozenset()
    corrections: FrozenSet[str] = frozenset()

    @property
    def sampled(self) -> bool:
        return self.scheme != "all"

    def compose(self, profile: SamplerProfile, columns: FrozenSet[str]) -> "SamplingFact":
        """Apply one more admission sampler to this edge (GUS ∘)."""
        families = self.families
        if profile.family not in families:
            families = families + (profile.family,)
        scheme = profile.scheme if self.scheme == "all" else (
            self.scheme if self.scheme == profile.scheme else "composite"
        )
        return SamplingFact(
            scheme=scheme,
            families=families,
            exchangeable=self.exchangeable and len(families) <= 1,
            condition_columns=self.condition_columns | columns,
            corrections=self.corrections | profile.corrections,
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "families": list(self.families),
            "exchangeable": self.exchangeable,
            "condition_columns": sorted(self.condition_columns),
            "corrections": sorted(self.corrections),
        }


class SamplingAnalysis(DataflowAnalysis[SamplingFact]):
    """Forward propagation of :class:`SamplingFact` over the plan DAG."""

    def __init__(self, analyzed: AnalyzedQuery) -> None:
        self._analyzed = analyzed
        #: group-by variable name -> defining source columns
        self._group_defs: Dict[str, FrozenSet[str]] = {
            item.name: frozenset(column_names(item.expr))
            for item in analyzed.group_by
        }

    # -- hooks -------------------------------------------------------------

    def boundary(self, node: PlanNode) -> SamplingFact:
        return SamplingFact()

    def transfer(self, node: PlanNode, fact: SamplingFact) -> SamplingFact:
        if node.kind != "where":
            return fact
        for _clause, expr in node.exprs:
            for call, profile in admission_samplers(expr):
                fact = fact.compose(profile, self._condition_columns(call, profile))
            if superaggregate_admission(expr):
                # min-hash style: WHERE v <= Kth_smallest$(v, k) keeps the
                # k smallest (hashed) keys — a keyed threshold sampler.
                fact = fact.compose(
                    SamplerProfile("superagg_threshold", "keyed", True),
                    frozenset(),
                )
        return fact

    def join(self, facts: List[SamplingFact]) -> SamplingFact:
        result = facts[0]
        for other in facts[1:]:
            for family in other.families:
                if family not in result.families:
                    result = replace(
                        result, families=result.families + (family,)
                    )
            scheme = other.scheme if result.scheme == "all" else (
                result.scheme
                if result.scheme == other.scheme or other.scheme == "all"
                else "composite"
            )
            result = replace(
                result,
                scheme=scheme,
                exchangeable=result.exchangeable and other.exchangeable,
                condition_columns=result.condition_columns
                | other.condition_columns,
                corrections=result.corrections | other.corrections,
            )
        return result

    # -- helpers -----------------------------------------------------------

    def _condition_columns(
        self, call: StatefulCall, profile: SamplerProfile
    ) -> FrozenSet[str]:
        """Source columns the sampler's inclusion decision conditions on.

        Group-by variables appearing in conditioned arguments are
        resolved to their defining source columns, so ``dsample(HXU)``
        with ``HU(srcIP) AS HXU`` conditions on ``srcIP`` (and ``HXU``).
        """
        columns: set[str] = set()
        for index in profile.condition_args:
            if index >= len(call.args):
                continue
            for name in column_names(call.args[index]):
                columns.add(name)
                columns.update(self._group_defs.get(name, frozenset()))
        return frozenset(columns)


def admission_samplers(expr: Expr) -> List[Tuple[StatefulCall, SamplerProfile]]:
    """Sampling SFUN calls in ``expr`` that make the admission decision."""
    pairs: List[Tuple[StatefulCall, SamplerProfile]] = []
    for node in find_nodes(expr, StatefulCall):
        assert isinstance(node, StatefulCall)
        profile = sampler_profile(node.name)
        if profile is not None and profile.admits:
            pairs.append((node, profile))
    return pairs


def superaggregate_admission(expr: Expr) -> bool:
    """True when ``expr`` admits tuples through a superaggregate
    threshold comparison (``HX <= Kth_smallest_value$(HX, 50)``)."""
    for node in find_nodes(expr, BinaryOp):
        assert isinstance(node, BinaryOp)
        if node.op in ("<", "<=", ">", ">="):
            if find_nodes(node.left, SuperAggregateCall) or find_nodes(
                node.right, SuperAggregateCall
            ):
                return True
    return False


# ---------------------------------------------------------------------------
# Plan annotation (exported facts)
# ---------------------------------------------------------------------------


def analyze_sampling(
    plan: QueryPlan, graph: Optional[PlanGraph] = None
) -> DataflowResult[SamplingFact]:
    """Run the sampling dataflow over ``plan`` and export annotations.

    Stores a JSON-friendly summary under ``plan.annotations["sampling"]``:
    the per-edge facts plus, for every SELECT item containing a group
    aggregate, whether its estimator is unbiased / correctable under the
    upstream sampling design.  A later layer reads these to emit
    confidence intervals next to sampled aggregates (ROADMAP item 5).
    """
    if graph is None:
        graph = build_plan_graph(plan)
    result = run_dataflow(graph, SamplingAnalysis(plan.analyzed))

    select_node = graph.first_of_kind("select")
    fact = (
        result.fact_into(select_node.node_id)
        if select_node is not None
        else None
    ) or SamplingFact()

    estimators: List[Dict[str, Any]] = []
    for index, item in enumerate(plan.analyzed.ast.select):
        if item.expr is None:
            continue
        for agg in find_nodes(item.expr, AggregateCall):
            assert isinstance(agg, AggregateCall)
            linear = agg.name in LINEAR_AGGREGATES
            corrected = _item_corrected(plan.analyzed, item.expr, fact)
            estimators.append(
                {
                    "item": index,
                    "aggregate": agg.name,
                    "linear": linear,
                    "scheme": fact.scheme,
                    "unbiased": (not fact.sampled)
                    or (linear and (fact.scheme == "uniform" or corrected)),
                    "corrected": corrected,
                }
            )
    plan.annotations["sampling"] = {
        "edges": {
            f"{src}->{dst}": edge_fact.to_json()
            for (src, dst), edge_fact in sorted(result.edge_facts.items())
        },
        "estimators": estimators,
    }
    return result


def _item_corrected(
    analyzed: AnalyzedQuery, expr: Expr, fact: SamplingFact
) -> bool:
    """True when the SELECT list exports a correction for ``fact``'s
    sampling design (the correction may live in any SELECT item — the
    distinct-sampling pattern exports ``dslevel()`` as its own column)."""
    if not fact.corrections:
        return False
    for item in analyzed.ast.select:
        if item.expr is None:
            continue
        for call in find_nodes(item.expr, StatefulCall):
            assert isinstance(call, StatefulCall)
            if call.name in fact.corrections:
                return True
    return False


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def check_sampling(
    analyzed: AnalyzedQuery,
    plan: QueryPlan,
    registries: Registries,
    collector: DiagnosticCollector,
) -> None:
    """Run the SA2xx sampling-soundness rules over a compiled plan."""
    graph = build_plan_graph(plan)
    result = analyze_sampling(plan, graph)

    select_node = graph.first_of_kind("select")
    fact = (
        result.fact_into(select_node.node_id)
        if select_node is not None
        else None
    ) or SamplingFact()

    _check_nonlinear_aggregates(analyzed, fact, collector)
    _check_uncorrected_linear(analyzed, fact, collector)
    _check_chained_samplers(analyzed, fact, collector)
    _check_conditioned_grouping(analyzed, fact, collector)


def _check_nonlinear_aggregates(
    analyzed: AnalyzedQuery, fact: SamplingFact, collector: DiagnosticCollector
) -> None:
    if not fact.sampled:
        return
    for item in analyzed.ast.select:
        if item.expr is None:
            continue
        for agg in find_nodes(item.expr, AggregateCall):
            assert isinstance(agg, AggregateCall)
            if agg.name not in NONLINEAR_AGGREGATES:
                continue
            collector.warning(
                "SA201",
                f"non-linear aggregate {agg.name}() is computed over a"
                f" {fact.scheme} sample (WHERE samples via"
                f" {', '.join(fact.families)}); its plain value is a biased"
                " estimator of the full-stream value",
                agg.span,
                hint="only linear aggregates (sum, count) compose with"
                " sampling; use a dedicated estimator or drop the sampler",
            )


def _check_uncorrected_linear(
    analyzed: AnalyzedQuery, fact: SamplingFact, collector: DiagnosticCollector
) -> None:
    if fact.scheme not in ("weighted", "keyed", "composite"):
        return
    for item in analyzed.ast.select:
        if item.expr is None:
            continue
        for agg in find_nodes(item.expr, AggregateCall):
            assert isinstance(agg, AggregateCall)
            if agg.name not in LINEAR_AGGREGATES:
                continue
            if _item_corrected(analyzed, item.expr, fact):
                continue
            available = sorted(fact.corrections)
            hint = (
                f"export the pack's correction ({', '.join(available)}) in"
                " the SELECT list (compare examples/queries/subset_sum.gsql)"
                if available
                else "this sampler exports no correction function; use a"
                " pack that does (e.g. ssample/ssthreshold) or a uniform"
                " sampler"
            )
            collector.warning(
                "SA202",
                f"{agg.name}() is computed under {fact.scheme} sampling"
                f" ({', '.join(fact.families)}) but the SELECT list exports"
                " no inclusion-probability correction: the estimate cannot"
                " be Horvitz-Thompson-corrected downstream",
                agg.span,
                hint=hint,
            )


def _check_chained_samplers(
    analyzed: AnalyzedQuery, fact: SamplingFact, collector: DiagnosticCollector
) -> None:
    if fact.exchangeable or len(fact.families) < 2:
        return
    where = analyzed.ast.where
    span = None
    if where is not None:
        calls = [
            node
            for node, profile in admission_samplers(where)
        ]
        if len(calls) >= 2:
            span = calls[1].span
    collector.warning(
        "SA203",
        "the admission predicate chains samplers from different families"
        f" ({', '.join(fact.families)}); the composed inclusion"
        " probabilities are unknown and exchangeability is broken, so no"
        " downstream estimate is unbiased",
        span or analyzed.ast.clause_span("WHERE"),
        hint="sample once per query; derive secondary samples in a"
        " downstream query reading this one's output",
    )


def _check_conditioned_grouping(
    analyzed: AnalyzedQuery, fact: SamplingFact, collector: DiagnosticCollector
) -> None:
    if not fact.sampled or fact.scheme == "keyed":
        return  # keyed schemes condition on the group key by design
    if not fact.condition_columns:
        return
    for item in analyzed.group_by:
        if item.name in analyzed.ordered_names:
            continue  # window variables partition time, not the population
        if not isinstance(item.expr, ColumnRef):
            continue
        if item.expr.name in fact.condition_columns:
            collector.warning(
                "SA204",
                f"GROUP BY variable {item.name!r} is a column the"
                f" {'/'.join(fact.families)} sampler conditions on"
                " (inclusion probability is a function of"
                f" {item.expr.name!r}): group membership and inclusion are"
                " dependent, so per-group estimates are biased toward"
                " high-inclusion keys",
                item.expr.span,
                hint="group on a column independent of the sampler's"
                " measure, or switch to a keyed sampler (distinct"
                " sampling) designed to condition on its group key",
            )
