"""Type and arity metadata for the functions a query can call.

The runtime registries (:mod:`repro.dsms.functions`,
:mod:`repro.dsms.aggregates`, :mod:`repro.dsms.stateful`,
:mod:`repro.core.superaggregates`) map names to Python callables and give
the analyzer nothing to reason with statically.  This module recovers
signatures two ways:

* a curated table for the built-ins (exact types the paper's queries
  depend on — ``H`` is a 32-bit hash, ``HU`` lands in the unit interval);
* :mod:`inspect` introspection for user-registered callables: positional
  parameter counts become arity bounds, and ``bool``/``int``/``float``/
  ``str`` return annotations become return types (SFUN packs annotate
  their returns, so ``ssample``'s ``-> bool`` is visible to type
  inference without any registration changes).

Anything unrecoverable degrades to :attr:`GType.UNKNOWN` / unchecked
arity rather than a false positive.
"""

from __future__ import annotations

import enum
import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Optional, Sequence, Tuple

from repro.dsms.functions import FunctionRegistry
from repro.dsms.stateful import StatefulLibrary


class GType(enum.Enum):
    """The GSQL value types (mirrors ``schema.VALID_TYPES`` plus UNKNOWN)."""

    INT = "int"
    UINT = "uint"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value

    @property
    def is_numeric(self) -> bool:
        return self in (GType.INT, GType.UINT, GType.FLOAT)

    @property
    def is_known(self) -> bool:
        return self is not GType.UNKNOWN


def from_type_tag(tag: str) -> GType:
    """Map a schema ``type_tag`` to a :class:`GType`."""
    try:
        return GType(tag)
    except ValueError:
        return GType.UNKNOWN


_ANNOTATION_TYPES: Dict[Any, GType] = {
    bool: GType.BOOL, "bool": GType.BOOL,
    int: GType.INT, "int": GType.INT,
    float: GType.FLOAT, "float": GType.FLOAT,
    str: GType.STR, "str": GType.STR,
}


def numeric_join(a: GType, b: GType) -> GType:
    """Result type of arithmetic between two numeric operands.

    FLOAT absorbs everything, INT absorbs UINT (subtraction can go
    negative), UNKNOWN is contagious.
    """
    if not (a.is_known and b.is_known):
        return GType.UNKNOWN
    if GType.FLOAT in (a, b):
        return GType.FLOAT
    if GType.INT in (a, b):
        return GType.INT
    return GType.UINT


@dataclass(frozen=True)
class Arity:
    """Allowed positional argument counts; ``max_args=None`` = unbounded."""

    min_args: int
    max_args: Optional[int]

    def accepts(self, count: int) -> bool:
        if count < self.min_args:
            return False
        return self.max_args is None or count <= self.max_args

    def __str__(self) -> str:
        if self.max_args is None:
            return f"{self.min_args}+"
        if self.min_args == self.max_args:
            return str(self.min_args)
        return f"{self.min_args}..{self.max_args}"


#: Return-type rule: receives the inferred argument types.
ReturnRule = Callable[[Sequence[GType]], GType]


def _const(gtype: GType) -> ReturnRule:
    return lambda args: gtype


def _arg0_or(default: GType) -> ReturnRule:
    return lambda args: args[0] if args and args[0].is_known else default


def _join_args(args: Sequence[GType]) -> GType:
    if not args:
        return GType.UNKNOWN
    result = args[0]
    for arg in args[1:]:
        result = numeric_join(result, arg)
    return result


@dataclass(frozen=True)
class Signature:
    """Arity bounds plus a return-type rule for one callable."""

    arity: Optional[Arity]  # None = unchecked
    returns: ReturnRule


#: Built-in scalar functions (see ``default_function_registry``).
_BUILTIN_SCALARS: Dict[str, Signature] = {
    "UMAX": Signature(Arity(2, 2), _join_args),
    "UMIN": Signature(Arity(2, 2), _join_args),
    "H": Signature(Arity(1, 2), _const(GType.UINT)),
    "HU": Signature(Arity(1, 2), _const(GType.FLOAT)),
    "abs": Signature(Arity(1, 1), _arg0_or(GType.UNKNOWN)),
    "sqrt": Signature(Arity(1, 1), _const(GType.FLOAT)),
    "floor": Signature(Arity(1, 1), _const(GType.INT)),
    "ceil": Signature(Arity(1, 1), _const(GType.INT)),
    "ip_str": Signature(Arity(1, 1), _const(GType.STR)),
}

#: Built-in group aggregates (see ``default_aggregate_registry``).
_BUILTIN_AGGREGATES: Dict[str, Signature] = {
    "sum": Signature(Arity(1, 1), _arg0_or(GType.UNKNOWN)),
    "count": Signature(Arity(1, 1), _const(GType.INT)),
    "min": Signature(Arity(1, 1), _arg0_or(GType.UNKNOWN)),
    "max": Signature(Arity(1, 1), _arg0_or(GType.UNKNOWN)),
    "avg": Signature(Arity(1, 1), _const(GType.FLOAT)),
    "count_distinct": Signature(Arity(1, 1), _const(GType.INT)),
    "first": Signature(Arity(1, 1), _arg0_or(GType.UNKNOWN)),
    "last": Signature(Arity(1, 1), _arg0_or(GType.UNKNOWN)),
}

#: Built-in superaggregates (see ``default_superaggregate_registry``).
#: Kth_smallest_value$ reports +inf while under-populated, hence FLOAT.
_BUILTIN_SUPERAGGREGATES: Dict[str, Signature] = {
    "count_distinct": Signature(Arity(0, 1), _const(GType.INT)),
    "Kth_smallest_value": Signature(Arity(2, 2), _const(GType.FLOAT)),
    "sum": Signature(Arity(1, 1), lambda args: numeric_join(
        args[0] if args else GType.UNKNOWN, GType.UINT)),
    "count": Signature(Arity(0, 1), _const(GType.INT)),
}

_UNCHECKED = Signature(None, _const(GType.UNKNOWN))


def _callable_arity(fn: Callable[..., Any], skip_first: bool = False) -> Optional[Arity]:
    """Positional arity bounds of ``fn``, or None when uninspectable."""
    try:
        parameters = list(inspect.signature(fn).parameters.values())
    except (TypeError, ValueError):
        return None
    if skip_first:
        if not parameters:
            return None
        parameters = parameters[1:]
    min_args = 0
    max_args: Optional[int] = 0
    for param in parameters:
        if param.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            if max_args is not None:
                max_args += 1
            if param.default is inspect.Parameter.empty:
                min_args += 1
        elif param.kind is inspect.Parameter.VAR_POSITIONAL:
            max_args = None
        elif (
            param.kind is inspect.Parameter.KEYWORD_ONLY
            and param.default is inspect.Parameter.empty
        ):
            # Not callable with positional query arguments; don't guess.
            return None
    return Arity(min_args, max_args)


def _callable_return(fn: Callable[..., Any]) -> ReturnRule:
    try:
        annotation = inspect.signature(fn).return_annotation
    except (TypeError, ValueError):
        return _const(GType.UNKNOWN)
    return _const(_ANNOTATION_TYPES.get(annotation, GType.UNKNOWN))


def scalar_signature(registry: FunctionRegistry, name: str) -> Signature:
    """Signature of a registered scalar function."""
    if name in _BUILTIN_SCALARS:
        return _BUILTIN_SCALARS[name]
    if name not in registry:
        return _UNCHECKED
    fn = registry.get(name)
    return Signature(_callable_arity(fn), _callable_return(fn))


def aggregate_signature(name: str) -> Signature:
    """Signature of a group aggregate (unknown UDAFs are unchecked)."""
    return _BUILTIN_AGGREGATES.get(name, Signature(Arity(1, 1), _const(GType.UNKNOWN)))


def superaggregate_signature(name: str) -> Signature:
    """Signature of a superaggregate (called as ``name$``)."""
    return _BUILTIN_SUPERAGGREGATES.get(name, _UNCHECKED)


def stateful_signature(library: StatefulLibrary, name: str) -> Signature:
    """Signature of an SFUN; the implicit state parameter is skipped."""
    if name not in library:
        return _UNCHECKED
    fn = library.callable_of(name)
    return Signature(_callable_arity(fn, skip_first=True), _callable_return(fn))


# ---------------------------------------------------------------------------
# Sampling profiles (used by repro.analysis.sampling_algebra, rules SA2xx)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SamplerProfile:
    """Statistical profile of one sampling SFUN family.

    The sampling-algebra pass (GUS formalism of Nirkhiwale–Dobra–Jermaine)
    propagates these through the plan:

    ``family``
        The sampler family; chaining two *different* families in one
        admission predicate breaks exchangeability (rule SA203).
    ``scheme``
        How inclusion probabilities behave:

        * ``"uniform"`` — every tuple has the same inclusion probability
          (reservoir); linear estimators scale by a single known factor.
        * ``"weighted"`` — inclusion probability depends on a tuple
          *measure* (subset-sum priority sampling); unbiased linear
          estimates need the Horvitz–Thompson correction the pack
          exports (``corrections``).
        * ``"keyed"`` — inclusion is a function of a (hashed) key column
          (distinct sampling, min-hash); per-key membership is
          all-or-nothing, so keyed grouping stays sound while
          cross-key totals need the exported level/threshold.
    ``admits``
        True when calling the SFUN *is* the admission decision (WHERE
        samplers); False for read-only companions (``ssthreshold``,
        ``dslevel``) that report state without sampling.
    ``condition_args``
        Indices of call arguments whose value the inclusion decision
        conditions on (``ssample(len, n)`` conditions on arg 0).  Rule
        SA204 flags grouping on a conditioned column under a non-keyed
        scheme.
    ``corrections``
        Names of companion functions that export the estimator
        correction (threshold / sampling level); a SELECT list carrying
        one of these is considered Horvitz–Thompson-corrected (SA202).
    """

    family: str
    scheme: str  # "uniform" | "weighted" | "keyed"
    admits: bool = True
    condition_args: Tuple[int, ...] = ()
    corrections: FrozenSet[str] = frozenset()


#: Profiles for the SFUN packs this repository ships (paper §6.6).  An
#: SFUN missing from this table is treated as non-sampling: user packs
#: opt in by registering a profile with :func:`register_sampler_profile`.
SAMPLER_PROFILES: Dict[str, SamplerProfile] = {
    # Dynamic subset-sum sampling (paper §6.1): P[admit] ∝ measure/z.
    "ssample": SamplerProfile(
        "subset_sum", "weighted", True, (0,), frozenset({"ssthreshold"})
    ),
    "ssthreshold": SamplerProfile(
        "subset_sum", "weighted", False, (), frozenset({"ssthreshold"})
    ),
    # Fixed-threshold subset-sum (basic): same weighting, no exported
    # threshold reader — estimates cannot be corrected downstream.
    "ssbasic": SamplerProfile("subset_sum_basic", "weighted", True, (0,)),
    # Reservoir sampling: uniform over the window's tuples.
    "rsample": SamplerProfile("reservoir", "uniform", True, ()),
    # Distinct sampling (Gibbons): inclusion keyed on the unit hash of
    # the group key; ``dslevel`` exports the scaling level.
    "dsample": SamplerProfile(
        "distinct", "keyed", True, (0,), frozenset({"dslevel"})
    ),
    "dslevel": SamplerProfile(
        "distinct", "keyed", False, (), frozenset({"dslevel"})
    ),
}


def register_sampler_profile(name: str, profile: SamplerProfile) -> None:
    """Register the sampling profile of a user SFUN (idempotent update)."""
    SAMPLER_PROFILES[name] = profile


def sampler_profile(name: str) -> Optional[SamplerProfile]:
    """The sampling profile of an SFUN, or None when it is not a sampler."""
    return SAMPLER_PROFILES.get(name)
