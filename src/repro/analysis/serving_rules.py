"""Serving-shareability analysis: the SA4xx rule family.

The standing-query server (:mod:`repro.serving`) runs each source
stream's low-level prefix once per *signature group* and replays its
effects into every subscriber — but only for queries whose compiled
plan has a shareable prefix.  A query the server must run on a private
feed still works; it just pays the full per-tuple scan by itself, which
under many-tenant serving is exactly the cost the deployment was meant
to amortise (paper §1's many-queries-few-feeds model).

This pass reports that refusal at compile time, mirroring the runtime
decision **one to one**: :func:`check_serving` calls the same
:func:`repro.serving.sharing.share_signature` the engine's ``register``
path calls, so ``repro lint --target serve`` disagrees with the server
only if the code does.

``SA401``
    The query cannot share a served feed (a *warning*, not an error:
    the server still accepts the query, on a private low-level node).
    The message carries the runtime's refusal reason verbatim —
    a stateful selection's global SFUN state set, or a
    nondeterministic scalar in the shared prefix.

Like the SA3xx family, the pass is gated on an
:class:`~repro.analysis.execsafety.ExecTarget`: without ``serve`` in
``--target`` nothing here runs, because a query that never meets the
serving layer has no sharing obligations.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.execsafety import ExecTarget
from repro.dsms.parser.analyzer import AnalyzedQuery, Registries
from repro.dsms.parser.planner import QueryPlan
from repro.serving.sharing import share_signature


def check_serving(
    analyzed: AnalyzedQuery,
    plan: QueryPlan,
    registries: Registries,
    collector: DiagnosticCollector,
    target: Optional[ExecTarget],
) -> None:
    """Run the SA4xx serving rules over a compiled plan.

    Exports the verdict on ``plan.annotations["serving"]`` —
    ``{"shareable": bool, "signature": str | None, "reason": str | None}``
    — for later layers, whether or not a diagnostic fires.
    """
    if target is None or not target.serve:
        return
    signature, reason = share_signature(plan, registries)
    plan.annotations["serving"] = {
        "shareable": signature is not None,
        "signature": signature.describe() if signature is not None else None,
        "reason": reason,
    }
    if signature is not None:
        return
    collector.warning(
        "SA401",
        f"query cannot share a served feed: {reason}",
        analyzed.ast.clause_span("FROM"),
        hint=(
            "the standing-query server will run this query on a private"
            " low-level node; it pays the full per-tuple scan instead of"
            " joining a shared prefilter group (docs/SERVING.md)"
        ),
    )
