"""Pass 2 of the static analyzer: semantic lint rules over analyzed queries.

Each rule targets a mistake that parses, analyzes, and *runs* — but
computes the wrong sample or never releases memory.  They encode the
operational folklore of the paper's operator (§5–§6):

``SA001``
    A grouped query with no window variable and no CLEANING clauses keeps
    every group until end-of-stream: the group table is unbounded.
``SA002``
    A stateful function called in WHERE *and* in another clause runs its
    state transition more than once per tuple (WHERE admission is the
    transition; later clauses should read, not re-sample).
``SA003``
    A SUPERGROUP clause with no superaggregates, no stateful functions,
    and no CLEANING does nothing — the supergroup structure is allocated
    and maintained for no observable effect.
``SA004``
    A CLEANING predicate that constant-folds: CLEANING BY TRUE never
    evicts (the cleaning phase cannot shrink the table), CLEANING BY
    FALSE evicts everything, CLEANING WHEN FALSE never triggers.
``SA006``
    A non-deterministic scalar in a GROUP BY expression scatters equal
    tuples across groups (see ``FunctionRegistry.register``'s
    ``deterministic`` flag).
``SA007``
    Constant division or modulo by zero.
``SA009``
    Two SELECT items producing the same output column name (the planner
    silently renames the second to ``name_2``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.diagnostics import DiagnosticCollector
from repro.dsms.expr import (
    BinaryOp,
    ColumnRef,
    Expr,
    Literal,
    ScalarCall,
    StatefulCall,
    UnaryOp,
    find_nodes,
)
from repro.dsms.parser.analyzer import AnalyzedQuery, Registries

#: Sentinel returned by :func:`fold_constant` for non-constant expressions.
NOT_CONSTANT = object()


def fold_constant(expr: Expr) -> Any:
    """Fold ``expr`` to a Python value if it is compile-time constant.

    Returns the sentinel ``NOT_CONSTANT`` when any leaf is a column,
    call, or unfoldable operation.  AND/OR short-circuit, so
    ``FALSE AND f(x)`` folds even though ``f(x)`` does not.
    """
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, UnaryOp):
        operand = fold_constant(expr.operand)
        if operand is NOT_CONSTANT:
            return NOT_CONSTANT
        if expr.op == "-":
            try:
                return -operand
            except TypeError:
                return NOT_CONSTANT
        if expr.op == "NOT":
            return not operand
        return NOT_CONSTANT
    if isinstance(expr, BinaryOp):
        return _fold_binary(expr)
    return NOT_CONSTANT


def _fold_binary(expr: BinaryOp) -> Any:
    left = fold_constant(expr.left)
    if expr.op in ("AND", "OR"):
        # short-circuit: one decided side decides the conjunction
        right = fold_constant(expr.right)
        values = [v for v in (left, right) if v is not NOT_CONSTANT]
        if expr.op == "AND":
            if any(not v for v in values):
                return False
            return True if len(values) == 2 else NOT_CONSTANT
        if any(bool(v) for v in values):
            return True
        return False if len(values) == 2 else NOT_CONSTANT
    right = fold_constant(expr.right)
    if left is NOT_CONSTANT or right is NOT_CONSTANT:
        return NOT_CONSTANT
    try:
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            if right == 0:
                return NOT_CONSTANT  # reported separately by SA007
            if isinstance(left, int) and isinstance(right, int):
                return left // right
            return left / right
        if expr.op == "%":
            if right == 0:
                return NOT_CONSTANT
            return left % right
        if expr.op == "=":
            return left == right
        if expr.op in ("<>", "!="):
            return left != right
        if expr.op == "<":
            return left < right
        if expr.op == "<=":
            return left <= right
        if expr.op == ">":
            return left > right
        if expr.op == ">=":
            return left >= right
    except TypeError:
        return NOT_CONSTANT
    return NOT_CONSTANT


def _all_exprs(analyzed: AnalyzedQuery) -> List[Tuple[str, Expr]]:
    ast = analyzed.ast
    pairs: List[Tuple[str, Expr]] = []
    for item in ast.select:
        if item.expr is not None:
            pairs.append(("SELECT", item.expr))
    for item in analyzed.group_by:
        pairs.append(("GROUP BY", item.expr))
    for clause, expr in (
        ("WHERE", ast.where),
        ("HAVING", ast.having),
        ("CLEANING WHEN", ast.cleaning_when),
        ("CLEANING BY", ast.cleaning_by),
    ):
        if expr is not None:
            pairs.append((clause, expr))
    return pairs


def _check_unbounded_group_table(
    analyzed: AnalyzedQuery, collector: DiagnosticCollector
) -> None:
    if not analyzed.group_by or analyzed.ast.has_cleaning:
        return
    if analyzed.ordered_names:
        return
    collector.warning(
        "SA001",
        "group table is unbounded: no window variable (ordered GROUP BY"
        " expression) and no CLEANING clauses — groups accumulate until"
        " end of stream",
        analyzed.ast.clause_span("GROUP BY"),
        hint="group on a window variable (e.g. time/60 AS tb) or add"
        " CLEANING WHEN/BY clauses",
    )


def _check_sfun_reevaluation(
    analyzed: AnalyzedQuery, collector: DiagnosticCollector
) -> None:
    where = analyzed.ast.where
    if where is None:
        return
    where_sfuns = {node.name for node in find_nodes(where, StatefulCall)}
    if not where_sfuns:
        return
    for clause, expr in _all_exprs(analyzed):
        if clause == "WHERE":
            continue
        for node in find_nodes(expr, StatefulCall):
            if node.name in where_sfuns:
                collector.warning(
                    "SA002",
                    f"stateful function {node.name!r} is called in WHERE and"
                    f" again in {clause}; each call runs the state"
                    " transition, so the tuple is sampled twice",
                    node.span,
                    hint="keep the sampling call in WHERE and read results"
                    " through a separate (read-only) SFUN",
                )


def _check_unused_supergroup(
    analyzed: AnalyzedQuery, collector: DiagnosticCollector
) -> None:
    if not analyzed.ast.supergroup:
        return
    if (
        analyzed.superaggregates
        or analyzed.state_names
        or analyzed.ast.has_cleaning
    ):
        return
    collector.warning(
        "SA003",
        "SUPERGROUP has no observable effect: the query uses no"
        " superaggregates, no stateful functions, and no CLEANING clauses",
        analyzed.ast.clause_span("SUPERGROUP"),
        hint="drop the SUPERGROUP clause or add the superaggregate /"
        " cleaning logic that needs it",
    )


def _check_constant_cleaning(
    analyzed: AnalyzedQuery, collector: DiagnosticCollector
) -> None:
    ast = analyzed.ast
    cases = {
        ("CLEANING BY", True): "the cleaning phase never evicts any group",
        ("CLEANING BY", False): "the cleaning phase evicts every group",
        ("CLEANING WHEN", True): "a cleaning phase is triggered for every"
        " tuple of the supergroup",
        ("CLEANING WHEN", False): "a cleaning phase is never triggered",
    }
    for clause, expr in (
        ("CLEANING WHEN", ast.cleaning_when),
        ("CLEANING BY", ast.cleaning_by),
    ):
        if expr is None:
            continue
        value = fold_constant(expr)
        if value is NOT_CONSTANT:
            continue
        truth = bool(value)
        collector.warning(
            "SA004",
            f"{clause} predicate is constant"
            f" {'TRUE' if truth else 'FALSE'}: {cases[(clause, truth)]}",
            expr.span or ast.clause_span(clause),
            hint="make the predicate depend on group or supergroup state",
        )


def _check_nondeterministic_group_by(
    analyzed: AnalyzedQuery,
    registries: Registries,
    collector: DiagnosticCollector,
) -> None:
    for item in analyzed.group_by:
        for node in find_nodes(item.expr, ScalarCall):
            if not registries.scalars.is_deterministic(node.name):
                collector.warning(
                    "SA006",
                    f"non-deterministic scalar {node.name!r} in the GROUP BY"
                    f" expression for {item.name!r}: equal tuples may land"
                    " in different groups",
                    node.span,
                    hint="compute the value in the SELECT list instead, or"
                    " register the function as deterministic",
                )


def _check_constant_zero_division(
    analyzed: AnalyzedQuery, collector: DiagnosticCollector
) -> None:
    for _clause, expr in _all_exprs(analyzed):
        for node in find_nodes(expr, BinaryOp):
            if node.op not in ("/", "%"):
                continue
            divisor = fold_constant(node.right)
            if divisor is NOT_CONSTANT or isinstance(divisor, bool):
                continue
            if divisor == 0:
                collector.error(
                    "SA007",
                    f"constant {'division' if node.op == '/' else 'modulo'}"
                    " by zero",
                    node.span,
                )


def _check_duplicate_output_names(
    analyzed: AnalyzedQuery, collector: DiagnosticCollector
) -> None:
    seen: Dict[str, int] = {}
    for index, item in enumerate(analyzed.ast.select):
        if item.alias:
            name: Optional[str] = item.alias
        elif isinstance(item.expr, ColumnRef):
            name = item.expr.name
        else:
            name = None  # planner invents col{index}; cannot collide
        if name is None:
            continue
        if name in seen:
            span = item.expr.span if item.expr is not None else None
            collector.warning(
                "SA009",
                f"duplicate output column {name!r} (also produced by SELECT"
                f" item {seen[name] + 1}); the planner will rename this one"
                f" to {name!r}_2",
                span,
                hint="give one of the items a distinct alias with AS",
            )
        else:
            seen[name] = index


def check_semantics(
    analyzed: AnalyzedQuery,
    registries: Registries,
    collector: DiagnosticCollector,
) -> None:
    """Run every semantic lint rule over ``analyzed``."""
    _check_unbounded_group_table(analyzed, collector)
    _check_sfun_reevaluation(analyzed, collector)
    _check_unused_supergroup(analyzed, collector)
    _check_constant_cleaning(analyzed, collector)
    _check_nondeterministic_group_by(analyzed, registries, collector)
    _check_constant_zero_division(analyzed, collector)
    _check_duplicate_output_names(analyzed, collector)
