"""Pass 1 of the static analyzer: type inference over expression trees.

Infers a :class:`~repro.analysis.signatures.GType` for every node of every
clause of an analyzed query, starting from the stream schema's attribute
type tags and the function signature tables.  Reports:

* ``SA010`` (error) — operand type mismatches: arithmetic on strings or
  booleans, comparisons between strings and numbers, logic over strings;
* ``SA011`` (warning) — a predicate clause (WHERE / HAVING / CLEANING
  WHEN / CLEANING BY) whose expression is not boolean-typed;
* ``SA008`` (error) — scalar / aggregate / superaggregate calls whose
  argument count does not match the registered signature;
* ``SA005`` (error) — SFUN calls with the wrong arity or an unregistered
  backing state (the paper's STATE/SFUN wiring, §6.2).

Group-by variables are typed from their defining expressions, so
``time/60 AS tb`` makes ``tb`` a UINT wherever later clauses use it.
Unknown names (already reported by the clause-legality pass) type as
UNKNOWN, which unifies with everything — inference never piles a second
diagnostic onto a name the analyzer already rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.signatures import (
    GType,
    Signature,
    aggregate_signature,
    from_type_tag,
    numeric_join,
    scalar_signature,
    stateful_signature,
    superaggregate_signature,
)
from repro.dsms.expr import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    Expr,
    FunctionCall,
    Literal,
    ScalarCall,
    Star,
    StatefulCall,
    SuperAggregateCall,
    UnaryOp,
)
from repro.dsms.parser.analyzer import AnalyzedQuery, Registries
from repro.dsms.span import Span

_ARITHMETIC_OPS = ("+", "-", "*", "/", "%")
_COMPARISON_OPS = ("=", "<>", "!=", "<", "<=", ">", ">=")
_LOGIC_OPS = ("AND", "OR")

#: Clauses whose top-level expression must be a predicate.
PREDICATE_CLAUSES = ("WHERE", "HAVING", "CLEANING WHEN", "CLEANING BY")


@dataclass
class TypeCheckResult:
    """Inferred types: per group-by variable and per clause root."""

    group_var_types: Dict[str, GType] = field(default_factory=dict)
    clause_types: Dict[str, GType] = field(default_factory=dict)


class _Inferencer:
    def __init__(
        self,
        registries: Registries,
        collector: DiagnosticCollector,
        env: Dict[str, GType],
    ) -> None:
        self._registries = registries
        self._collector = collector
        self._env = env

    # -- helpers ---------------------------------------------------------------

    def _mismatch(self, message: str, span: Optional[Span],
                  hint: Optional[str] = None) -> None:
        self._collector.error("SA010", message, span, hint)

    def _check_arity(
        self,
        rule: str,
        label: str,
        signature: Signature,
        node_args: int,
        span: Optional[Span],
    ) -> None:
        arity = signature.arity
        if arity is not None and not arity.accepts(node_args):
            self._collector.error(
                rule,
                f"{label} takes {arity} argument(s), got {node_args}",
                span,
            )

    # -- inference ---------------------------------------------------------------

    def infer(self, expr: Expr) -> GType:
        if isinstance(expr, Literal):
            return self._literal(expr)
        if isinstance(expr, ColumnRef):
            return self._env.get(expr.name, GType.UNKNOWN)
        if isinstance(expr, Star):
            return GType.INT  # count(*) semantics: every row counts as 1
        if isinstance(expr, UnaryOp):
            return self._unary(expr)
        if isinstance(expr, BinaryOp):
            return self._binary(expr)
        if isinstance(expr, ScalarCall):
            return self._call(
                expr, scalar_signature(self._registries.scalars, expr.name),
                "SA008", f"scalar function {expr.name!r}",
            )
        if isinstance(expr, AggregateCall):
            return self._call(
                expr, aggregate_signature(expr.name),
                "SA008", f"aggregate {expr.name!r}",
            )
        if isinstance(expr, SuperAggregateCall):
            return self._call(
                expr, superaggregate_signature(expr.name),
                "SA008", f"superaggregate {expr.name}$",
            )
        if isinstance(expr, StatefulCall):
            return self._stateful(expr)
        if isinstance(expr, FunctionCall):
            # Unclassified (collect-mode leftover after an unknown-function
            # diagnostic); type the arguments, don't re-report the name.
            for arg in expr.args:
                self.infer(arg)
            return GType.UNKNOWN
        return GType.UNKNOWN

    @staticmethod
    def _literal(expr: Literal) -> GType:
        value = expr.value
        if isinstance(value, bool):
            return GType.BOOL
        if isinstance(value, int):
            return GType.INT
        if isinstance(value, float):
            return GType.FLOAT
        if isinstance(value, str):
            return GType.STR
        return GType.UNKNOWN

    def _unary(self, expr: UnaryOp) -> GType:
        operand = self.infer(expr.operand)
        if expr.op == "-":
            if operand.is_known and not operand.is_numeric:
                self._mismatch(
                    f"unary '-' needs a numeric operand, got {operand}",
                    expr.span,
                )
                return GType.UNKNOWN
            # Negation leaves UINT: -len can go negative.
            return numeric_join(operand, GType.INT) if operand.is_known else operand
        if expr.op == "NOT":
            if operand is GType.STR:
                self._mismatch("NOT needs a boolean operand, got str", expr.span)
            return GType.BOOL
        return GType.UNKNOWN

    def _binary(self, expr: BinaryOp) -> GType:
        op = expr.op
        left = self.infer(expr.left)
        right = self.infer(expr.right)
        if op in _ARITHMETIC_OPS:
            for side, side_type in (("left", left), ("right", right)):
                if side_type.is_known and not side_type.is_numeric:
                    self._mismatch(
                        f"arithmetic {op!r} needs numeric operands;"
                        f" {side} operand is {side_type}",
                        expr.span,
                    )
                    return GType.UNKNOWN
            if op == "/":
                # Integer division buckets (time/60); float division otherwise.
                joined = numeric_join(left, right)
                return joined if joined is not GType.FLOAT else GType.FLOAT
            return numeric_join(left, right)
        if op in _COMPARISON_OPS:
            if left.is_known and right.is_known:
                compatible = (
                    (left.is_numeric and right.is_numeric)
                    or left == right
                )
                if not compatible:
                    self._mismatch(
                        f"comparison {op!r} between incompatible types"
                        f" {left} and {right}",
                        expr.span,
                    )
            return GType.BOOL
        if op in _LOGIC_OPS:
            for side_type in (left, right):
                if side_type is GType.STR:
                    self._mismatch(
                        f"{op} needs boolean operands, got str", expr.span
                    )
            return GType.BOOL
        return GType.UNKNOWN

    def _call(self, expr, signature: Signature, rule: str, label: str) -> GType:
        arg_types = [self.infer(arg) for arg in expr.args]
        self._check_arity(rule, label, signature, len(expr.args), expr.span)
        return signature.returns(arg_types)

    def _stateful(self, expr: StatefulCall) -> GType:
        library = self._registries.stateful
        arg_types = [self.infer(arg) for arg in expr.args]
        del arg_types  # SFUN parameter types are opaque; only arity checks
        signature = stateful_signature(library, expr.name)
        self._check_arity(
            "SA005",
            f"stateful function {expr.name!r}"
            f" (state {expr.state_name!r})",
            signature,
            len(expr.args),
            expr.span,
        )
        try:
            library.state_class(expr.state_name)
        except Exception:
            self._collector.error(
                "SA005",
                f"stateful function {expr.name!r} is bound to state"
                f" {expr.state_name!r}, which is not registered",
                expr.span,
                hint="register the STATE class before the SFUN that uses it",
            )
        return signature.returns([])


def check_types(
    analyzed: AnalyzedQuery,
    registries: Registries,
    collector: DiagnosticCollector,
) -> TypeCheckResult:
    """Infer types for every clause of ``analyzed``, reporting mismatches."""
    result = TypeCheckResult()
    schema_env: Dict[str, GType] = {
        attr.name: from_type_tag(attr.type_tag) for attr in analyzed.schema
    }

    # Group-by variables first: their defining expressions see the schema.
    group_env = dict(schema_env)
    definer = _Inferencer(registries, collector, dict(schema_env))
    for item in analyzed.group_by:
        var_type = definer.infer(item.expr)
        result.group_var_types[item.name] = var_type
        group_env[item.name] = var_type

    checker = _Inferencer(registries, collector, group_env)
    ast = analyzed.ast
    clauses = [
        ("WHERE", ast.where),
        ("HAVING", ast.having),
        ("CLEANING WHEN", ast.cleaning_when),
        ("CLEANING BY", ast.cleaning_by),
    ]
    for clause, expr in clauses:
        if expr is None:
            continue
        clause_type = checker.infer(expr)
        result.clause_types[clause] = clause_type
        if clause in PREDICATE_CLAUSES and clause_type.is_known \
                and clause_type is not GType.BOOL:
            collector.warning(
                "SA011",
                f"{clause} predicate has type {clause_type}, expected bool",
                expr.span or ast.clause_span(clause),
                hint="compare the expression to a value, e.g. '... = TRUE'",
            )
    for index, item in enumerate(ast.select):
        result.clause_types[f"SELECT[{index}]"] = checker.infer(item.expr)
    return result
