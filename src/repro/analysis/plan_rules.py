"""Pass 3 of the static analyzer: plan-level lints driven by the cost model.

These rules reason about what the planner/runtime will *do* with the
query, using the charge constants and cardinality hints of
:mod:`repro.dsms.cost`:

``SA101``
    The per-window group table is estimated to exceed the budget
    (:data:`~repro.dsms.cost.DEFAULT_GROUP_TABLE_BUDGET`) and the query
    has no CLEANING clauses to shrink it.  The estimate multiplies the
    per-variable distinct-value hints over the non-window group-by
    variables (window variables don't accumulate — the table is flushed
    at each window boundary).
``SA102``
    A WHERE conjunct references only raw stream columns and deterministic
    scalar functions, so it could run in a *low-level* selection query
    instead.  Left where it is, every tuple it would have dropped is
    first copied up to the high-level query — and the per-tuple copy
    (``CostBook.tuple_copy`` ≈ 16,000 cycles) is the dominant cost of
    low-level queries in the paper's Fig 5/6 experiments.
"""

from __future__ import annotations

from typing import List

from repro.analysis.diagnostics import DiagnosticCollector
from repro.dsms.cost import (
    DEFAULT_GROUP_TABLE_BUDGET,
    CostBook,
    estimate_expr_cardinality,
)
from repro.dsms.expr import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    Expr,
    FunctionCall,
    ScalarCall,
    StatefulCall,
    SuperAggregateCall,
    find_nodes,
)
from repro.dsms.parser.analyzer import AnalyzedQuery, Registries


def _conjuncts(expr: Expr) -> List[Expr]:
    """Split a predicate on top-level ANDs."""
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _is_prefilterable(
    conjunct: Expr, analyzed: AnalyzedQuery, registries: Registries
) -> bool:
    """True when ``conjunct`` could be evaluated by a low-level selection:
    raw stream columns and deterministic scalars only."""
    if find_nodes(conjunct, (AggregateCall, SuperAggregateCall, StatefulCall)):
        return False
    if find_nodes(conjunct, FunctionCall):  # unclassified (collect mode)
        return False
    for node in find_nodes(conjunct, ColumnRef):
        if node.name not in analyzed.schema:
            return False  # group-by variable: needs the high-level context
    scalar_calls = find_nodes(conjunct, ScalarCall)
    if not any(
        isinstance(node, ColumnRef) for node in conjunct.walk()
    ) and not scalar_calls:
        return False  # constant predicate; SA004-style, not a pushdown
    for node in scalar_calls:
        if not registries.scalars.is_deterministic(node.name):
            return False
    return True


def _check_group_table_budget(
    analyzed: AnalyzedQuery, collector: DiagnosticCollector
) -> None:
    if not analyzed.group_by or analyzed.ast.has_cleaning:
        return
    estimate = 1.0
    for item in analyzed.group_by:
        if item.name in analyzed.ordered_names:
            continue  # window variables don't accumulate within a window
        estimate *= estimate_expr_cardinality(item.expr)
    if estimate <= DEFAULT_GROUP_TABLE_BUDGET:
        return
    collector.warning(
        "SA101",
        f"estimated group-table size is ~{estimate:.0g} entries per window"
        f" (budget {DEFAULT_GROUP_TABLE_BUDGET:.0f}) and the query has no"
        " CLEANING clauses to shrink it",
        analyzed.ast.clause_span("GROUP BY"),
        hint="add CLEANING WHEN/BY clauses (the operator's sampling"
        " mechanism) or group on coarser expressions",
    )


def _check_prefilterable_where(
    analyzed: AnalyzedQuery,
    registries: Registries,
    collector: DiagnosticCollector,
) -> None:
    if analyzed.kind not in ("sampling", "aggregation"):
        return  # selections already run at the low level
    where = analyzed.ast.where
    if where is None:
        return
    tuple_copy = CostBook().tuple_copy
    for conjunct in _conjuncts(where):
        if _is_prefilterable(conjunct, analyzed, registries):
            collector.warning(
                "SA102",
                "this WHERE conjunct uses only raw stream columns and"
                " deterministic scalars; evaluated here, every tuple it"
                " drops was first copied to the high level"
                f" (~{tuple_copy:,} cycles each, the dominant Fig 5 cost)",
                conjunct.span,
                hint="move the conjunct into a low-level selection query"
                " and point this query's FROM at it (paper Fig 6)",
            )


def check_plan(
    analyzed: AnalyzedQuery,
    registries: Registries,
    collector: DiagnosticCollector,
) -> None:
    """Run every plan lint over ``analyzed``."""
    _check_group_table_budget(analyzed, collector)
    _check_prefilterable_where(analyzed, registries, collector)
