"""Machine-readable lint output: SARIF 2.1.0 and plain JSON.

``repro lint --format sarif`` emits a `SARIF 2.1.0
<https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
log so CI systems (GitHub code scanning among them) can render the
diagnostics as inline annotations on the offending query lines;
``--format json`` is the same data in a small stable schema for ad-hoc
tooling.  Both formats serialize a list of
:class:`~repro.analysis.linter.LintResult` objects — one per linted
file — so a whole-corpus run lands in a single report.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.linter import LintResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: One-line descriptions of every rule family member, keyed by rule id.
#: The SARIF ``rules`` array is built from the subset that actually
#: fired; docs/LINT_RULES.md is the human catalogue.
RULE_DESCRIPTIONS: Dict[str, str] = {
    "SA001": "SELECT item references nothing from the group context",
    "SA002": "aggregate of a constant expression",
    "SA003": "HAVING predicate is constant",
    "SA004": "CLEANING predicate is constant",
    "SA005": "comparison between incompatible types",
    "SA006": "duplicate output column name",
    "SA007": "supergroup variable unused by any SFUN or superaggregate",
    "SA008": "arithmetic on a non-numeric operand",
    "SA009": "WHERE predicate is constant",
    "SA010": "wrong number of arguments",
    "SA011": "condition is not boolean",
    "SA020": "unknown stream",
    "SA021": "unknown function",
    "SA022": "unknown superaggregate",
    "SA023": "duplicate group-by variable",
    "SA024": "GROUP BY references an unknown column",
    "SA025": "GROUP BY expression uses calls it may not",
    "SA026": "SUPERGROUP variable is not a GROUP BY variable",
    "SA027": "clause references an unavailable column",
    "SA028": "clause uses a call kind it may not",
    "SA029": "clause requires a GROUP BY",
    "SA030": "CLEANING WHEN and CLEANING BY must appear together",
    "SA090": "lexer error",
    "SA091": "parse error",
    "SA101": "estimated group-table size exceeds the budget",
    "SA102": "WHERE conjunct could run as a low-level prefilter",
    "SA201": "non-linear aggregate over a sampled stream is biased",
    "SA202": "linear aggregate under weighted sampling lacks a correction",
    "SA203": "chained sampler families break exchangeability",
    "SA204": "GROUP BY on a column the sampler conditions on",
    "SA301": "output has no ordered attribute for the sharded MERGE",
    "SA302": "operator state cannot be hash-partitioned",
    "SA303": "durable resume and load shedding do not mix",
    "SA304": "durable resume needs supervised shards",
    "SA305": "SFUN state is not checkpointable under durable resume",
    "SA306": "operator state not migratable across shard boundaries",
    "SA401": "query cannot share a served feed",
}

_SARIF_LEVELS: Dict[Severity, str] = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _diagnostic_json(diag: Diagnostic) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "rule": diag.rule,
        "severity": str(diag.severity),
        "message": diag.message,
    }
    if diag.span is not None and diag.span.line > 0:
        entry["line"] = diag.span.line
        entry["col"] = diag.span.col
        entry["length"] = diag.span.length
    if diag.hint:
        entry["hint"] = diag.hint
    return entry


def results_to_json(results: Iterable[LintResult]) -> Dict[str, Any]:
    """The plain-JSON report: one entry per file, diagnostics inline."""
    files: List[Dict[str, Any]] = []
    for result in results:
        files.append(
            {
                "filename": result.filename,
                "target": (
                    result.target.describe() if result.target is not None else None
                ),
                "ok": result.ok,
                "disabled": sorted(result.disabled),
                "diagnostics": [
                    _diagnostic_json(d) for d in result.diagnostics
                ],
            }
        )
    return {"version": 1, "files": files}


def _sarif_result(result: LintResult, diag: Diagnostic) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "ruleId": diag.rule,
        "level": _SARIF_LEVELS[diag.severity],
        "message": {
            "text": diag.message + (f" (hint: {diag.hint})" if diag.hint else "")
        },
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": result.filename},
                }
            }
        ],
    }
    if diag.span is not None and diag.span.line > 0:
        entry["locations"][0]["physicalLocation"]["region"] = {
            "startLine": diag.span.line,
            "startColumn": diag.span.col,
            "endColumn": diag.span.col + max(diag.span.length, 1),
        }
    return entry


def results_to_sarif(
    results: Iterable[LintResult], tool_version: Optional[str] = None
) -> Dict[str, Any]:
    """A SARIF 2.1.0 log of every diagnostic across ``results``."""
    materialized = list(results)
    fired = sorted(
        {d.rule for result in materialized for d in result.diagnostics}
    )
    driver: Dict[str, Any] = {
        "name": "repro-lint",
        "informationUri": "docs/LINT_RULES.md",
        "rules": [
            {
                "id": rule,
                "shortDescription": {
                    "text": RULE_DESCRIPTIONS.get(rule, rule)
                },
            }
            for rule in fired
        ],
    }
    if tool_version is not None:
        driver["version"] = tool_version
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": [
                    _sarif_result(result, diag)
                    for result in materialized
                    for diag in result.diagnostics
                ],
            }
        ],
    }


def render_report(results: Iterable[LintResult], fmt: str) -> str:
    """Serialize ``results`` in ``fmt`` (``json`` or ``sarif``)."""
    if fmt == "json":
        return json.dumps(results_to_json(results), indent=2, sort_keys=True)
    if fmt == "sarif":
        return json.dumps(results_to_sarif(results), indent=2, sort_keys=True)
    raise ValueError(f"unknown lint report format {fmt!r}")
