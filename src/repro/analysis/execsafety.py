"""Execution-safety analysis: the SA3xx rule family.

PR 5's runtimes refuse unsafe configurations — but only at runtime,
deep inside :class:`~repro.dsms.sharded.ShardedGigascope` and
:class:`~repro.dsms.durability.DurableRunner`, after the stream is
already flowing.  This pass reports the same refusals at *compile time*:
``repro lint --target shards=4,durable`` answers "would this query run
under that deployment?" before a single tuple is fed.

The rules mirror the runtime refusal sites **one to one** (the mapping
is pinned by ``tests/analysis/test_execsafety.py``):

``SA301``
    The query's output has no ordered attribute, so the recombining
    MERGE of sharded execution has nothing to order on
    (``ShardedGigascope.add_query``).
``SA302``
    The query's operator state cannot be hash-partitioned: no acceptable
    partition column per :func:`~repro.dsms.parser.planner.
    partition_info` (``ShardedGigascope.add_query``).
``SA303``
    Durable resume plus load shedding: shedding decisions depend on
    wall-clock queue depths, so a resumed run could silently diverge
    (``DurableRunner.__init__``).
``SA304``
    Durable resume over *unsupervised* process shards: only the
    supervisor's checkpoint protocol can snapshot remote workers mid-run
    (``DurableRunner.__init__``).
``SA305``
    Durable resume needs every SFUN state in the plan to be
    checkpointable; a state class declaring ``checkpointable = False``
    (it holds unsnapshottable resources) cannot ride a journal commit
    (``DurableRunner.__init__``).
``SA306``
    Elastic rebalancing migrates operator state between shards through
    the same checkpoint/restore snapshots, so a state class declaring
    ``checkpointable = False`` means its operator state is not
    migratable across shard boundaries
    (``ShardedGigascope.add_query`` under ``rebalance=``).

All SA3xx diagnostics are **errors** — the runtime would hard-refuse —
and the whole family is gated on an :class:`ExecTarget`: without
``--target`` nothing here runs, because a query that never leaves the
serial runtime has no execution-safety obligations.

Like the sampling pass, the computed facts ride the generic dataflow
engine (:mod:`repro.analysis.dataflow`) and are exported on
``plan.annotations["execsafety"]`` for later layers (ROADMAP item 3's
elastic sharding reads the same shardability verdicts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.dataflow import (
    DataflowAnalysis,
    DataflowResult,
    PlanGraph,
    PlanNode,
    build_plan_graph,
    run_dataflow,
)
from repro.analysis.diagnostics import DiagnosticCollector
from repro.dsms.expr import Expr, StatefulCall, find_nodes
from repro.dsms.parser.analyzer import AnalyzedQuery, Registries
from repro.dsms.parser.planner import QueryPlan, partition_info
from repro.dsms.span import Span


@dataclass(frozen=True)
class ExecTarget:
    """A deployment configuration to lint against.

    Parsed from the CLI's ``--target`` value; mirrors the constructor
    surface of the runtimes it models (``ShardedGigascope(shards=...,
    processes=..., supervise=..., shed_threshold=...)`` wrapped in a
    ``DurableRunner`` when ``durable``).
    """

    shards: Optional[int] = None
    processes: bool = False
    supervise: bool = False
    durable: bool = False
    rebalance: bool = False
    serve: bool = False
    shed_threshold: Optional[int] = None

    @property
    def sharded(self) -> bool:
        """True when sharded execution (SPLIT/MERGE) is requested at all;
        ``ShardedGigascope.add_query`` enforces its plan rules even for a
        single shard."""
        return self.shards is not None

    def describe(self) -> str:
        parts: List[str] = []
        if self.shards is not None:
            parts.append(f"shards={self.shards}")
        if self.processes:
            parts.append("processes")
        if self.supervise:
            parts.append("supervise")
        if self.durable:
            parts.append("durable")
        if self.rebalance:
            parts.append("rebalance")
        if self.serve:
            parts.append("serve")
        if self.shed_threshold is not None:
            parts.append(f"shed={self.shed_threshold}")
        return ",".join(parts) or "serial"

    def to_json(self) -> Dict[str, Any]:
        return {
            "shards": self.shards,
            "processes": self.processes,
            "supervise": self.supervise,
            "durable": self.durable,
            "rebalance": self.rebalance,
            "serve": self.serve,
            "shed_threshold": self.shed_threshold,
        }


def parse_target(text: str) -> ExecTarget:
    """Parse a ``--target`` value like ``shards=4,durable,supervise``.

    Grammar: comma-separated items, each a flag (``durable`` /
    ``supervise`` / ``processes``) or a keyed value (``shards=N`` /
    ``shed=N``).  Raises :class:`ValueError` with a usage hint on
    anything else.
    """
    target: Dict[str, Any] = {}
    for raw in text.split(","):
        item = raw.strip()
        if not item:
            continue
        key, _, value = item.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if key in ("durable", "supervise", "processes", "rebalance", "serve"):
            if value:
                raise ValueError(
                    f"target flag {key!r} takes no value (got {item!r})"
                )
            target[key] = True
        elif key in ("shards", "shed"):
            try:
                number = int(value)
            except ValueError:
                raise ValueError(
                    f"target {key!r} needs an integer value (got {item!r})"
                ) from None
            if number < 1:
                raise ValueError(f"target {key!r} must be >= 1 (got {number})")
            target["shed_threshold" if key == "shed" else key] = number
        else:
            raise ValueError(
                f"unknown target item {item!r}; expected"
                " shards=N, shed=N, durable, supervise, processes,"
                " rebalance, or serve"
            )
    return ExecTarget(**target)


@dataclass(frozen=True)
class ExecFact:
    """The abstract execution-capability state of one plan edge.

    ``states`` are the SFUN state names the upstream phases require;
    ``non_checkpointable`` is the subset whose state class opts out of
    :meth:`~repro.dsms.stateful.StatefulState.checkpoint`.
    """

    states: Tuple[str, ...] = ()
    non_checkpointable: Tuple[str, ...] = ()

    @property
    def checkpointable(self) -> bool:
        return not self.non_checkpointable

    def to_json(self) -> Dict[str, Any]:
        return {
            "states": list(self.states),
            "non_checkpointable": list(self.non_checkpointable),
            "checkpointable": self.checkpointable,
        }


class ExecSafetyAnalysis(DataflowAnalysis[ExecFact]):
    """Forward propagation of :class:`ExecFact` over the plan DAG."""

    def __init__(self, registries: Registries) -> None:
        self._registries = registries

    def boundary(self, node: PlanNode) -> ExecFact:
        return ExecFact()

    def transfer(self, node: PlanNode, fact: ExecFact) -> ExecFact:
        states = list(fact.states)
        bad = list(fact.non_checkpointable)
        for _clause, expr in node.exprs:
            for call in find_nodes(expr, StatefulCall):
                assert isinstance(call, StatefulCall)
                if call.state_name in states:
                    continue
                states.append(call.state_name)
                if not self._registries.stateful.checkpointable(call.state_name):
                    bad.append(call.state_name)
        if len(states) == len(fact.states):
            return fact
        return ExecFact(tuple(states), tuple(bad))

    def join(self, facts: List[ExecFact]) -> ExecFact:
        states = list(facts[0].states)
        bad = list(facts[0].non_checkpointable)
        for other in facts[1:]:
            for name in other.states:
                if name not in states:
                    states.append(name)
            for name in other.non_checkpointable:
                if name not in bad:
                    bad.append(name)
        return ExecFact(tuple(states), tuple(bad))


def analyze_execsafety(
    plan: QueryPlan,
    target: Optional[ExecTarget] = None,
    graph: Optional[PlanGraph] = None,
) -> DataflowResult[ExecFact]:
    """Run the capability dataflow over ``plan`` and export annotations.

    ``plan.annotations["execsafety"]`` gets the per-edge facts plus the
    plan-level verdicts (shardability, partition candidates,
    checkpointability) that ROADMAP item 3's elastic sharding will read.
    """
    if graph is None:
        graph = build_plan_graph(plan)
    result = run_dataflow(graph, ExecSafetyAnalysis(plan.registries))
    output = result.out_facts[graph.topological()[-1].node_id]
    info = partition_info(plan)
    plan.annotations["execsafety"] = {
        "edges": {
            f"{src}->{dst}": fact.to_json()
            for (src, dst), fact in sorted(result.edge_facts.items())
        },
        "target": target.to_json() if target is not None else None,
        "mergeable": bool(plan.output_schema.ordered_attributes()),
        "partition_candidates": (
            None if info.candidates is None else list(info.candidates)
        ),
        "shardable": info.candidates is None or bool(info.candidates),
        "checkpointable": output.checkpointable,
        "states": list(output.states),
    }
    return result


def _stateful_call_span(
    analyzed: AnalyzedQuery, state_name: Optional[str] = None
) -> Optional[Span]:
    """Span of the first SFUN call (optionally of one state) in the query."""
    ast = analyzed.ast
    exprs: List[Optional[Expr]] = [
        ast.where,
        *[item.expr for item in ast.select],
        ast.having,
        ast.cleaning_when,
        ast.cleaning_by,
    ]
    for expr in exprs:
        if expr is None:
            continue
        for call in find_nodes(expr, StatefulCall):
            assert isinstance(call, StatefulCall)
            if state_name is None or call.state_name == state_name:
                return call.span
    return None


def check_execsafety(
    analyzed: AnalyzedQuery,
    plan: QueryPlan,
    registries: Registries,
    collector: DiagnosticCollector,
    target: Optional[ExecTarget],
) -> None:
    """Run the SA3xx execution-safety rules over a compiled plan."""
    graph = build_plan_graph(plan)
    result = analyze_execsafety(plan, target, graph)
    if target is None:
        return

    if target.sharded:
        _check_mergeable(analyzed, plan, target, collector)
        _check_partitionable(analyzed, plan, target, collector)
        if target.rebalance:
            _check_migratable(analyzed, result, target, collector)
    if target.durable:
        _check_durable_shedding(analyzed, target, collector)
        _check_durable_supervision(analyzed, target, collector)
        _check_durable_states(analyzed, result, target, collector)


def _check_mergeable(
    analyzed: AnalyzedQuery,
    plan: QueryPlan,
    target: ExecTarget,
    collector: DiagnosticCollector,
) -> None:
    if plan.output_schema.ordered_attributes():
        return
    collector.error(
        "SA301",
        f"cannot shard this query (target {target.describe()}): its output"
        " has no ordered attribute for the recombining MERGE",
        analyzed.ast.clause_span("SELECT"),
        hint="select the window variable (an ordered column) first;"
        " ShardedGigascope.add_query refuses this plan at runtime",
    )


def _check_partitionable(
    analyzed: AnalyzedQuery,
    plan: QueryPlan,
    target: ExecTarget,
    collector: DiagnosticCollector,
) -> None:
    info = partition_info(plan)
    if info.candidates is None or info.candidates:
        return
    span = (
        _stateful_call_span(analyzed)
        if plan.kind == "stateful_selection"
        else analyzed.ast.clause_span("GROUP BY")
    ) or analyzed.ast.clause_span("FROM")
    collector.error(
        "SA302",
        f"cannot shard this query (target {target.describe()}):"
        f" {info.reason}",
        span,
        hint="ShardedGigascope.add_query refuses this plan at runtime",
    )


def _check_durable_shedding(
    analyzed: AnalyzedQuery, target: ExecTarget, collector: DiagnosticCollector
) -> None:
    if target.shed_threshold is None:
        return
    collector.error(
        "SA303",
        f"target {target.describe()} combines durable resume with load"
        " shedding: shedding depends on wall-clock queue depths, so a"
        " resumed run could shed differently and silently diverge",
        analyzed.ast.clause_span("FROM"),
        hint="drop shed=N from the target (DurableRunner refuses the"
        " combination at construction)",
    )


def _check_durable_supervision(
    analyzed: AnalyzedQuery, target: ExecTarget, collector: DiagnosticCollector
) -> None:
    if not target.sharded or target.supervise:
        return
    collector.error(
        "SA304",
        f"target {target.describe()} runs durable resume over unsupervised"
        " process shards, which cannot be checkpointed mid-run",
        analyzed.ast.clause_span("FROM"),
        hint="add supervise to the target: only the shard supervisor's"
        " checkpoint protocol can snapshot remote workers"
        " (DurableRunner refuses the combination at construction)",
    )


def _check_migratable(
    analyzed: AnalyzedQuery,
    result: DataflowResult[ExecFact],
    target: ExecTarget,
    collector: DiagnosticCollector,
) -> None:
    final = result.out_facts[result.graph.topological()[-1].node_id]
    for state in final.non_checkpointable:
        collector.error(
            "SA306",
            f"SFUN state {state!r} declares checkpointable=False, so its"
            f" operator state is not migratable across shard boundaries"
            f" (target {target.describe()})",
            _stateful_call_span(analyzed, state),
            hint="run without rebalancing or make the state snapshottable"
            " (ShardedGigascope.add_query refuses the plan at runtime"
            " when rebalance= is set)",
        )


def _check_durable_states(
    analyzed: AnalyzedQuery,
    result: DataflowResult[ExecFact],
    target: ExecTarget,
    collector: DiagnosticCollector,
) -> None:
    final = result.out_facts[result.graph.topological()[-1].node_id]
    for state in final.non_checkpointable:
        collector.error(
            "SA305",
            f"SFUN state {state!r} declares checkpointable=False, so this"
            f" query cannot ride a durable journal commit"
            f" (target {target.describe()})",
            _stateful_call_span(analyzed, state),
            hint="make the state checkpointable (implement"
            " checkpoint()/restore() and drop the opt-out) or run without"
            " durable resume (DurableRunner refuses it at construction)",
        )
