"""The query linter: one entry point over all analysis passes.

:func:`lint_source` takes GSQL text and runs the full pipeline —

1. lex + parse (failures become ``SA090``/``SA091`` diagnostics instead
   of exceptions),
2. collect-mode semantic analysis (``SA020``–``SA030``),
3. type inference (``SA005``/``SA008``/``SA010``/``SA011``),
4. semantic lints (``SA001``–``SA009``),
5. plan lints (``SA101``/``SA102``),
6. dataflow passes over the *compiled* plan (only when stages 1–5 found
   no errors — the planner needs a well-formed query): sampling
   soundness (``SA201``–``SA204``) and, when an
   :class:`~repro.analysis.execsafety.ExecTarget` is given, execution
   safety (``SA301``–``SA306``) plus serving shareability (``SA401``
   under a ``serve`` target)

— and returns every finding in one :class:`LintResult`.  Rules can be
suppressed per query with a pragma comment anywhere in the text::

    -- lint: disable=SA001,SA102

(the pragma filter runs after *all* stages collect, so it applies to
plan-stage and dataflow rules exactly as to lexer/semantic ones).

The CLI's ``repro lint`` subcommand and the runtime's pre-execution check
(``Gigascope`` strict mode) both go through here.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticCollector,
    render_diagnostics,
)
from repro.analysis.execsafety import ExecTarget, check_execsafety
from repro.analysis.plan_rules import check_plan
from repro.analysis.rules import check_semantics
from repro.analysis.sampling_algebra import check_sampling
from repro.analysis.serving_rules import check_serving
from repro.analysis.types import TypeCheckResult, check_types
from repro.dsms.parser.analyzer import AnalyzedQuery, Registries, analyze
from repro.dsms.parser.planner import QueryPlan, plan as plan_query
from repro.dsms.parser.parser import parse_query
from repro.dsms.span import Span
from repro.errors import LexError, ParseError, PlanningError

#: ``-- lint: disable=SA001,SA102`` anywhere in the query text.
_PRAGMA_RE = re.compile(r"--\s*lint:\s*disable=([A-Za-z0-9_, \t]*)")


def parse_pragmas(source: str) -> FrozenSet[str]:
    """Rule ids disabled by ``-- lint: disable=...`` pragma comments."""
    disabled: List[str] = []
    for match in _PRAGMA_RE.finditer(source):
        for rule in match.group(1).split(","):
            rule = rule.strip()
            if rule:
                disabled.append(rule.upper())
    return frozenset(disabled)


@dataclass
class LintResult:
    """Everything one lint run found."""

    source: str
    filename: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    disabled: FrozenSet[str] = frozenset()
    analyzed: Optional[AnalyzedQuery] = None
    types: Optional[TypeCheckResult] = None
    #: the compiled plan the dataflow passes ran over (None when stages
    #: 1–5 reported errors); carries the exported ``plan.annotations``
    plan: Optional[QueryPlan] = None
    #: the deployment configuration the SA3xx rules linted against
    target: Optional[ExecTarget] = None

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if not d.is_error]

    @property
    def ok(self) -> bool:
        """No errors (warnings allowed)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """No diagnostics at all."""
        return not self.diagnostics

    def render(self) -> str:
        """Compiler-style report with source lines and carets."""
        return render_diagnostics(self.diagnostics, self.source, self.filename)


def _column_of(source: str, position: int) -> int:
    return position - source.rfind("\n", 0, position)


def lint_query(
    source: str,
    registries: Registries,
    filename: str = "<query>",
    target: Optional[ExecTarget] = None,
) -> LintResult:
    """Lint one query text against explicit registries.

    ``target`` (an :class:`ExecTarget`) additionally runs the SA3xx
    execution-safety rules against that deployment configuration.
    """
    collector = DiagnosticCollector()
    analyzed: Optional[AnalyzedQuery] = None
    types_result: Optional[TypeCheckResult] = None
    compiled: Optional[QueryPlan] = None
    try:
        ast = parse_query(source)
    except LexError as exc:
        collector.error(
            "SA090", str(exc), Span(exc.line, _column_of(source, exc.position))
        )
    except ParseError as exc:
        span = Span(exc.line, exc.col) if exc.line > 0 else None
        collector.error("SA091", str(exc), span)
    else:
        analyzed = analyze(ast, registries, collector)
        if analyzed is not None:
            types_result = check_types(analyzed, registries, collector)
            check_semantics(analyzed, registries, collector)
            check_plan(analyzed, registries, collector)
            if not collector.has_errors:
                # The dataflow passes walk the *compiled* plan, which the
                # planner only produces for well-formed queries; an
                # erroneous query already has its diagnostics above.
                try:
                    compiled = plan_query(analyzed, registries)
                except PlanningError:
                    compiled = None
                if compiled is not None:
                    check_sampling(analyzed, compiled, registries, collector)
                    check_execsafety(
                        analyzed, compiled, registries, collector, target
                    )
                    check_serving(
                        analyzed, compiled, registries, collector, target
                    )
    disabled = parse_pragmas(source)
    diagnostics = [d for d in collector.sorted() if d.rule not in disabled]
    return LintResult(
        source=source,
        filename=filename,
        diagnostics=diagnostics,
        disabled=disabled,
        analyzed=analyzed,
        types=types_result,
        plan=compiled,
        target=target,
    )


def default_lint_registries() -> Registries:
    """Registries for standalone linting: the stock streams, built-in
    functions, and every SFUN pack this repository ships (mirrors the
    CLI's standard instance, minus the runtime)."""
    from repro.algorithms.bindings import (
        basic_subset_sum_library,
        distinct_sampling_library,
        heavy_hitters_library,
        reservoir_library,
        subset_sum_library,
    )
    from repro.core.superaggregates import default_superaggregate_registry
    from repro.dsms.aggregates import default_aggregate_registry
    from repro.dsms.functions import default_function_registry
    from repro.streams.schema import PKT_SCHEMA, TCP_SCHEMA

    stateful = subset_sum_library()
    for pack in (
        basic_subset_sum_library(),
        reservoir_library(),
        heavy_hitters_library(),
        distinct_sampling_library(),
    ):
        stateful = stateful.merge(pack)
    return Registries(
        schemas={TCP_SCHEMA.name: TCP_SCHEMA, PKT_SCHEMA.name: PKT_SCHEMA},
        scalars=default_function_registry(),
        aggregates=default_aggregate_registry(),
        superaggregates=default_superaggregate_registry(),
        stateful=stateful,
    )


def lint_source(
    source: str,
    registries: Optional[Registries] = None,
    filename: str = "<query>",
    target: Optional[ExecTarget] = None,
) -> LintResult:
    """Lint one query text (default registries when none are given)."""
    return lint_query(
        source, registries or default_lint_registries(), filename, target=target
    )
