"""Generic dataflow analysis over the compiled operator plan.

The planner compiles a query into a :class:`~repro.dsms.parser.planner.
QueryPlan`; at runtime that plan becomes a chain of operator *phases*
(tuple admission, grouping, aggregate update, cleaning, HAVING, output —
paper §5/§6).  This module reifies those phases as an explicit DAG of
:class:`PlanNode` s so analysis passes can *propagate abstract facts
along its edges* instead of re-walking clause ASTs ad hoc:

* :func:`build_plan_graph` decomposes one ``QueryPlan`` into the phase
  DAG the operator will actually execute (``source → where → group →
  aggregate → cleaning → having → select → output``, with absent clauses
  skipped);
* :class:`DataflowAnalysis` is the abstract pass: a boundary fact for
  source edges, a transfer function per node, and a join for confluences
  (the graph is a chain today, but MERGE nodes fan in — the engine
  handles general DAGs);
* :func:`run_dataflow` walks the graph in topological order and records
  the fact on every edge, returned as a :class:`DataflowResult`.

Two passes ride on this engine: :mod:`repro.analysis.sampling_algebra`
(sampling-soundness facts, rules SA2xx) and
:mod:`repro.analysis.execsafety` (execution-safety facts, rules SA3xx).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.dsms.expr import Expr
from repro.dsms.parser.planner import QueryPlan
from repro.dsms.span import Span
from repro.streams.schema import StreamSchema

F = TypeVar("F")

#: (clause name, expression) pair carried by a node.
ClauseExpr = Tuple[str, Expr]


@dataclass(frozen=True)
class PlanNode:
    """One operator phase of a compiled plan.

    ``kind`` is one of ``source``, ``where``, ``group``, ``aggregate``,
    ``cleaning``, ``having``, ``select``, ``output`` (and ``merge`` for
    fan-in nodes of multi-query graphs).  ``exprs`` are the clause
    expressions the phase evaluates; ``span`` anchors diagnostics about
    the phase itself.
    """

    node_id: str
    kind: str
    exprs: Tuple[ClauseExpr, ...] = ()
    span: Optional[Span] = None
    schema: Optional[StreamSchema] = None

    def __str__(self) -> str:
        return f"{self.node_id}[{self.kind}]"


@dataclass(frozen=True)
class PlanEdge:
    """A directed dataflow edge between two plan nodes."""

    src: str
    dst: str


@dataclass
class PlanGraph:
    """The operator-phase DAG of one (or more chained) compiled plans."""

    plan: QueryPlan
    nodes: Dict[str, PlanNode] = field(default_factory=dict)
    edges: List[PlanEdge] = field(default_factory=list)

    def add_node(self, node: PlanNode) -> PlanNode:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate plan node {node.node_id!r}")
        self.nodes[node.node_id] = node
        return node

    def add_edge(self, src: PlanNode, dst: PlanNode) -> PlanEdge:
        edge = PlanEdge(src.node_id, dst.node_id)
        self.edges.append(edge)
        return edge

    def node(self, node_id: str) -> PlanNode:
        return self.nodes[node_id]

    def predecessors(self, node_id: str) -> List[PlanNode]:
        return [self.nodes[e.src] for e in self.edges if e.dst == node_id]

    def successors(self, node_id: str) -> List[PlanNode]:
        return [self.nodes[e.dst] for e in self.edges if e.src == node_id]

    def sources(self) -> List[PlanNode]:
        """Nodes with no incoming edge (the stream taps)."""
        targets = {e.dst for e in self.edges}
        return [n for n in self.nodes.values() if n.node_id not in targets]

    def topological(self) -> List[PlanNode]:
        """Nodes in topological order (raises on a cycle)."""
        indegree: Dict[str, int] = {node_id: 0 for node_id in self.nodes}
        for edge in self.edges:
            indegree[edge.dst] += 1
        ready = [
            node_id for node_id, degree in sorted(indegree.items())
            if degree == 0
        ]
        order: List[PlanNode] = []
        while ready:
            node_id = ready.pop(0)
            order.append(self.nodes[node_id])
            for succ in self.successors(node_id):
                indegree[succ.node_id] -= 1
                if indegree[succ.node_id] == 0:
                    ready.append(succ.node_id)
        if len(order) != len(self.nodes):
            raise ValueError("plan graph contains a cycle")
        return order

    def nodes_of_kind(self, kind: str) -> List[PlanNode]:
        return [n for n in self.topological() if n.kind == kind]

    def first_of_kind(self, kind: str) -> Optional[PlanNode]:
        for node in self.topological():
            if node.kind == kind:
                return node
        return None

    def __iter__(self) -> Iterator[PlanNode]:
        return iter(self.topological())


def build_plan_graph(plan: QueryPlan, name: str = "q") -> PlanGraph:
    """Decompose one compiled plan into its operator-phase DAG.

    The chain mirrors the evaluation order of the runtime operators
    (paper §5): tuples are admitted by WHERE, routed to their group,
    folded into aggregates and superaggregates, periodically cleaned,
    filtered by HAVING at the window border, and projected by SELECT.
    Phases a query does not use are omitted, so a plain selection
    compiles to ``source → where → select → output``.
    """
    analyzed = plan.analyzed
    ast = analyzed.ast
    graph = PlanGraph(plan)

    def nid(kind: str) -> str:
        return f"{name}.{kind}"

    previous = graph.add_node(
        PlanNode(
            nid("source"),
            "source",
            span=ast.clause_span("FROM"),
            schema=analyzed.schema,
        )
    )

    def chain(node: PlanNode) -> PlanNode:
        nonlocal previous
        graph.add_node(node)
        graph.add_edge(previous, node)
        previous = node
        return node

    if ast.where is not None:
        chain(
            PlanNode(
                nid("where"),
                "where",
                exprs=(("WHERE", ast.where),),
                span=ast.clause_span("WHERE") or ast.where.span,
            )
        )

    if analyzed.group_by:
        chain(
            PlanNode(
                nid("group"),
                "group",
                exprs=tuple(
                    ("GROUP BY", item.expr) for item in analyzed.group_by
                ),
                span=ast.clause_span("GROUP BY"),
            )
        )

    if analyzed.aggregates or analyzed.superaggregates:
        chain(
            PlanNode(
                nid("aggregate"),
                "aggregate",
                exprs=tuple(
                    ("AGGREGATE", node)
                    for node in (*analyzed.aggregates, *analyzed.superaggregates)
                ),
                span=ast.clause_span("GROUP BY"),
            )
        )

    if ast.cleaning_when is not None or ast.cleaning_by is not None:
        cleaning_exprs: List[ClauseExpr] = []
        if ast.cleaning_when is not None:
            cleaning_exprs.append(("CLEANING WHEN", ast.cleaning_when))
        if ast.cleaning_by is not None:
            cleaning_exprs.append(("CLEANING BY", ast.cleaning_by))
        chain(
            PlanNode(
                nid("cleaning"),
                "cleaning",
                exprs=tuple(cleaning_exprs),
                span=ast.clause_span("CLEANING WHEN")
                or ast.clause_span("CLEANING BY"),
            )
        )

    if ast.having is not None:
        chain(
            PlanNode(
                nid("having"),
                "having",
                exprs=(("HAVING", ast.having),),
                span=ast.clause_span("HAVING") or ast.having.span,
            )
        )

    chain(
        PlanNode(
            nid("select"),
            "select",
            exprs=tuple(
                ("SELECT", item.expr)
                for item in ast.select
                if item.expr is not None
            ),
            span=ast.clause_span("SELECT"),
        )
    )
    chain(
        PlanNode(
            nid("output"),
            "output",
            span=ast.clause_span("SELECT"),
            schema=plan.output_schema,
        )
    )
    return graph


@dataclass
class DataflowResult(Generic[F]):
    """Per-edge facts computed by :func:`run_dataflow`.

    ``edge_facts`` maps ``(src id, dst id)`` to the fact flowing along
    that edge; ``out_facts`` maps a node id to the fact it emits.
    """

    graph: PlanGraph
    edge_facts: Dict[Tuple[str, str], F] = field(default_factory=dict)
    out_facts: Dict[str, F] = field(default_factory=dict)

    def fact_out_of(self, node_id: str) -> F:
        return self.out_facts[node_id]

    def fact_into(self, node_id: str) -> Optional[F]:
        """The joined fact entering ``node_id`` (None for source nodes)."""
        incoming = [
            fact for (_, dst), fact in self.edge_facts.items() if dst == node_id
        ]
        if not incoming:
            return None
        result = incoming[0]
        return result


class DataflowAnalysis(Generic[F]):
    """A forward dataflow pass: boundary fact, transfer, join.

    Subclasses define the fact type ``F`` and override the three hooks.
    Facts should be immutable (frozen dataclasses): the engine reuses
    them freely across edges.
    """

    def boundary(self, node: PlanNode) -> F:
        """The fact flowing out of a source node."""
        raise NotImplementedError

    def transfer(self, node: PlanNode, fact: F) -> F:
        """The fact flowing out of ``node`` given the joined input fact."""
        raise NotImplementedError

    def join(self, facts: List[F]) -> F:
        """Combine facts at a fan-in (default: single-predecessor only)."""
        if len(facts) != 1:
            raise NotImplementedError(
                f"{type(self).__name__} does not define join() but the"
                f" graph has a {len(facts)}-way confluence"
            )
        return facts[0]


def run_dataflow(graph: PlanGraph, analysis: DataflowAnalysis[F]) -> DataflowResult[F]:
    """Propagate ``analysis`` facts through ``graph`` (single forward pass).

    The graph is acyclic (operators never feed backwards), so one
    topological sweep reaches the fixed point.
    """
    result: DataflowResult[F] = DataflowResult(graph)
    for node in graph.topological():
        predecessors = graph.predecessors(node.node_id)
        if not predecessors:
            out = analysis.boundary(node)
        else:
            incoming = [
                result.edge_facts[(pred.node_id, node.node_id)]
                for pred in predecessors
            ]
            joined = analysis.join(incoming)
            out = analysis.transfer(node, joined)
        result.out_facts[node.node_id] = out
        for succ in graph.successors(node.node_id):
            result.edge_facts[(node.node_id, succ.node_id)] = out
    return result
