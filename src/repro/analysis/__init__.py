"""Static query analysis: type inference, semantic lints, plan lints.

The package sits between the parser and the planner.  ``repro lint``
drives it directly; the runtime runs it before executing a query (see
``Gigascope.query(..., lint=...)``).

Only the diagnostic types are imported eagerly: the parser-level analyzer
imports :mod:`repro.analysis.diagnostics`, while the linter here imports
the analyzer — loading the heavy modules lazily keeps that loop open.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticCollector,
    Severity,
    render_diagnostics,
)

if TYPE_CHECKING:
    from repro.analysis.execsafety import ExecTarget, parse_target
    from repro.analysis.linter import LintResult, lint_query, lint_source
    from repro.analysis.sampling_algebra import SamplingFact
    from repro.analysis.sarif import results_to_json, results_to_sarif
    from repro.analysis.signatures import GType
    from repro.analysis.types import TypeCheckResult, check_types

__all__ = [
    "Diagnostic",
    "DiagnosticCollector",
    "ExecTarget",
    "GType",
    "LintResult",
    "SamplingFact",
    "Severity",
    "TypeCheckResult",
    "check_types",
    "lint_query",
    "lint_source",
    "parse_target",
    "render_diagnostics",
    "results_to_json",
    "results_to_sarif",
]

_LAZY = {
    "LintResult": "repro.analysis.linter",
    "lint_query": "repro.analysis.linter",
    "lint_source": "repro.analysis.linter",
    "ExecTarget": "repro.analysis.execsafety",
    "parse_target": "repro.analysis.execsafety",
    "SamplingFact": "repro.analysis.sampling_algebra",
    "results_to_json": "repro.analysis.sarif",
    "results_to_sarif": "repro.analysis.sarif",
    "GType": "repro.analysis.signatures",
    "TypeCheckResult": "repro.analysis.types",
    "check_types": "repro.analysis.types",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
