"""Push-based operator protocol.

Operators consume one input record at a time and return zero or more
output records; :meth:`flush` closes any trailing window at end of
stream.  The runtime chains operators by feeding each output record to
the downstream node.

Operators also support crash-recovery checkpoints: :meth:`checkpoint`
returns a picklable snapshot of all mutable state and :meth:`restore`
reinstates it on a freshly built operator of the same plan.  The shard
supervisor uses this pair to resume a replacement worker from the last
checkpoint instead of replaying the whole stream.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List

from repro.errors import ExecutionError
from repro.streams.records import Record
from repro.streams.schema import StreamSchema


class Operator:
    """Base class for executable operators."""

    #: Schema of the records this operator emits.
    output_schema: StreamSchema

    def process(self, record: Record) -> List[Record]:
        raise NotImplementedError

    def flush(self) -> List[Record]:
        """End-of-stream: emit anything still buffered (default: nothing)."""
        return []

    def checkpoint(self) -> Any:
        """Picklable snapshot of mutable operator state.

        ``None`` means the operator is stateless (the default — plain
        selections have nothing to recover).  Stateful operators return a
        structure fully decoupled from their live state, so the snapshot
        stays valid while the operator keeps processing.
        """
        return None

    def restore(self, snapshot: Any) -> None:
        """Reinstate a :meth:`checkpoint` snapshot (stateless: no-op)."""
        if snapshot is not None:
            raise ExecutionError(
                f"{type(self).__name__} is stateless but was given a"
                f" non-empty snapshot ({type(snapshot).__name__})"
            )

    def run(self, records: Iterable[Record]) -> Iterator[Record]:
        """Drive the operator over a whole stream."""
        for record in records:
            yield from self.process(record)
        yield from self.flush()
