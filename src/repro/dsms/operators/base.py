"""Push-based operator protocol.

Operators consume one input record at a time and return zero or more
output records; :meth:`flush` closes any trailing window at end of
stream.  The runtime chains operators by feeding each output record to
the downstream node.

Operators also support crash-recovery checkpoints: :meth:`checkpoint`
returns a picklable snapshot of all mutable state and :meth:`restore`
reinstates it on a freshly built operator of the same plan.  The shard
supervisor uses this pair to resume a replacement worker from the last
checkpoint instead of replaying the whole stream.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Tuple

from repro.errors import ExecutionError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACE, TraceSink
from repro.streams.records import Record
from repro.streams.schema import StreamSchema


class Operator:
    """Base class for executable operators."""

    #: Schema of the records this operator emits.
    output_schema: StreamSchema

    #: value of the ``operator`` label on this operator's metric series
    kind_label = "operator"

    # -- static capabilities ----------------------------------------------
    #
    # Introspectable without running the operator: the durable runner and
    # the execution-safety analyzer (rules SA3xx) read these to decide up
    # front whether a deployment is safe, instead of finding out mid-run.

    #: Whether :meth:`checkpoint`/:meth:`restore` capture *all* mutable
    #: state (every shipped operator does; an operator holding state it
    #: cannot snapshot overrides this to False).
    supports_checkpoint: bool = True

    #: SFUN state names this operator's plan requires (set by the
    #: factory from the analyzed query; empty for stateless plans).
    required_states: Tuple[str, ...] = ()

    #: "tuple" or "vectorized" — which engine executes this operator's
    #: hot path (the vectorized subclasses override it).
    execution_mode: str = "tuple"

    #: Set by the factory when ``vectorize=True`` was requested but this
    #: plan had to fall back to the tuple path: the human-readable reason
    #: (SFUN, superaggregate, custom aggregate, ...).
    vectorize_fallback: "str | None" = None

    # -- observability -----------------------------------------------------
    #
    # Every operator carries metric series for the tuple-conservation
    # identity ``in == filtered + rows_out`` (selections) or
    # ``in == filtered + admitted + late + incomparable`` (windowed
    # operators; see docs/OBSERVABILITY.md).  Series are resolved once,
    # at bind time, into plain attributes so the per-tuple cost is one
    # integer add.  Operators built standalone (unit tests) bind a
    # private registry; the runtime re-binds them onto the instance-wide
    # registry before any tuple flows.

    def bind_obs(
        self, metrics: MetricsRegistry, trace: TraceSink, query: str
    ) -> None:
        """Attach this operator's metric series and trace sink."""
        self.obs_metrics = metrics
        self.obs_trace = trace
        self.obs_query = query
        self._bind_series()

    def _bind_series(self) -> None:
        """Resolve metric series (subclasses extend, then call super)."""
        common = {"query": self.obs_query, "operator": self.kind_label}
        m = self.obs_metrics
        self.m_in = m.counter(
            "operator_tuples_in_total",
            help="input tuples presented to the operator",
            **common,
        )
        self.m_filtered = m.counter(
            "operator_tuples_filtered_total",
            help="input tuples rejected by WHERE",
            **common,
        )
        self.m_rows_out = m.counter(
            "operator_rows_out_total",
            help="output records emitted (per window for windowed operators)",
            **common,
        )

    def _default_obs(self, query: str) -> None:
        """Bind a private registry (constructor fallback; see bind_obs)."""
        self.bind_obs(MetricsRegistry(), NULL_TRACE, query)

    def process(self, record: Record) -> List[Record]:
        raise NotImplementedError

    def flush(self) -> List[Record]:
        """End-of-stream: emit anything still buffered (default: nothing)."""
        return []

    def checkpoint(self) -> Any:
        """Picklable snapshot of mutable operator state.

        ``None`` means the operator is stateless (the default — plain
        selections have nothing to recover).  Stateful operators return a
        structure fully decoupled from their live state, so the snapshot
        stays valid while the operator keeps processing.
        """
        return None

    def restore(self, snapshot: Any) -> None:
        """Reinstate a :meth:`checkpoint` snapshot (stateless: no-op)."""
        if snapshot is not None:
            raise ExecutionError(
                f"{type(self).__name__} is stateless but was given a"
                f" non-empty snapshot ({type(snapshot).__name__})"
            )

    def run(self, records: Iterable[Record]) -> Iterator[Record]:
        """Drive the operator over a whole stream."""
        for record in records:
            yield from self.process(record)
        yield from self.flush()
