"""Push-based operator protocol.

Operators consume one input record at a time and return zero or more
output records; :meth:`flush` closes any trailing window at end of
stream.  The runtime chains operators by feeding each output record to
the downstream node.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.streams.records import Record
from repro.streams.schema import StreamSchema


class Operator:
    """Base class for executable operators."""

    #: Schema of the records this operator emits.
    output_schema: StreamSchema

    def process(self, record: Record) -> List[Record]:
        raise NotImplementedError

    def flush(self) -> List[Record]:
        """End-of-stream: emit anything still buffered (default: nothing)."""
        return []

    def run(self, records: Iterable[Record]) -> Iterator[Record]:
        """Drive the operator over a whole stream."""
        for record in records:
            yield from self.process(record)
        yield from self.flush()
