"""Windowed GROUP BY aggregation operator.

The conventional (non-sampling) aggregation path: groups accumulate UDAF
state within a window; when any ordered group-by variable changes value
(paper §3: window boundaries derive from ordered-attribute references),
all groups are finalized, HAVING-filtered and emitted.

This operator doubles as the exact baseline for the accuracy experiments:
Fig 2's "actual" series is a plain ``sum(len)`` aggregation over 20-second
windows run next to the sampling query.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.dsms.aggregates import Aggregate, AggregateRegistry
from repro.dsms.cost import CostModel, NULL_COST_MODEL
from repro.dsms.expr import AggregateCall, EvalContext, evaluate
from repro.dsms.functions import FunctionRegistry
from repro.dsms.operators.base import Operator
from repro.dsms.parser.analyzer import AnalyzedQuery
from repro.streams.records import Record
from repro.streams.schema import StreamSchema


class _AggTupleContext(EvalContext):
    def __init__(self, operator: "AggregationOperator") -> None:
        self._op = operator
        self.record: Optional[Record] = None
        self.gb_values: Tuple[Any, ...] = ()

    def column(self, name: str) -> Any:
        index = self._op._gb_index.get(name)
        if index is not None and self.gb_values:
            return self.gb_values[index]
        assert self.record is not None
        return self.record[name]

    def call_scalar(self, name: str, args: Sequence[Any]) -> Any:
        self._op._cost.charge(self._op._account, "function_call")
        return self._op._scalars.call(name, args)


class _AggGroupContext(EvalContext):
    def __init__(self, operator: "AggregationOperator") -> None:
        self._op = operator
        self.key: Tuple[Any, ...] = ()
        self.aggregates: List[Aggregate] = []

    def column(self, name: str) -> Any:
        index = self._op._gb_index.get(name)
        if index is None:
            raise ExecutionError(f"column {name!r} is not a group-by variable")
        return self.key[index]

    def call_scalar(self, name: str, args: Sequence[Any]) -> Any:
        self._op._cost.charge(self._op._account, "function_call")
        return self._op._scalars.call(name, args)

    def aggregate_value(self, node: AggregateCall) -> Any:
        return self.aggregates[node.slot].value()


class AggregationOperator(Operator):
    """Plain windowed grouping and aggregation."""

    kind_label = "aggregation"

    def __init__(
        self,
        analyzed: AnalyzedQuery,
        output_schema: StreamSchema,
        scalars: FunctionRegistry,
        aggregates: AggregateRegistry,
        cost_model: CostModel = NULL_COST_MODEL,
        account: str = "aggregation",
    ) -> None:
        if analyzed.kind != "aggregation":
            raise ExecutionError(
                f"AggregationOperator built from a {analyzed.kind!r} query"
            )
        self.analyzed = analyzed
        self.output_schema = output_schema
        self._scalars = scalars
        self._registry = aggregates
        self._cost = cost_model
        self._account = account

        self._gb_index = {item.name: i for i, item in enumerate(analyzed.group_by)}
        self._ordered_indices = tuple(
            list(self._gb_index[name] for name in analyzed.ordered_names)
        )
        self._groups: Dict[Tuple[Any, ...], List[Aggregate]] = {}
        self._current_window: Optional[Tuple[Any, ...]] = None

        self._tuple_ctx = _AggTupleContext(self)
        self._group_ctx = _AggGroupContext(self)
        self._default_obs(account)

    def _bind_series(self) -> None:
        super()._bind_series()
        common = {"query": self.obs_query, "operator": self.kind_label}
        m = self.obs_metrics
        self.m_admitted = m.counter(
            "operator_tuples_admitted_total",
            help="tuples that passed WHERE and fed a group",
            **common,
        )
        self.m_windows = m.counter(
            "operator_windows_total", help="windows closed", **common
        )
        self.m_groups_created = m.counter(
            "operator_groups_created_total", help="group-table inserts", **common
        )
        self.m_having_rejected = m.counter(
            "operator_having_rejected_total",
            help="groups rejected by HAVING at window close",
            **common,
        )

    def process(self, record: Record) -> List[Record]:
        self._tuple_ctx.record = record
        self._tuple_ctx.gb_values = ()
        gb_values = tuple(
            evaluate(item.expr, self._tuple_ctx) for item in self.analyzed.group_by
        )
        self._tuple_ctx.gb_values = gb_values
        window = tuple(gb_values[i] for i in self._ordered_indices)

        outputs: List[Record] = []
        if self._current_window is None:
            self._current_window = window
            self.obs_trace.emit(
                "window_open", query=self.obs_query, window=list(window)
            )
        elif window != self._current_window:
            outputs = self._emit_window()
            self._current_window = window
            self.obs_trace.emit(
                "window_open", query=self.obs_query, window=list(window)
            )

        self._cost.charge(self._account, "tuple_read")
        self._cost.charge(self._account, "hash_probe")
        self.m_in.inc()
        where = self.analyzed.ast.where
        if where is not None:
            self._cost.charge(self._account, "predicate_eval")
            if not evaluate(where, self._tuple_ctx):
                self.m_filtered.inc()
                return outputs
        self.m_admitted.inc()

        group = self._groups.get(gb_values)
        if group is None:
            group = [self._registry.create(node.name) for node in self.analyzed.aggregates]
            self._groups[gb_values] = group
            self._cost.charge(self._account, "hash_insert")
            self.m_groups_created.inc()
        for node, aggregate in zip(self.analyzed.aggregates, group):
            arg = node.args[0] if node.args else None
            value = evaluate(arg, self._tuple_ctx) if arg is not None else 1
            aggregate.update(value)
            self._cost.charge(self._account, "aggregate_update")
        return outputs

    def flush(self) -> List[Record]:
        if self._current_window is None:
            return []
        outputs = self._emit_window()
        self._current_window = None
        return outputs

    def checkpoint(self) -> Any:
        """Snapshot the open window: group table plus current window id.

        Aggregate instances are module-level classes holding plain
        accumulator fields, so a deepcopy is both decoupled from the live
        table and picklable across the worker/parent boundary.
        """
        return {
            "groups": copy.deepcopy(self._groups),
            "current_window": self._current_window,
        }

    def restore(self, snapshot: Any) -> None:
        self._groups = copy.deepcopy(snapshot["groups"])
        self._current_window = snapshot["current_window"]

    def _emit_window(self) -> List[Record]:
        outputs: List[Record] = []
        having = self.analyzed.ast.having
        self._cost.charge(self._account, "window_flush")
        for key, aggregates in self._groups.items():
            self._group_ctx.key = key
            self._group_ctx.aggregates = aggregates
            if having is not None:
                self._cost.charge(self._account, "predicate_eval")
                if not evaluate(having, self._group_ctx):
                    self.m_having_rejected.inc()
                    continue
            values = [
                evaluate(item.expr, self._group_ctx)
                for item in self.analyzed.ast.select
            ]
            outputs.append(Record(self.output_schema, values))
            self._cost.charge(self._account, "output_tuple")
        self.m_windows.inc()
        self.m_rows_out.inc(len(outputs))
        self.obs_trace.emit(
            "window_close",
            query=self.obs_query,
            window=list(self._current_window or ()),
            rows_out=len(outputs),
        )
        self._groups.clear()
        return outputs
