"""Executable operators and the plan -> operator factory."""

from repro.dsms.operators.base import Operator
from repro.dsms.operators.selection import SelectionOperator, StatefulSelectionOperator
from repro.dsms.operators.aggregation import AggregationOperator
from repro.dsms.operators.merge import MergeOperator
from repro.dsms.operators.factory import build_operator

__all__ = [
    "Operator",
    "SelectionOperator",
    "StatefulSelectionOperator",
    "AggregationOperator",
    "MergeOperator",
    "build_operator",
]
