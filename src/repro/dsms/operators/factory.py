"""Plan -> operator construction."""

from __future__ import annotations

from repro.errors import PlanningError
from repro.dsms.cost import CostModel, NULL_COST_MODEL
from repro.dsms.operators.aggregation import AggregationOperator
from repro.dsms.operators.base import Operator
from repro.dsms.operators.selection import SelectionOperator, StatefulSelectionOperator
from repro.dsms.parser.planner import QueryPlan
from repro.core.sampling_operator import SamplingOperator


#: Static plan-kind -> operator-class mapping, introspectable without
#: building anything (the execution-safety analyzer reads capability
#: attributes like ``supports_checkpoint`` off the class).
OPERATOR_CLASSES = {
    "selection": SelectionOperator,
    "stateful_selection": StatefulSelectionOperator,
    "aggregation": AggregationOperator,
    "sampling": SamplingOperator,
}


def operator_class(kind: str) -> type:
    """The operator class a plan of ``kind`` would instantiate."""
    try:
        return OPERATOR_CLASSES[kind]
    except KeyError:
        raise PlanningError(f"unknown plan kind {kind!r}") from None


def build_operator(
    plan: QueryPlan,
    cost_model: CostModel = NULL_COST_MODEL,
    account: str = "query",
    vectorize: bool = False,
) -> Operator:
    """Instantiate the executable operator for a planned query.

    With ``vectorize``, selection and plain-aggregation plans get the
    columnar batch operators (``repro.dsms.vectorized``); a plan the
    batch compiler cannot express falls back to the tuple operator and
    records why in ``operator.vectorize_fallback``.  Sampling and
    stateful-selection plans always take the tuple path — SFUN state is
    inherently per-tuple.
    """
    registries = plan.registries
    operator: Operator
    if vectorize and plan.kind in ("selection", "aggregation"):
        vectorized = _try_vectorized(plan, cost_model, account)
        if isinstance(vectorized, Operator):
            vectorized.required_states = tuple(plan.analyzed.state_names)
            return vectorized
        fallback_reason = vectorized
    else:
        fallback_reason = None
    if plan.kind == "selection":
        operator = SelectionOperator(
            plan.analyzed, plan.output_schema, registries.scalars, cost_model, account
        )
    elif plan.kind == "stateful_selection":
        operator = StatefulSelectionOperator(
            plan.analyzed,
            plan.output_schema,
            registries.scalars,
            registries.stateful,
            cost_model,
            account,
        )
    elif plan.kind == "aggregation":
        operator = AggregationOperator(
            plan.analyzed,
            plan.output_schema,
            registries.scalars,
            registries.aggregates,
            cost_model,
            account,
        )
    elif plan.kind == "sampling":
        assert plan.sampling is not None
        operator = SamplingOperator(
            plan.sampling,
            registries.scalars,
            registries.stateful,
            aggregate_factory=registries.aggregates.create,
            superaggregate_factory=registries.superaggregates.create,
            cost_model=cost_model,
            account=account,
        )
    else:
        raise PlanningError(f"unknown plan kind {plan.kind!r}")
    # Instance-level capability record: which SFUN states this plan needs
    # (the durable runner checks them against the library up front).
    operator.required_states = tuple(plan.analyzed.state_names)
    if fallback_reason is not None:
        operator.vectorize_fallback = fallback_reason
    return operator


def _try_vectorized(plan: QueryPlan, cost_model: CostModel, account: str):
    """A vectorized operator for the plan, or the fallback reason string."""
    from repro.dsms.vectorized import (
        UnsupportedExpression,
        VectorizedAggregationOperator,
        VectorizedSelectionOperator,
    )

    registries = plan.registries
    try:
        if plan.kind == "selection":
            return VectorizedSelectionOperator(
                plan.analyzed,
                plan.output_schema,
                registries.scalars,
                cost_model,
                account,
            )
        return VectorizedAggregationOperator(
            plan.analyzed,
            plan.output_schema,
            registries.scalars,
            registries.aggregates,
            cost_model,
            account,
        )
    except UnsupportedExpression as exc:
        return str(exc)
