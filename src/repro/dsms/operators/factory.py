"""Plan -> operator construction."""

from __future__ import annotations

from repro.errors import PlanningError
from repro.dsms.cost import CostModel, NULL_COST_MODEL
from repro.dsms.operators.aggregation import AggregationOperator
from repro.dsms.operators.base import Operator
from repro.dsms.operators.selection import SelectionOperator, StatefulSelectionOperator
from repro.dsms.parser.planner import QueryPlan
from repro.core.sampling_operator import SamplingOperator


def build_operator(
    plan: QueryPlan,
    cost_model: CostModel = NULL_COST_MODEL,
    account: str = "query",
) -> Operator:
    """Instantiate the executable operator for a planned query."""
    registries = plan.registries
    if plan.kind == "selection":
        return SelectionOperator(
            plan.analyzed, plan.output_schema, registries.scalars, cost_model, account
        )
    if plan.kind == "stateful_selection":
        return StatefulSelectionOperator(
            plan.analyzed,
            plan.output_schema,
            registries.scalars,
            registries.stateful,
            cost_model,
            account,
        )
    if plan.kind == "aggregation":
        return AggregationOperator(
            plan.analyzed,
            plan.output_schema,
            registries.scalars,
            registries.aggregates,
            cost_model,
            account,
        )
    if plan.kind == "sampling":
        assert plan.sampling is not None
        return SamplingOperator(
            plan.sampling,
            registries.scalars,
            registries.stateful,
            aggregate_factory=registries.aggregates.create,
            superaggregate_factory=registries.superaggregates.create,
            cost_model=cost_model,
            account=account,
        )
    raise PlanningError(f"unknown plan kind {plan.kind!r}")
