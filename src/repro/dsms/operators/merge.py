"""Order-preserving stream merge.

Gigascope composes query sets over multiple taps with a MERGE operator:
it combines streams with identical schemas into one, preserving the
ordering property of the ordered attribute (so downstream windowed
queries still see monotone time).

The implementation is watermark-based: records buffer per source; the
watermark is the minimum, across sources, of the last ordered-attribute
value seen; buffered records at or below the watermark are released in
sorted order.  A source that ends (``end_source``) stops holding the
watermark back.  ``flush`` releases everything that remains.
"""

from __future__ import annotations

import copy
import heapq
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ExecutionError, SchemaError
from repro.dsms.operators.base import Operator
from repro.streams.records import Record
from repro.streams.schema import StreamSchema


class MergeOperator(Operator):
    """Merge N same-schema streams by their first ordered attribute."""

    kind_label = "merge"

    def __init__(self, schema: StreamSchema, sources: Sequence[str]) -> None:
        if len(sources) < 2:
            raise ExecutionError("a merge needs at least two sources")
        ordered = schema.ordered_attributes()
        if not ordered:
            raise SchemaError(
                f"schema {schema.name!r} has no ordered attribute to merge on"
            )
        self.output_schema = schema
        self.merge_attribute = ordered[0].name
        self._key_index = schema.index_of(self.merge_attribute)
        self._sources = list(sources)
        self._heap: List[tuple] = []  # (key, seq, record)
        self._seq = 0
        #: last ordered value per live source (None until first record)
        self._frontier: Dict[str, Optional[Any]] = {s: None for s in sources}
        self._done: set = set()
        self._default_obs("merge")

    def _bind_series(self) -> None:
        super()._bind_series()
        self.g_buffered = self.obs_metrics.gauge(
            "merge_buffered",
            help="records held back by the merge watermark",
            query=self.obs_query,
            operator=self.kind_label,
        )

    # -- input -------------------------------------------------------------------

    def process_from(self, source: str, record: Record) -> List[Record]:
        """Accept one record from a named source; returns releasable output."""
        if source not in self._frontier:
            raise ExecutionError(f"unknown merge source {source!r}")
        if source in self._done:
            raise ExecutionError(f"merge source {source!r} already ended")
        key = record.values[self._key_index]
        last = self._frontier[source]
        if last is not None and key < last:
            raise ExecutionError(
                f"merge source {source!r} violated ordering:"
                f" {key!r} after {last!r}"
            )
        self.m_in.inc()
        self._frontier[source] = key
        heapq.heappush(self._heap, (key, self._seq, record))
        self._seq += 1
        return self._release()

    def process(self, record: Record) -> List[Record]:
        raise ExecutionError(
            "MergeOperator is fed per source; use process_from(source, record)"
        )

    def end_source(self, source: str) -> List[Record]:
        """Mark one source exhausted; it no longer holds the watermark."""
        if source not in self._frontier:
            raise ExecutionError(f"unknown merge source {source!r}")
        self._done.add(source)
        return self._release()

    # -- output -------------------------------------------------------------------

    def _watermark(self) -> Optional[Any]:
        """Smallest frontier over live sources (None = a source is silent)."""
        live = [s for s in self._sources if s not in self._done]
        if not live:
            return None  # everything may flow
        frontiers = [self._frontier[s] for s in live]
        if any(f is None for f in frontiers):
            return _HOLD
        return min(frontiers)

    def _release(self) -> List[Record]:
        watermark = self._watermark()
        out: List[Record] = []
        if watermark is _HOLD:
            self.g_buffered.set(len(self._heap))
            return out
        while self._heap and (
            watermark is None or self._heap[0][0] <= watermark
        ):
            _key, _seq, record = heapq.heappop(self._heap)
            out.append(record)
        self.m_rows_out.inc(len(out))
        self.g_buffered.set(len(self._heap))
        return out

    def flush(self) -> List[Record]:
        """End of all input: release every buffered record in order."""
        self._done.update(self._sources)
        out: List[Record] = []
        while self._heap:
            _key, _seq, record = heapq.heappop(self._heap)
            out.append(record)
        self.m_rows_out.inc(len(out))
        self.g_buffered.set(0)
        return out

    def checkpoint(self) -> Any:
        """Snapshot buffered records, per-source frontiers, and ended
        sources (the heap list is already heap-ordered, so restore needs
        no re-heapify)."""
        return {
            "heap": copy.deepcopy(self._heap),
            "seq": self._seq,
            "frontier": dict(self._frontier),
            "done": set(self._done),
        }

    def restore(self, snapshot: Any) -> None:
        self._heap = copy.deepcopy(snapshot["heap"])
        self._seq = snapshot["seq"]
        self._frontier = dict(snapshot["frontier"])
        self._done = set(snapshot["done"])

    @property
    def buffered(self) -> int:
        return len(self._heap)


class _Hold:
    """Sentinel: a live source has produced nothing yet; hold everything."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<hold>"


_HOLD = _Hold()
