"""Selection (and stateful selection) operators.

A selection query has no GROUP BY: it filters tuples with WHERE and
projects the SELECT list.  The *stateful* variant additionally carries a
single global SFUN state set, which is how the paper's baseline runs
"basic subset-sum sampling using a user-defined function in a selection
operator" (§7.2) and how low-level prefilter queries work (Fig 6).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.dsms.cost import CostModel, NULL_COST_MODEL
from repro.dsms.expr import EvalContext, StatefulCall, evaluate
from repro.dsms.functions import FunctionRegistry
from repro.dsms.operators.base import Operator
from repro.dsms.parser.analyzer import AnalyzedQuery
from repro.dsms.stateful import StatefulLibrary
from repro.streams.records import Record
from repro.streams.schema import StreamSchema


class _SelectionContext(EvalContext):
    def __init__(
        self,
        scalars: FunctionRegistry,
        stateful: Optional[StatefulLibrary],
        states: Optional[dict],
        cost_model: CostModel,
        account: str,
    ) -> None:
        self._scalars = scalars
        self._stateful = stateful
        self._states = states
        self._cost = cost_model
        self._account = account
        self.record: Optional[Record] = None

    def column(self, name: str) -> Any:
        assert self.record is not None
        return self.record[name]

    def call_scalar(self, name: str, args: Sequence[Any]) -> Any:
        self._cost.charge(self._account, "function_call")
        return self._scalars.call(name, args)

    def call_stateful(self, node: StatefulCall, args: Sequence[Any]) -> Any:
        if self._stateful is None or self._states is None:
            return super().call_stateful(node, args)
        self._cost.charge(self._account, "sfun_call")
        return self._stateful.invoke(node.name, self._states, args)


class SelectionOperator(Operator):
    """Plain WHERE + SELECT over a stream."""

    kind_label = "selection"

    def __init__(
        self,
        analyzed: AnalyzedQuery,
        output_schema: StreamSchema,
        scalars: FunctionRegistry,
        cost_model: CostModel = NULL_COST_MODEL,
        account: str = "selection",
    ) -> None:
        self.analyzed = analyzed
        self.output_schema = output_schema
        self._cost = cost_model
        self._account = account
        self._ctx = _SelectionContext(scalars, None, None, cost_model, account)
        self._default_obs(account)

    def process(self, record: Record) -> List[Record]:
        self._ctx.record = record
        self._cost.charge(self._account, "tuple_read")
        self.m_in.inc()
        where = self.analyzed.ast.where
        if where is not None:
            self._cost.charge(self._account, "predicate_eval")
            if not evaluate(where, self._ctx):
                self.m_filtered.inc()
                return []
        values = [evaluate(item.expr, self._ctx) for item in self.analyzed.ast.select]
        self.m_rows_out.inc()
        return [Record(self.output_schema, values)]


class StatefulSelectionOperator(Operator):
    """Selection whose WHERE calls SFUNs against one global state set.

    The state persists for the life of the operator (there are no windows
    in a selection query), mirroring a UDF-with-static-state inside the
    Gigascope selection operator.
    """

    kind_label = "stateful_selection"

    def __init__(
        self,
        analyzed: AnalyzedQuery,
        output_schema: StreamSchema,
        scalars: FunctionRegistry,
        stateful: StatefulLibrary,
        cost_model: CostModel = NULL_COST_MODEL,
        account: str = "stateful_selection",
    ) -> None:
        self.analyzed = analyzed
        self.output_schema = output_schema
        self._cost = cost_model
        self._account = account
        self._stateful = stateful
        self.states = stateful.instantiate_states(analyzed.state_names)
        self._ctx = _SelectionContext(scalars, stateful, self.states, cost_model, account)
        self._default_obs(account)

    def process(self, record: Record) -> List[Record]:
        self._ctx.record = record
        self._cost.charge(self._account, "tuple_read")
        self.m_in.inc()
        where = self.analyzed.ast.where
        if where is not None:
            self._cost.charge(self._account, "predicate_eval")
            if not evaluate(where, self._ctx):
                self.m_filtered.inc()
                return []
        values = [evaluate(item.expr, self._ctx) for item in self.analyzed.ast.select]
        self.m_rows_out.inc()
        return [Record(self.output_schema, values)]

    def checkpoint(self) -> Any:
        """Snapshot the global SFUN state set by state *name* (the state
        classes are closure-local and unpicklable — see
        ``StatefulState.checkpoint``)."""
        return {"states": self._stateful.checkpoint_states(self.states)}

    def restore(self, snapshot: Any) -> None:
        self.states = self._stateful.restore_states(snapshot["states"])
        self._ctx._states = self.states
