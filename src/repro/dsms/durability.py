"""Whole-pipeline durable resume: a write-ahead result journal.

The supervision layer (:mod:`repro.dsms.resilience`) survives *worker*
crashes; this module survives the death of the **entire process**.  A
:class:`DurableRunner` drives a :class:`~repro.dsms.runtime.Gigascope`
or a supervised :class:`~repro.dsms.sharded.ShardedGigascope` through a
record stream while journalling committed progress to disk:

* the journal (:class:`ResultJournal`) is an fsync'd, framed, CRC-checked
  append-only file — a torn tail (the normal state of a file whose
  writer was killed mid-append) is detected and discarded on read, so
  the last *complete* entry is always a consistent resume point;
* each commit entry pairs ``consumed`` (records of input fully applied)
  with the v2 checkpoint state that reflects exactly that prefix —
  serial runs embed :meth:`Gigascope.checkpoint` (which includes
  retained results and metrics), supervised runs embed every shard's
  ``(seq, blob)`` from :meth:`ShardSupervisor.checkpoint_all`;
* :meth:`DurableRunner.resume` restores the last committed entry into an
  *identically registered* instance, skips the committed input prefix,
  and replays the rest — producing byte-identical results and metrics to
  an uninterrupted run, because checkpoints are taken at batch
  boundaries where the pipeline is fully drained (serial ``feed`` drains
  the rings each batch; the supervisor's checkpoint request queues
  behind every shipped batch).

Commit granularity: serial runs commit at **window granularity** — a
commit is appended whenever a window closed (some retained query emitted
rows) since the last one — with an optional every-N-batches fallback.
Supervised runs commit every ``commit_interval`` rounds (window closes
happen inside the workers, invisible to the parent until checkpointed).

Load shedding and durable resume do not mix deterministically: shedding
decisions depend on wall-clock queue depths, so a resumed run may shed
differently than the original would have.  The runner refuses the
combination rather than producing a silently different answer.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from itertools import islice
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ExecutionError, StreamError, TraceCorruptError
from repro.dsms.runtime import Gigascope
from repro.streams.records import Record

_MAGIC = b"RPJRNL01"
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)

#: journal entry format version (independent of the checkpoint version,
#: which rides inside each entry as ``checkpoint_version``)
JOURNAL_VERSION = 1


class ResultJournal:
    """Fsync'd append-only journal of pickled commit entries.

    Layout: an 8-byte magic header, then frames of
    ``<u32 length><u32 crc32><payload>``.  Every append is flushed and
    fsync'd before returning, so an entry either exists completely or
    (if the process died mid-write) is detected as a torn tail and
    ignored by :meth:`read` — reads never propagate a partial entry.
    """

    def __init__(self, path: str, fresh: bool = False) -> None:
        """Open ``path`` for appending; ``fresh=True`` truncates first.

        Appending to an existing journal seeks past the last complete
        frame, so a torn tail from a previous crash is overwritten
        rather than permanently wedging the file.
        """
        self.path = path
        if fresh or not os.path.exists(path) or os.path.getsize(path) == 0:
            self._fh = open(path, "wb")
            self._fh.write(_MAGIC)
            self._flush()
        else:
            _, good_offset = self._scan(path)
            self._fh = open(path, "r+b")
            self._fh.truncate(good_offset)
            self._fh.seek(good_offset)

    def append(self, entry: Dict[str, Any]) -> None:
        payload = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        self._fh.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
        self._fh.write(payload)
        self._flush()

    def _flush(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "ResultJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- reading -----------------------------------------------------------

    @staticmethod
    def _scan(path: str) -> Tuple[List[Dict[str, Any]], int]:
        """Decode all complete entries; returns ``(entries, good_offset)``.

        ``good_offset`` is the byte offset just past the last complete
        frame — where a resuming writer should truncate-and-append.
        A bad magic header is unrecoverable and raises
        :class:`TraceCorruptError`; anything torn *after* the header is
        simply where the journal ends.
        """
        entries: List[Dict[str, Any]] = []
        with open(path, "rb") as fh:
            magic = fh.read(len(_MAGIC))
            if magic != _MAGIC:
                raise TraceCorruptError(
                    f"not a result journal: bad magic in {path!r}", offset=0
                )
            good = fh.tell()
            while True:
                header = fh.read(_FRAME.size)
                if len(header) < _FRAME.size:
                    break
                length, crc = _FRAME.unpack(header)
                payload = fh.read(length)
                if len(payload) < length or zlib.crc32(payload) != crc:
                    break  # torn or corrupt tail: journal ends here
                try:
                    entries.append(pickle.loads(payload))
                except Exception:
                    break  # CRC passed but payload undecodable: stop
                good = fh.tell()
        return entries, good

    @classmethod
    def read(cls, path: str) -> List[Dict[str, Any]]:
        """All complete entries, oldest first (torn tail silently cut)."""
        return cls._scan(path)[0]

    @classmethod
    def last_entry(cls, path: str) -> Optional[Dict[str, Any]]:
        entries = cls.read(path)
        return entries[-1] if entries else None


def _batches(records: Iterable[Record], size: int) -> Iterator[List[Record]]:
    batch: List[Record] = []
    for record in records:
        batch.append(record)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


class DurableRunner:
    """Drive an instance through a stream with journalled commits.

    ``instance`` is either a :class:`Gigascope` (serial) or a
    :class:`~repro.dsms.sharded.ShardedGigascope` with ``supervise=True``
    — the supervisor's checkpoint protocol is what makes a consistent
    mid-run snapshot of remote workers possible.

    Hooks (both optional, both for chaos tests and progress reporting):

    * ``on_batch(batch_no, consumed)`` — before each serial batch is fed
      / after each supervised round is shipped;
    * ``on_commit(consumed, kind)`` — after each journal entry is
      durable (``kind`` is ``"commit"`` or ``"final"``).  Killing the
      process inside this hook is exactly the crash the journal is
      designed to survive.
    """

    def __init__(
        self,
        instance: Any,
        journal_path: str,
        *,
        batch_size: int = 512,
        commit_interval: int = 4,
        window_commits: bool = True,
        on_batch: Optional[Callable[[int, int], None]] = None,
        on_commit: Optional[Callable[[int, str], None]] = None,
    ) -> None:
        self.instance = instance
        self.journal_path = journal_path
        self.batch_size = batch_size
        if commit_interval < 1:
            raise StreamError("commit_interval must be >= 1")
        self.commit_interval = commit_interval
        self.window_commits = window_commits
        self.on_batch = on_batch
        self.on_commit = on_commit
        self._serial = isinstance(instance, Gigascope)
        if not self._serial and not getattr(instance, "supervise", False):
            raise ExecutionError(
                "DurableRunner needs a serial Gigascope or a supervised"
                " ShardedGigascope; unsupervised process shards cannot be"
                " checkpointed mid-run"
            )
        if getattr(instance, "shed_threshold", None) is not None:
            raise ExecutionError(
                "durable resume and load shedding do not mix: shedding"
                " depends on wall-clock queue depths, so a resumed run"
                " could shed differently and silently diverge"
            )
        bad_states = self._non_checkpointable_states()
        if bad_states:
            raise ExecutionError(
                "durable resume needs checkpointable operator state, but"
                f" SFUN state(s) {bad_states} declare checkpointable=False;"
                " run without durable resume or make the state snapshottable"
            )

    def _non_checkpointable_states(self) -> List[str]:
        """SFUN states of registered queries that opt out of checkpoints.

        Static introspection: reads each operator's ``required_states``
        capability record against the instance's stateful library, so an
        unsafe deployment is refused at construction — the same verdict
        ``repro lint --target durable`` reports as rule SA305.
        """
        library = self.instance.registries.stateful
        bad: List[str] = []
        for handle in self.instance.query_handles():
            for state in getattr(handle.operator, "required_states", ()):
                if state not in bad and not library.checkpointable(state):
                    bad.append(state)
        return sorted(bad)

    # -- public API --------------------------------------------------------

    def run(self, records: Iterable[Record]) -> int:
        """Fresh run: truncate the journal, run, commit, finalize.

        Returns total records consumed.
        """
        journal = ResultJournal(self.journal_path, fresh=True)
        try:
            return self._run(journal, records, consumed=0, snapshot=None)
        finally:
            journal.close()

    def resume(self, records: Iterable[Record]) -> int:
        """Resume from the journal's last committed entry.

        ``records`` must be the *same* logical input as the original run
        (a replayable source: a trace file, a seeded generator); the
        committed prefix is skipped and the remainder replayed.  If the
        journal's last entry is ``final`` the run already completed: the
        final state is restored (results included) and no input is read.
        """
        entries = ResultJournal.read(self.journal_path)
        commits = [
            e for e in entries if e.get("kind") in ("commit", "final")
        ]
        if not commits:
            # Nothing durable yet (died before the first commit): the
            # resume degenerates to a fresh run.
            return self.run(records)
        last = commits[-1]
        self._check_entry(last)
        if last["kind"] == "final":
            self._restore_final(last)
            return last["consumed"]
        journal = ResultJournal(self.journal_path, fresh=False)
        try:
            return self._run(
                journal,
                records,
                consumed=last["consumed"],
                snapshot=last,
            )
        finally:
            journal.close()

    # -- shared plumbing ---------------------------------------------------

    def _mode(self) -> str:
        return "serial" if self._serial else "supervised"

    def _check_entry(self, entry: Dict[str, Any]) -> None:
        if entry.get("journal_version") != JOURNAL_VERSION:
            raise ExecutionError(
                "journal entry version"
                f" {entry.get('journal_version')!r} is not supported"
                f" (expected {JOURNAL_VERSION})"
            )
        if entry.get("mode") != self._mode():
            raise ExecutionError(
                f"journal was written by a {entry.get('mode')!r} run; this"
                f" runner drives a {self._mode()!r} instance"
            )

    def _entry(self, kind: str, consumed: int, **state: Any) -> Dict[str, Any]:
        return {
            "journal_version": JOURNAL_VERSION,
            "checkpoint_version": 2,
            "kind": kind,
            "mode": self._mode(),
            "consumed": consumed,
            **state,
        }

    def _commit(
        self, journal: ResultJournal, kind: str, consumed: int, **state: Any
    ) -> None:
        journal.append(self._entry(kind, consumed, **state))
        if self.on_commit is not None:
            self.on_commit(consumed, kind)

    def _skip(self, records: Iterable[Record], n: int) -> Iterator[Record]:
        iterator = iter(records)
        skipped = sum(1 for _ in islice(iterator, n))
        if skipped < n:
            raise ExecutionError(
                f"resume input is shorter than the committed prefix"
                f" ({skipped} < {n} records): the input must be the same"
                " replayable stream the original run consumed"
            )
        return iterator

    def _run(
        self,
        journal: ResultJournal,
        records: Iterable[Record],
        consumed: int,
        snapshot: Optional[Dict[str, Any]],
    ) -> int:
        if self._serial:
            return self._run_serial(journal, records, consumed, snapshot)
        return self._run_supervised(journal, records, consumed, snapshot)

    # -- serial ------------------------------------------------------------

    def _results_watermark(self) -> int:
        gs = self.instance
        return sum(
            len(gs.query(name).results)
            for name in gs._order
            if gs.query(name).keep_results
        )

    def _run_serial(
        self,
        journal: ResultJournal,
        records: Iterable[Record],
        consumed: int,
        snapshot: Optional[Dict[str, Any]],
    ) -> int:
        gs = self.instance
        if snapshot is not None:
            gs.restore(snapshot["snapshot"])
            records = self._skip(records, consumed)
        gs.start()
        watermark = self._results_watermark()
        batch_no = 0
        since_commit = 0
        try:
            for batch in _batches(records, self.batch_size):
                batch_no += 1
                if self.on_batch is not None:
                    self.on_batch(batch_no, consumed)
                consumed += gs.feed(batch)
                since_commit += 1
                grew = self._results_watermark()
                if (self.window_commits and grew > watermark) or (
                    since_commit >= self.commit_interval
                ):
                    # The rings are fully drained after feed(), so the
                    # checkpoint reflects exactly `consumed` input.
                    self._commit(
                        journal, "commit", consumed, snapshot=gs.checkpoint()
                    )
                    watermark = grew
                    since_commit = 0
        except BaseException:
            gs._session = None  # abandon without flushing
            raise
        gs.finish()
        self._commit(journal, "final", consumed, snapshot=gs.checkpoint())
        return consumed

    # -- supervised sharded ------------------------------------------------

    def _run_supervised(
        self,
        journal: ResultJournal,
        records: Iterable[Record],
        consumed: int,
        snapshot: Optional[Dict[str, Any]],
    ) -> int:
        sh = self.instance
        resume_state = None
        if snapshot is not None:
            resume_state = {
                int(shard): (seq, blob)
                for shard, (seq, blob) in snapshot["shards"].items()
            }
            if snapshot.get("routing") is not None:
                # The routing table (and the rebalancer's decision state)
                # rides every commit, so the replay routes — and keeps
                # re-deciding — under the same routing history.
                sh.restore_rebalance(snapshot["routing"])
            elif getattr(sh, "_rebalancer", None) is not None:
                raise ExecutionError(
                    "journal has no routing table but this instance"
                    " rebalances; resume with the same configuration as"
                    " the original run"
                )
            records = self._skip(records, consumed)
        start = consumed
        rounds = 0
        rebalancing = getattr(sh, "_rebalancer", None) is not None

        def on_round(supervisor: Any, total: int) -> None:
            nonlocal rounds
            rounds += 1
            if self.on_batch is not None:
                self.on_batch(rounds, start + total)
            if rounds % self.commit_interval == 0:
                shards = supervisor.checkpoint_all()
                extra = (
                    {"routing": sh.routing_snapshot()} if rebalancing else {}
                )
                self._commit(
                    journal, "commit", start + total, shards=shards, **extra
                )

        total = sh.run(
            records,
            batch_size=self.batch_size,
            on_round=on_round,
            resume_state=resume_state,
        )
        consumed = start + total
        self._commit(
            journal,
            "final",
            consumed,
            results={
                name: list(sh.query(name).results) for name in sh._order
            },
            metrics=sh.metrics.checkpoint(),
        )
        return consumed

    def _restore_final(self, entry: Dict[str, Any]) -> None:
        """Reinstate a completed run's results from its final entry."""
        if self._serial:
            self.instance.restore(entry["snapshot"])
            return
        sh = self.instance
        for name, rows in entry["results"].items():
            sh.query(name).results[:] = rows
        if entry.get("metrics"):
            sh.metrics.restore(entry["metrics"])
