"""Query-plan explanation: the EXPLAIN of this miniature DSMS.

``explain(plan)`` renders a human-readable description of a compiled
query — operator kind, window variables, supergroup key, aggregate and
superaggregate slots, required SFUN states, and the output schema — the
information an operator engineer needs to predict cost and verify that
the analyzer understood the query as intended.

``explain_instance(gigascope)`` renders the whole query DAG of a runtime
instance, including the auto-inserted low-level feeders and per-node cost
accounts when a cost model is attached.
"""

from __future__ import annotations

from typing import List

from repro.dsms.parser.planner import QueryPlan


def explain(plan: QueryPlan) -> str:
    """One compiled query, rendered."""
    lines: List[str] = []
    analyzed = plan.analyzed
    lines.append(f"Query kind : {plan.kind}")
    lines.append(f"Source     : {analyzed.ast.from_stream}")
    lines.append(
        "Output     : "
        + ", ".join(
            f"{attr.name}{' [ordered]' if attr.ordering.is_ordered else ''}"
            for attr in plan.output_schema
        )
    )
    if analyzed.ast.where is not None:
        lines.append(f"WHERE      : {analyzed.ast.where}")

    if plan.kind in ("selection", "stateful_selection"):
        if analyzed.state_names:
            lines.append(f"States     : {', '.join(analyzed.state_names)} (global)")
        return "\n".join(lines)

    lines.append(
        "Group by   : "
        + ", ".join(f"{item.name} = {item.expr}" for item in analyzed.group_by)
    )
    lines.append(
        "Window     : ("
        + ", ".join(analyzed.ordered_names)
        + ") — output on change"
    )
    if plan.kind == "sampling":
        spec = plan.sampling
        assert spec is not None
        lines.append(
            "Supergroup : ("
            + ", ".join(analyzed.supergroup_names)
            + ")"
        )
        if spec.aggregates:
            lines.append(
                "Aggregates : "
                + ", ".join(
                    f"[{node.slot}] {node}" for node in spec.aggregates
                )
            )
        if spec.superaggregates:
            lines.append(
                "Superaggs  : "
                + ", ".join(
                    f"[{sa.slot}] {sa.name}$({sa.value_expr}"
                    + (
                        ", " + ", ".join(map(str, sa.const_args))
                        if sa.const_args
                        else ""
                    )
                    + f") <{sa.feeds}-fed>"
                    for sa in spec.superaggregates
                )
            )
        if spec.state_names:
            lines.append(
                "States     : "
                + ", ".join(spec.state_names)
                + " (one per supergroup, carried across windows)"
            )
        if spec.cleaning_when is not None:
            lines.append(f"Clean when : {spec.cleaning_when}")
            lines.append(f"Clean by   : {spec.cleaning_by} (FALSE evicts)")
        if spec.having is not None:
            lines.append(f"HAVING     : {spec.having}")
    else:  # aggregation
        if analyzed.aggregates:
            lines.append(
                "Aggregates : "
                + ", ".join(f"[{node.slot}] {node}" for node in analyzed.aggregates)
            )
        if analyzed.ast.having is not None:
            lines.append(f"HAVING     : {analyzed.ast.having}")
    return "\n".join(lines)


def explain_instance(gigascope) -> str:
    """The whole query DAG of a runtime instance."""
    lines: List[str] = []
    for name in gigascope._order:
        handle = gigascope._queries[name]
        cycles = gigascope.cost.cycles(name)
        suffix = f"  [{cycles:,} cycles]" if cycles else ""
        lines.append(
            f"{handle.level:>4}  {name}  <- {handle.source}"
            f"  ({type(handle.operator).__name__}){suffix}"
        )
    return "\n".join(lines)
