"""Fixed-size ring buffer feeding low-level queries.

Paper §3: "Data from a source stream is fed to the low level queries from
a ring buffer without copying."  We model the buffer explicitly because the
performance experiments depend on *where* copies happen: reading from the
ring is free, but every tuple a low-level query forwards to a high-level
query costs a copy (the dominant cost in Fig 5's low-level selection
query).

The buffer is single-producer / multi-consumer.  Producers ``push``;
consumers attach with :meth:`subscribe` and receive every record pushed
after their subscription.  If a consumer lags more than ``capacity``
records behind, the oldest records are dropped and the consumer's drop
counter increments — the stream analogue of packet loss under overload.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from repro.errors import StreamError


class RingBuffer:
    """Bounded buffer with per-subscriber read cursors and drop accounting."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise StreamError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._slots: List[Any] = [None] * capacity
        self._head = 0  # sequence number of the next record to be written
        self._cursors: Dict[int, int] = {}
        self._drops: Dict[int, int] = {}
        self._next_subscriber = 0

    # -- producer side -----------------------------------------------------

    def push(self, record: Any) -> None:
        """Append one record, overwriting the oldest slot when full."""
        self._slots[self._head % self.capacity] = record
        self._head += 1

    def extend(self, records: Iterator[Any]) -> int:
        """Push every record from an iterator; return how many were pushed."""
        count = 0
        for record in records:
            self.push(record)
            count += 1
        return count

    # -- consumer side -----------------------------------------------------

    def subscribe(self) -> int:
        """Register a consumer; returns its subscriber id.

        The consumer starts at the current head (it sees only records pushed
        after subscription), matching how a query attaches to a live feed.
        """
        sid = self._next_subscriber
        self._next_subscriber += 1
        self._cursors[sid] = self._head
        self._drops[sid] = 0
        return sid

    def poll(self, subscriber_id: int, max_records: Optional[int] = None) -> List[Any]:
        """Return (and consume) available records for one subscriber."""
        if subscriber_id not in self._cursors:
            raise StreamError(f"unknown subscriber id {subscriber_id}")
        cursor = self._cursors[subscriber_id]
        oldest_available = max(0, self._head - self.capacity)
        if cursor < oldest_available:
            self._drops[subscriber_id] += oldest_available - cursor
            cursor = oldest_available
        end = self._head
        if max_records is not None:
            end = min(end, cursor + max_records)
        out = [self._slots[i % self.capacity] for i in range(cursor, end)]
        self._cursors[subscriber_id] = end
        return out

    def drops(self, subscriber_id: int) -> int:
        """How many records this subscriber lost to overwrites.

        Includes records already overwritten but not yet accounted by a
        :meth:`poll`, so overload is observable the moment it happens.
        """
        if subscriber_id not in self._drops:
            raise StreamError(f"unknown subscriber id {subscriber_id}")
        return self._drops[subscriber_id] + self._pending_drops(subscriber_id)

    def backlog(self, subscriber_id: int) -> int:
        """Records currently waiting (still readable) for this subscriber."""
        if subscriber_id not in self._cursors:
            raise StreamError(f"unknown subscriber id {subscriber_id}")
        return self._head - self._cursors[subscriber_id] - self._pending_drops(
            subscriber_id
        )

    def max_drops(self) -> int:
        """Worst drop count over all subscribers (0 with no subscribers).

        Subscribers read the same records, so the slowest consumer's drop
        counter is the stream's effective loss under overload.
        """
        return max((self.drops(sid) for sid in self._cursors), default=0)

    def max_backlog(self) -> int:
        """Worst backlog over all subscribers (0 with no subscribers).

        This is the overload signal the load-shedding admission check
        reads: when the slowest consumer is this far behind, pushing more
        records only converts backlog into drops.
        """
        return max((self.backlog(sid) for sid in self._cursors), default=0)

    def _pending_drops(self, subscriber_id: int) -> int:
        """Records overwritten past this subscriber's cursor since its
        last poll (the poll will fold them into the stored counter)."""
        oldest_available = max(0, self._head - self.capacity)
        return max(0, oldest_available - self._cursors[subscriber_id])

    def __len__(self) -> int:
        """Total records ever pushed (monotone)."""
        return self._head
