"""Deterministic cycle-cost model for reproducing the CPU-usage figures.

The paper reports CPU utilisation of queries running at 100,000 packets/s
on a dual 2.8 GHz server (Figs 5 and 6).  A Python reproduction cannot hit
those packet rates natively, so — per the substitution policy in DESIGN.md
— the *relative* CPU claims are reproduced through an explicit cost model:
every operator charges a deterministic number of "cycles" per logical
operation (tuple copy, hash probe, predicate evaluation, state update,
cleaning pass...), and CPU% is charged cycles divided by the cycles one
CPU offers over the stream-time span of the experiment.

The charge constants in :class:`CostBook` are calibrated so the model
reproduces the paper's anchor points:

* a low-level *selection* query forwarding every packet to a high-level
  query costs ≈ 60% of one CPU at 100 kpps (dominated by the per-tuple
  copy out of the ring buffer — paper §7.2);
* a low-level *basic subset-sum* query that forwards only ~1/25 of packets
  costs ≈ 4%;
* the full dynamic subset-sum sampling operator costs only 3–5% more CPU
  than a basic subset-sum selection at equal input.

What matters downstream is that the same book is used for every
configuration of an experiment, so ratios and orderings are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import CostModelError


@dataclass(frozen=True)
class CostBook:
    """Charge constants, in cycles per operation.

    Calibration anchor: at 100,000 pkts/s on a 2.8 GHz CPU there are
    28,000 cycles available per packet, so a 60% CPU low-level selection
    query spends ≈ 16,800 cycles per packet — almost all of it in the copy
    of the tuple from the ring buffer into the inter-query stream.
    """

    #: Copying one tuple from the ring buffer to a high-level query's input
    #: stream.  Dominant cost of naive low-level queries (paper Fig 5 text).
    tuple_copy: int = 16_000
    #: Reading a tuple in place (ring buffer or inter-query stream).
    tuple_read: int = 700
    #: Evaluating one scalar predicate / expression node.
    predicate_eval: int = 150
    #: One scalar function call (H(), UMAX(), ...).
    function_call: int = 80
    #: One stateful-function (SFUN) call, including the state-pointer pass.
    sfun_call: int = 250
    #: One hash-table probe (group, supergroup, or supergroup-group table).
    hash_probe: int = 150
    #: Inserting a new entry into a hash table.
    hash_insert: int = 900
    #: Deleting an entry from a hash table.
    hash_delete: int = 400
    #: Updating one aggregate or superaggregate value.
    aggregate_update: int = 100
    #: Per-group work during a cleaning pass (iterate + CLEANING BY eval).
    cleaning_per_group: int = 400
    #: Fixed overhead for starting one cleaning phase.
    cleaning_phase: int = 2_000
    #: Emitting one output tuple at a window boundary.
    output_tuple: int = 900
    #: Per-window fixed overhead (table swaps, state finalisation).
    window_flush: int = 3_000
    #: Dropping one tuple at admission under overload (load shedding).
    #: Deliberately cheap — the whole point of shedding is that refusing
    #: a tuple costs far less than processing it (paper §1: Gigascope
    #: degrades by dropping packets when the feed outruns the system).
    tuple_shed: int = 50
    #: Dead-lettering one malformed tuple at admission.  Slightly above
    #: shedding: the value vector is inspected (validation/coercion)
    #: before the tuple is refused into the quarantine stream.
    tuple_quarantined: int = 200
    #: Refusing one tuple at the serving edge because its tenant is over
    #: its cost quota (docs/SERVING.md).  Priced like overload shedding:
    #: a quota refusal is a counter bump, not per-value work.
    quota_shed: int = 50
    #: Skipping one tuple at the serving edge because the owning
    #: standing query's circuit breaker is open (poison-query
    #: quarantine, docs/SERVING.md).  Priced like the other serving-edge
    #: refusals: the tuple is counted and dropped, never evaluated.
    poison_skip: int = 50


class CostModel:
    """Accumulates charged cycles under named accounts.

    One account per query node ("low.selection", "high.sampling", ...);
    :meth:`cpu_percent` converts an account to the paper's CPU% metric.
    """

    def __init__(self, book: CostBook | None = None, clock_hz: float = 2.8e9) -> None:
        if clock_hz <= 0:
            raise CostModelError("clock_hz must be positive")
        self.book = book or CostBook()
        self.clock_hz = clock_hz
        self._accounts: Dict[str, int] = {}
        self.enabled = True

    # -- charging ------------------------------------------------------------

    def charge(self, account: str, operation: str, count: int = 1) -> None:
        """Charge ``count`` occurrences of ``operation`` to ``account``."""
        if not self.enabled:
            return
        try:
            unit = getattr(self.book, operation)
        except AttributeError:
            raise CostModelError(f"unknown cost operation {operation!r}") from None
        if count < 0:
            raise CostModelError("cannot charge a negative count")
        self._accounts[account] = self._accounts.get(account, 0) + unit * count

    def absorb(self, accounts: Dict[str, int]) -> None:
        """Merge raw cycle balances into this model.

        Used by the sharded runtime: each worker shard charges its own
        model, and the parent folds the per-shard balances back under
        the same account names so ``cpu_percent`` reports one aggregate
        figure per query regardless of the shard count.
        """
        if not self.enabled:
            return
        for account, cycles in accounts.items():
            if cycles < 0:
                raise CostModelError("cannot absorb a negative balance")
            self._accounts[account] = self._accounts.get(account, 0) + cycles

    # -- reporting -------------------------------------------------------------

    def cycles(self, account: str) -> int:
        """Total cycles charged to one account (0 if never charged)."""
        return self._accounts.get(account, 0)

    def total_cycles(self) -> int:
        return sum(self._accounts.values())

    def cpu_percent(self, account: str, stream_seconds: float) -> float:
        """CPU utilisation of one account over ``stream_seconds`` of input.

        Mirrors the paper's metric: fraction of a single CPU consumed while
        keeping up with the feed.
        """
        if stream_seconds <= 0:
            raise CostModelError("stream_seconds must be positive")
        available = self.clock_hz * stream_seconds
        return 100.0 * self.cycles(account) / available

    def accounts(self) -> Dict[str, int]:
        """A copy of all account balances."""
        return dict(self._accounts)

    def reset(self) -> None:
        self._accounts.clear()


class _NullCostModel(CostModel):
    """A cost model that ignores all charges (used when accounting is off).

    Charging is on the per-tuple hot path; tests and examples that don't
    measure CPU use this to avoid both the time and the memory.
    """

    def __init__(self) -> None:
        super().__init__()
        self.enabled = False

    def charge(self, account: str, operation: str, count: int = 1) -> None:  # noqa: D102
        return


#: Shared do-nothing cost model.
NULL_COST_MODEL = _NullCostModel()


# ---------------------------------------------------------------------------
# Group-table cardinality estimation (used by the plan lints, rule SA101)
# ---------------------------------------------------------------------------

#: Per-attribute distinct-value hints for the packet-header domain the
#: paper's feeds use.  ``uts`` is a nanosecond timestamp (every packet is
#: its own group — the subset-sum trick); addresses and ports span their
#: 16-bit synthetic ranges; anything unknown defaults conservatively.
ATTRIBUTE_CARDINALITY_HINTS: Dict[str, float] = {
    "time": 86_400.0,
    "uts": 1e9,
    "srcIP": 65_536.0,
    "destIP": 65_536.0,
    "srcPort": 65_536.0,
    "destPort": 65_536.0,
    "protocol": 256.0,
    "len": 1_500.0,
}

#: Distinct values assumed for a column with no hint.
DEFAULT_ATTRIBUTE_CARDINALITY = 10_000.0

#: Group-table entries above which rule SA101 warns (each entry holds the
#: group key plus its aggregate vector; 100k entries is the order of
#: magnitude where the paper starts cleaning instead of growing).
DEFAULT_GROUP_TABLE_BUDGET = 100_000.0


def estimate_expr_cardinality(expr: "Expr") -> float:  # noqa: F821
    """Estimated distinct values of a group-by expression.

    A coarse, order-of-magnitude model: column hints from
    :data:`ATTRIBUTE_CARDINALITY_HINTS`, bucketing division/modulo by a
    constant divides/caps the domain, and every other combinator keeps the
    largest input domain (hashes and arithmetic preserve distinctness at
    this resolution).
    """
    from repro.dsms.expr import BinaryOp, ColumnRef, Literal

    if isinstance(expr, Literal):
        return 1.0
    if isinstance(expr, ColumnRef):
        return ATTRIBUTE_CARDINALITY_HINTS.get(
            expr.name, DEFAULT_ATTRIBUTE_CARDINALITY
        )
    if isinstance(expr, BinaryOp) and expr.op in ("/", "%"):
        left = estimate_expr_cardinality(expr.left)
        divisor = expr.right
        if isinstance(divisor, Literal) and isinstance(divisor.value, (int, float)):
            k = abs(float(divisor.value))
            if k > 0:
                if expr.op == "/":
                    return max(1.0, left / k)
                return min(left, k)
        return left
    children = list(expr.children())
    if not children:
        return DEFAULT_ATTRIBUTE_CARDINALITY
    return max(estimate_expr_cardinality(child) for child in children)
