"""Shard supervision: crash detection, restart, replay and checkpoints.

A production DSMS keeps answering queries when a worker dies; this
module gives the sharded runtime that property.  The
:class:`ShardSupervisor` replaces the fire-and-forget worker handling of
``ShardedGigascope._run_processes`` with a monitored execution loop:

* **Failure detection** — three signals: the worker process is dead
  (``is_alive`` false, with a short grace period for a result already in
  the queue's feeder pipe), the worker is *stalled* (alive but no
  ack/checkpoint/result event for ``heartbeat_timeout`` seconds while it
  has outstanding work), or the result queue delivered an undecodable
  (corrupt) message — the sender of a corrupt message is expected to die
  and is then attributed by the liveness check.
* **Restart with capped exponential backoff** — each shard may restart
  ``max_restarts`` times; the Nth restart waits
  ``min(backoff_base * 2**(N-1), backoff_cap)`` seconds.  Workers are
  re-forked from the parent's pristine (never-started) shard instances,
  so a restarted worker begins from a clean slate.
* **Replay from a bounded journal** — the parent journals every routed
  batch per shard as ``(seq, records)``.  Recovery replays journalled
  batches in order, so a restarted shard deterministically reconstructs
  its state (all sampling state is seeded RNG + counters, so replay is
  exact).
* **Checkpoint when the journal is truncated** — every
  ``checkpoint_interval`` batches the parent asks the worker for an
  operator-state snapshot (:meth:`Gigascope.checkpoint`), and on the
  snapshot's arrival trims journal entries it covers.  The journal is
  thereby bounded by ``journal_capacity``; if it fills before a snapshot
  lands, shipping backpressures until the in-flight checkpoint arrives
  (the supervisor never discards a batch it might need — recoverability
  is an invariant, not best-effort).  Recovery then *restores* the
  snapshot and replays only the journal tail past it.
* **Graceful degradation** — when a shard's input queue stays full and
  its depth is at ``shed_threshold``, the supervisor drops the batch
  instead of blocking indefinitely: the shed records are counted in the
  :class:`SupervisionReport`, charged to the cost model as
  ``tuple_shed``, and the run keeps its latency at the cost of answer
  completeness (the paper's position: a degraded sample beats a stalled
  operator).

Epochs disambiguate incarnations: every worker message carries the
worker's epoch, and the parent ignores messages from epochs it has
already declared dead (a killed worker's queued acks must not be
mistaken for progress of its replacement).

Caveat: terminating a worker mid-``put`` can in principle corrupt a
queue (multiprocessing's documented limitation).  The supervisor only
terminates workers that have been silent for ``heartbeat_timeout``,
which in practice means blocked or sleeping, not mid-write; the corrupt
message path is handled anyway.
"""

from __future__ import annotations

import multiprocessing
import queue as _queue
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import ExecutionError
from repro.streams.records import Record

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dsms.sharded import ShardedGigascope


@dataclass
class SupervisionPolicy:
    """Tunables for shard supervision (defaults suit test-scale runs)."""

    #: restarts allowed per shard before the run fails permanently
    max_restarts: int = 2
    #: first-restart backoff in seconds; doubles per restart
    backoff_base: float = 0.05
    #: ceiling on the exponential backoff
    backoff_cap: float = 2.0
    #: seconds without any worker event before an alive worker counts as stalled
    heartbeat_timeout: float = 10.0
    #: request an operator-state checkpoint every N shipped batches
    checkpoint_interval: int = 8
    #: max journalled batches per shard before shipping backpressures
    journal_capacity: int = 64
    #: per-attempt queue put timeout (liveness is re-checked between attempts)
    put_timeout: float = 0.25
    #: overall ceiling on waiting for final results after finish
    result_timeout: float = 30.0
    #: grace for a dead worker's in-flight result to surface from the pipe
    result_grace: float = 1.0


@dataclass
class SupervisionReport:
    """What the supervisor did: per-shard counters plus a failure log."""

    restarts: Dict[int, int] = field(default_factory=dict)
    checkpoints: Dict[int, int] = field(default_factory=dict)
    recoveries_from_checkpoint: Dict[int, int] = field(default_factory=dict)
    replayed_batches: Dict[int, int] = field(default_factory=dict)
    shed_records: Dict[int, int] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)

    @property
    def total_restarts(self) -> int:
        return sum(self.restarts.values())

    @property
    def total_shed(self) -> int:
        return sum(self.shed_records.values())

    def as_dict(self) -> Dict[str, Any]:
        return {
            "restarts": dict(self.restarts),
            "checkpoints": dict(self.checkpoints),
            "recoveries_from_checkpoint": dict(self.recoveries_from_checkpoint),
            "replayed_batches": dict(self.replayed_batches),
            "shed_records": dict(self.shed_records),
            "failures": list(self.failures),
        }


def _bump(counter: Dict[int, int], shard: int, by: int = 1) -> None:
    counter[shard] = counter.get(shard, 0) + by


class _WorkerDied(Exception):
    """Internal: the worker targeted by a recovery put is gone."""


class ShardSupervisor:
    """Run one sharded query set under crash supervision.

    One supervisor drives one :meth:`ShardedGigascope.run` call; it is
    not reusable.  The owner provides the shard instances, routing and
    cost model; the supervisor owns worker lifecycle, the journal,
    checkpoints and the recovery protocol.
    """

    def __init__(
        self,
        owner: "ShardedGigascope",
        policy: Optional[SupervisionPolicy] = None,
        fault_plan: Any = None,
        shed_threshold: Optional[int] = None,
        resume_state: Optional[Dict[int, Tuple[int, bytes]]] = None,
    ) -> None:
        """``resume_state`` (per shard: ``(covered_seq, pickled snapshot)``,
        as produced by :meth:`checkpoint_all`) seeds the run from a prior
        process's committed checkpoints — the whole-pipeline durable
        resume of :mod:`repro.dsms.durability`.  Each listed shard starts
        by restoring its snapshot, and its sequence numbering continues
        from ``covered_seq`` so later checkpoints and journal trims line
        up; unlisted shards start fresh at seq 0."""
        self.owner = owner
        self.policy = policy or SupervisionPolicy()
        self.fault_plan = fault_plan
        self.shed_threshold = shed_threshold
        self._resume_state = dict(resume_state) if resume_state else {}
        self.report = SupervisionReport()
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise ExecutionError(
                "supervised execution needs the 'fork' start method (POSIX)"
            ) from exc
        shards = owner.shards
        self._out_queue = self._context.Queue()
        self._in_queues: List[Any] = [None] * shards
        self._workers: List[Any] = [None] * shards
        self._epoch = [0] * shards
        self._seq = [0] * shards
        #: per shard: journalled (seq, records) batches not yet checkpointed
        self._journal: List[List[Tuple[int, List[Record]]]] = [[] for _ in range(shards)]
        #: per shard: latest checkpoint as (covered seq, pickled snapshot)
        self._ckpt: List[Optional[Tuple[int, bytes]]] = [None] * shards
        self._last_ckpt_request = [0] * shards
        self._last_event = [0.0] * shards
        self._restarts = [0] * shards
        #: error text a worker reported before exiting (better than exitcode)
        self._pending_error: Dict[int, str] = {}
        #: per shard: (results, cost accounts, run report, metrics snapshot,
        #: trace events)
        self._results: Dict[int, tuple] = {}
        self._finishing = False
        #: monotonic time of the outstanding checkpoint request, per shard
        self._ckpt_request_time: Dict[int, float] = {}

    # -- observability ---------------------------------------------------------------

    def _count(self, name: str, shard: int, by: int = 1, help: str = "") -> None:
        """Bump a supervisor counter in the owner's registry.

        The ``supervisor_`` prefix matters: these series describe the
        *recovery machinery*, not the data, so determinism tests exclude
        them when comparing a faulted run against an unfaulted one.
        """
        self.owner.metrics.counter(name, help=help or None, shard=shard).inc(by)

    def _trace(self, kind: str, **fields: Any) -> None:
        if self.owner.trace.enabled:
            self.owner.trace.emit(kind, **fields)

    # -- main loop -------------------------------------------------------------------

    def run(
        self,
        records,
        batch_size: int,
        route: Dict[str, int],
        on_round=None,
    ) -> Tuple[int, Dict[int, Dict[str, List[Record]]], List[dict]]:
        """Ship all records under supervision; returns
        ``(total, shard_results, worker_run_reports)``.

        ``on_round(supervisor, total)`` is called after every shipped
        round — the durable runner's commit hook: at a commit point it
        calls :meth:`checkpoint_all` and journals the result.
        """
        for shard in range(self.owner.shards):
            self._spawn(shard)
        self._apply_resume_state()
        total = 0
        batch: List[Record] = []
        try:
            for record in records:
                batch.append(record)
                if len(batch) >= batch_size:
                    total += self._ship_round(batch, route)
                    batch = []
                    if on_round is not None:
                        on_round(self, total)
            if batch:
                total += self._ship_round(batch, route)
                if on_round is not None:
                    on_round(self, total)
            shard_results, reports = self._finish_and_collect()
            return total, shard_results, reports
        finally:
            for worker in self._workers:
                if worker is not None and worker.is_alive():
                    worker.terminate()
            for worker in self._workers:
                if worker is not None:
                    worker.join(timeout=5.0)

    def _apply_resume_state(self) -> None:
        """Restore shards from a prior process's committed checkpoints."""
        for shard, (seq, blob) in self._resume_state.items():
            self._ckpt[shard] = (seq, blob)
            self._seq[shard] = seq
            self._last_ckpt_request[shard] = seq
            self._trace(
                "shard_resume", shard=shard, seq=seq, bytes=len(blob)
            )
            try:
                self._put_or_die(shard, ("restore", seq, blob))
            except _WorkerDied as died:
                # _recover re-sends the restore from self._ckpt.
                self._recover(shard, str(died))

    def add_shard(self, shard: int) -> None:
        """Grow the supervised pool by one worker (elastic scale-up).

        The owner must already have grown ``_instances``/``shards``; this
        extends every per-shard structure and spawns the worker.  The new
        shard starts at seq 0 with no journal — it receives state only
        through :meth:`install_checkpoints` (a migration) or routed
        batches.
        """
        if shard != len(self._workers):
            raise ExecutionError(
                f"add_shard({shard}) out of order: pool has"
                f" {len(self._workers)} workers"
            )
        self._in_queues.append(None)
        self._workers.append(None)
        self._epoch.append(0)
        self._seq.append(0)
        self._journal.append([])
        self._ckpt.append(None)
        self._last_ckpt_request.append(0)
        self._last_event.append(0.0)
        self._restarts.append(0)
        self._trace("shard_added", shard=shard)
        self._count(
            "supervisor_shards_added_total", shard,
            help="workers added to the pool by elastic scale-up",
        )
        self._spawn(shard)

    def install_checkpoints(self, blobs: Dict[int, bytes]) -> None:
        """Atomically replace shard checkpoints after a state migration.

        Two phases, deliberately ordered: first *every* affected shard's
        parent-side ``_ckpt`` slot is rewritten (and its journal prefix
        dropped — the new snapshot covers everything shipped so far), and
        only then are the live workers told to restore.  A worker that
        crashes before, during, or after its restore is recovered by the
        normal :meth:`_recover` path, which reads the already-rewritten
        ``_ckpt`` — so a mid-migration crash can only land the run in the
        consistent post-migration state, never a half-migrated one.
        """
        for shard, blob in blobs.items():
            seq = self._seq[shard]
            self._ckpt[shard] = (seq, blob)
            self._last_ckpt_request[shard] = seq
            self._journal[shard] = [
                entry for entry in self._journal[shard] if entry[0] > seq
            ]
            self._trace(
                "shard_migrate", shard=shard, seq=seq, bytes=len(blob)
            )
            self._count(
                "supervisor_migrations_total", shard,
                help="post-migration checkpoints installed into workers",
            )
        for shard in blobs:
            seq, blob = self._ckpt[shard]
            # False return means recovery intervened — and _recover
            # already restored from the new _ckpt, so nothing to re-send.
            self._send_control(shard, ("restore", seq, blob))

    def checkpoint_all(self) -> Dict[int, Tuple[int, bytes]]:
        """Synchronously checkpoint every shard at its current sequence.

        Queue ordering guarantees the returned snapshots cover every
        batch shipped so far: the checkpoint request is enqueued behind
        them, so the worker processes them first.  Blocks (pumping events
        and running recovery as needed) until every shard's snapshot has
        arrived; a shard that recovers mid-request is re-asked, because
        the replacement's restored state never saw the request.  Shards
        that have received no batches are omitted — they have no state.
        """
        deadline = time.monotonic() + self.policy.result_timeout
        while True:
            pending = [
                shard
                for shard in range(self.owner.shards)
                if (self._ckpt[shard][0] if self._ckpt[shard] else 0)
                < self._seq[shard]
            ]
            if not pending:
                break
            for shard in pending:
                covered = self._ckpt[shard][0] if self._ckpt[shard] else 0
                if self._last_ckpt_request[shard] <= covered:
                    if self._send_control(
                        shard, ("checkpoint", self._seq[shard])
                    ):
                        self._last_ckpt_request[shard] = self._seq[shard]
                        self._ckpt_request_time[shard] = time.monotonic()
            if not self._pump_once(0.05):
                for shard in pending:
                    self._check_health(shard)
            if time.monotonic() > deadline:
                raise ExecutionError(
                    "checkpoint_all timed out after"
                    f" {self.policy.result_timeout}s waiting for shards"
                    f" {pending}"
                )
        return {
            shard: self._ckpt[shard]
            for shard in range(self.owner.shards)
            if self._ckpt[shard] is not None
        }

    def _ship_round(self, batch: List[Record], route: Dict[str, int]) -> int:
        for shard, bucket in enumerate(self.owner._split(batch, route)):
            if not bucket:
                continue
            self._seq[shard] += 1
            seq = self._seq[shard]
            self._journal[shard].append((seq, list(bucket)))
            self._send_batch(shard, seq, bucket)
            self._maybe_checkpoint(shard)
            self._enforce_journal_bound(shard)
        self._drain()
        return len(batch)

    # -- worker lifecycle ------------------------------------------------------------

    def _spawn(self, shard: int) -> None:
        from repro.dsms.sharded import _supervised_worker

        old_queue = self._in_queues[shard]
        if old_queue is not None:
            try:
                old_queue.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        in_queue = self._context.Queue(maxsize=self.owner.queue_depth)
        worker = self._context.Process(
            target=_supervised_worker,
            args=(
                shard,
                self._epoch[shard],
                self.owner._instances[shard],
                list(self.owner._order),
                in_queue,
                self._out_queue,
                self.fault_plan,
            ),
            daemon=True,
        )
        self._in_queues[shard] = in_queue
        self._workers[shard] = worker
        worker.start()
        self._last_event[shard] = time.monotonic()

    def _recover(self, shard: int, reason: str) -> None:
        """Restart one shard: backoff, re-fork, restore, replay.

        Loops (rather than recursing) if the replacement also dies during
        recovery; every attempt burns one unit of the restart budget.
        """
        while True:
            self.report.failures.append(
                f"shard {shard} epoch {self._epoch[shard]}: {reason}"
            )
            if self._restarts[shard] >= self.policy.max_restarts:
                raise ExecutionError(
                    f"shard {shard} failed permanently after"
                    f" {self._restarts[shard]} restart(s): {reason}"
                    f" (failure log: {'; '.join(self.report.failures)})"
                )
            self._restarts[shard] += 1
            _bump(self.report.restarts, shard)
            self._count(
                "supervisor_restarts_total", shard,
                help="shard worker restarts",
            )
            self._trace(
                "shard_restart",
                shard=shard,
                epoch=self._epoch[shard] + 1,
                reason=reason,
            )
            old = self._workers[shard]
            if old.is_alive():
                old.terminate()
            old.join(timeout=5.0)
            time.sleep(
                min(
                    self.policy.backoff_base * (2 ** (self._restarts[shard] - 1)),
                    self.policy.backoff_cap,
                )
            )
            self._epoch[shard] += 1
            self._pending_error.pop(shard, None)
            self._spawn(shard)
            checkpoint = self._ckpt[shard]
            self._last_ckpt_request[shard] = checkpoint[0] if checkpoint else 0
            try:
                start_seq = 0
                if checkpoint is not None:
                    ckpt_seq, blob = checkpoint
                    self._put_or_die(shard, ("restore", ckpt_seq, blob))
                    start_seq = ckpt_seq
                    _bump(self.report.recoveries_from_checkpoint, shard)
                replayed = 0
                for seq, bucket in self._journal[shard]:
                    if seq > start_seq:
                        self._put_or_die(shard, ("batch", seq, bucket))
                        _bump(self.report.replayed_batches, shard)
                        replayed += 1
                self._count(
                    "supervisor_replayed_batches_total", shard, by=replayed,
                    help="journalled batches replayed into restarted workers",
                )
                self._trace(
                    "shard_replay",
                    shard=shard,
                    epoch=self._epoch[shard],
                    from_seq=start_seq,
                    batches=replayed,
                    from_checkpoint=checkpoint is not None,
                )
                if self._finishing:
                    self._put_or_die(shard, ("finish",))
                return
            except _WorkerDied as died:
                reason = str(died)

    def _put_or_die(self, shard: int, message: tuple) -> None:
        while True:
            worker = self._workers[shard]
            if not worker.is_alive():
                raise _WorkerDied(
                    f"replacement worker (pid {worker.pid}) exited with code"
                    f" {worker.exitcode} during recovery"
                )
            try:
                self._in_queues[shard].put(message, timeout=self.policy.put_timeout)
                return
            except _queue.Full:
                self._drain()
                if (
                    time.monotonic() - self._last_event[shard]
                    > self.policy.heartbeat_timeout
                ):
                    worker.terminate()
                    worker.join(timeout=5.0)
                    raise _WorkerDied(
                        "replacement worker stalled during recovery replay"
                    ) from None

    def _failure_reason(self, shard: int) -> str:
        error = self._pending_error.pop(shard, None)
        if error is not None:
            return f"worker raised: {error}"
        worker = self._workers[shard]
        return (
            f"worker (pid {worker.pid}) exited with code {worker.exitcode}"
            " without reporting a result"
        )

    # -- shipping --------------------------------------------------------------------

    def _send_batch(self, shard: int, seq: int, bucket: List[Record]) -> None:
        while True:
            worker = self._workers[shard]
            if not worker.is_alive():
                # Recovery replays the journal, which already holds this
                # batch — nothing further to send here.
                self._recover(shard, self._failure_reason(shard))
                return
            try:
                self._in_queues[shard].put(("batch", seq, bucket), timeout=self.policy.put_timeout)
                return
            except _queue.Full:
                if (
                    self.shed_threshold is not None
                    and self._queue_depth(shard) >= self.shed_threshold
                ):
                    entry = self._journal[shard].pop()
                    assert entry[0] == seq
                    self._shed(shard, bucket)
                    return
                self._drain()
                if self._check_stalled(shard):
                    return

    def _send_control(self, shard: int, message: tuple) -> bool:
        """Send a non-batch message; returns False if recovery intervened
        (recovery resets control bookkeeping, so nothing is re-sent)."""
        while True:
            worker = self._workers[shard]
            if not worker.is_alive():
                self._recover(shard, self._failure_reason(shard))
                return False
            try:
                self._in_queues[shard].put(message, timeout=self.policy.put_timeout)
                return True
            except _queue.Full:
                self._drain()
                if self._check_stalled(shard):
                    return False

    def _check_stalled(self, shard: int) -> bool:
        """Terminate-and-recover a silent worker; True if recovery ran."""
        if time.monotonic() - self._last_event[shard] <= self.policy.heartbeat_timeout:
            return False
        worker = self._workers[shard]
        worker.terminate()
        worker.join(timeout=5.0)
        self._recover(
            shard,
            f"stalled: no event for {self.policy.heartbeat_timeout}s"
            " with outstanding work",
        )
        return True

    def _maybe_checkpoint(self, shard: int) -> None:
        covered = self._ckpt[shard][0] if self._ckpt[shard] else 0
        outstanding = max(self._last_ckpt_request[shard], covered)
        if self._seq[shard] - outstanding >= self.policy.checkpoint_interval:
            if self._send_control(shard, ("checkpoint", self._seq[shard])):
                self._last_ckpt_request[shard] = self._seq[shard]
                self._ckpt_request_time[shard] = time.monotonic()

    def _enforce_journal_bound(self, shard: int) -> None:
        """Backpressure until an in-flight checkpoint trims the journal."""
        while len(self._journal[shard]) > self.policy.journal_capacity:
            covered = self._ckpt[shard][0] if self._ckpt[shard] else 0
            if self._last_ckpt_request[shard] <= covered:
                if self._send_control(shard, ("checkpoint", self._seq[shard])):
                    self._last_ckpt_request[shard] = self._seq[shard]
                    self._ckpt_request_time[shard] = time.monotonic()
                continue
            if not self._pump_once(0.05):
                self._check_health(shard)

    def _check_health(self, shard: int) -> None:
        worker = self._workers[shard]
        if not worker.is_alive():
            self._recover(shard, self._failure_reason(shard))
        else:
            self._check_stalled(shard)

    def _shed(self, shard: int, bucket: List[Record]) -> None:
        _bump(self.report.shed_records, shard, len(bucket))
        self._count(
            "supervisor_shed_records_total", shard, by=len(bucket),
            help="records dropped at a saturated shard input queue",
        )
        self._trace(
            "shard_shed",
            shard=shard,
            epoch=self._epoch[shard],
            records=len(bucket),
        )
        per_stream: Dict[str, int] = {}
        for record in bucket:
            name = record.schema.name
            per_stream[name] = per_stream.get(name, 0) + 1
        for stream, count in per_stream.items():
            self.owner.cost.charge(stream, "tuple_shed", count)

    def _queue_depth(self, shard: int) -> int:
        try:
            return self._in_queues[shard].qsize()
        except NotImplementedError:  # pragma: no cover - macOS
            # No depth introspection: a full queue counts as at-threshold.
            return self.shed_threshold or 0

    # -- event pump ------------------------------------------------------------------

    def _drain(self) -> None:
        while self._pump_once(0.0):
            pass

    def _pump_once(self, timeout: float) -> bool:
        """Process at most one worker event; True if anything arrived."""
        try:
            if timeout <= 0:
                message = self._out_queue.get_nowait()
            else:
                message = self._out_queue.get(timeout=timeout)
        except _queue.Empty:
            return False
        except Exception as exc:
            # A message that failed to unpickle: the queue survives, the
            # broken sender dies and the liveness check attributes it.
            self.report.failures.append(
                f"result queue delivered an undecodable message: {exc!r}"
            )
            return True
        kind, shard, epoch = message[0], message[1], message[2]
        if epoch != self._epoch[shard]:
            return True  # stale event from a dead incarnation
        self._last_event[shard] = time.monotonic()
        if kind == "ack":
            pass  # the event itself is the heartbeat
        elif kind == "ckpt":
            seq, blob = message[3], message[4]
            self._ckpt[shard] = (seq, blob)
            _bump(self.report.checkpoints, shard)
            self._count(
                "supervisor_checkpoints_total", shard,
                help="shard checkpoints received",
            )
            self.owner.metrics.histogram(
                "supervisor_checkpoint_bytes",
                help="pickled size of shard checkpoints",
                shard=shard,
            ).observe(len(blob))
            requested = self._ckpt_request_time.pop(shard, None)
            if requested is not None:
                self.owner.metrics.histogram(
                    "supervisor_checkpoint_seconds",
                    help="request-to-arrival latency of shard checkpoints",
                    shard=shard,
                ).observe(time.monotonic() - requested)
            self._trace(
                "shard_checkpoint",
                shard=shard,
                epoch=epoch,
                seq=seq,
                bytes=len(blob),
            )
            self._journal[shard] = [
                entry for entry in self._journal[shard] if entry[0] > seq
            ]
        elif kind == "result":
            self._results[shard] = (
                message[3], message[4], message[5], message[6], message[7]
            )
        elif kind == "error":
            self._pending_error[shard] = message[3]
        return True

    # -- completion ------------------------------------------------------------------

    def _finish_and_collect(
        self,
    ) -> Tuple[Dict[int, Dict[str, List[Record]]], List[dict]]:
        self._finishing = True
        for shard in range(self.owner.shards):
            self._send_control(shard, ("finish",))
        deadline = time.monotonic() + self.policy.result_timeout
        dead_since: Dict[int, float] = {}
        while len(self._results) < self.owner.shards:
            if self._pump_once(0.05):
                continue
            now = time.monotonic()
            for shard in range(self.owner.shards):
                if shard in self._results:
                    dead_since.pop(shard, None)
                    continue
                worker = self._workers[shard]
                if not worker.is_alive():
                    since = dead_since.setdefault(shard, now)
                    if now - since >= self.policy.result_grace:
                        dead_since.pop(shard, None)
                        self._recover(shard, self._failure_reason(shard))
                elif now - self._last_event[shard] > self.policy.heartbeat_timeout:
                    worker.terminate()
                    worker.join(timeout=5.0)
                    self._recover(
                        shard,
                        "stalled while finishing: no event for"
                        f" {self.policy.heartbeat_timeout}s",
                    )
            if time.monotonic() > deadline:
                missing = sorted(set(range(self.owner.shards)) - set(self._results))
                raise ExecutionError(
                    f"supervised run timed out after {self.policy.result_timeout}s"
                    f" waiting for shards {missing}"
                    f" (failure log: {'; '.join(self.report.failures) or 'none'})"
                )
        shard_results: Dict[int, Dict[str, List[Record]]] = {}
        reports: List[dict] = []
        for shard in range(self.owner.shards):
            results, accounts, report, metrics_snap, trace_events = self._results[shard]
            shard_results[shard] = results
            self.owner.cost.absorb(accounts)
            reports.append(report)
            self.owner._absorb_shard_obs(shard, metrics_snap, trace_events)
        return shard_results, reports
