"""Scalar function registry and the built-in Gigascope-style functions.

Queries reference scalar functions by name (``UMAX(sum(len), ssthreshold())``,
``H(destIP)``).  A :class:`FunctionRegistry` maps names to Python callables;
the analyzer classifies a parsed call as scalar when the name is registered
here (and not as an aggregate or stateful function).

The built-ins include the hash family used by min-hash queries.  ``H`` is a
deterministic 32-bit mixer (a Fibonacci/murmur-style finalizer), *not*
Python's randomised ``hash``, so signatures are stable across runs and
processes — a property the min-hash resemblance tests rely on.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Sequence

from repro.errors import RegistryError

ScalarFn = Callable[..., Any]


class FunctionRegistry:
    """Name -> callable registry for scalar functions."""

    def __init__(self) -> None:
        self._functions: Dict[str, ScalarFn] = {}
        self._deterministic: Dict[str, bool] = {}

    def register(
        self,
        name: str,
        fn: ScalarFn,
        replace: bool = False,
        deterministic: bool = True,
    ) -> None:
        """Register ``fn`` under ``name``.

        ``deterministic=False`` marks functions whose result can differ
        between calls on equal arguments (clocks, RNGs).  The static
        analyzer uses the flag: such functions are unsafe in GROUP BY
        (rule SA006) and disqualify a WHERE conjunct from prefilter
        pushdown (rule SA102).
        """
        if not replace and name in self._functions:
            raise RegistryError(f"scalar function {name!r} already registered")
        self._functions[name] = fn
        self._deterministic[name] = deterministic

    def is_deterministic(self, name: str) -> bool:
        """Whether ``name`` was registered as deterministic (default True)."""
        return self._deterministic.get(name, True)

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def get(self, name: str) -> ScalarFn:
        try:
            return self._functions[name]
        except KeyError:
            raise RegistryError(f"unknown scalar function {name!r}") from None

    def call(self, name: str, args: Sequence[Any]) -> Any:
        return self.get(name)(*args)

    def names(self) -> Sequence[str]:
        return sorted(self._functions)

    def copy(self) -> "FunctionRegistry":
        clone = FunctionRegistry()
        clone._functions = dict(self._functions)
        clone._deterministic = dict(self._deterministic)
        return clone


# ---------------------------------------------------------------------------
# Built-in functions
# ---------------------------------------------------------------------------

_HASH_MULTIPLIER = 0x9E3779B1  # 2^32 / golden ratio, odd
_MASK32 = 0xFFFFFFFF


def hash32(value: int, seed: int = 0) -> int:
    """Deterministic 32-bit hash of an integer (murmur-style finalizer).

    Distinct seeds give (approximately) independent hash functions, which
    is how min-hash signatures get their n hash functions.
    """
    h = (int(value) ^ (seed * 0x85EBCA6B)) & _MASK32
    h = (h * _HASH_MULTIPLIER) & _MASK32
    h ^= h >> 15
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def hash_to_unit(value: int, seed: int = 0) -> float:
    """Hash an integer to the unit interval [0, 1)."""
    return hash32(value, seed) / 4294967296.0


def _umax(a: Any, b: Any) -> Any:
    """Paper §6.1: returns the maximum of the two values."""
    return a if a >= b else b


def _umin(a: Any, b: Any) -> Any:
    return a if a <= b else b


def _ip_str(addr: int) -> str:
    """Render a 32-bit address in dotted-quad form (debug/report output)."""
    addr = int(addr) & _MASK32
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def default_function_registry() -> FunctionRegistry:
    """Registry with the built-ins every query can use."""
    registry = FunctionRegistry()
    registry.register("UMAX", _umax)
    registry.register("UMIN", _umin)
    registry.register("H", hash32)
    registry.register("HU", hash_to_unit)
    registry.register("abs", abs)
    registry.register("sqrt", math.sqrt)
    registry.register("floor", lambda x: math.floor(x))
    registry.register("ceil", lambda x: math.ceil(x))
    registry.register("ip_str", _ip_str)
    return registry
