"""Planner: turn an analyzed query into an executable specification.

The planner's jobs:

* split group-by variables into window (ordered) / supergroup / plain
  index sets the operator can evaluate positionally;
* resolve each superaggregate into a factory call specification (value
  expression + constant arguments) and determine its feeding discipline
  by instantiating a prototype;
* derive the output stream schema from the SELECT list (the first
  selected ordered group-by variable keeps its ``increasing`` marker so
  downstream queries can window on it);
* choose the operator kind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import PlanningError
from repro.dsms.expr import (
    AggregateCall,
    ColumnRef,
    Expr,
    Literal,
    Star,
    SuperAggregateCall,
    column_names,
)
from repro.dsms.parser.analyzer import AnalyzedQuery, Registries, analyze
from repro.dsms.parser.ast import GroupByItem, QueryAst, SelectItem
from repro.dsms.parser.parser import parse_query
from repro.streams.schema import Attribute, Ordering, StreamSchema


@dataclass(frozen=True)
class SuperAggSpec:
    """Instantiation recipe for one superaggregate slot."""

    name: str
    value_expr: Expr
    const_args: Tuple[Any, ...]
    feeds: str  # "group" | "tuple"
    slot: int


@dataclass
class SamplingSpec:
    """Everything the sampling operator needs to run one query."""

    analyzed: AnalyzedQuery
    select_items: Tuple[SelectItem, ...]
    where: Optional[Expr]
    having: Optional[Expr]
    cleaning_when: Optional[Expr]
    cleaning_by: Optional[Expr]
    group_by: Tuple[GroupByItem, ...]
    ordered_indices: Tuple[int, ...]
    supergroup_indices: Tuple[int, ...]
    nonordered_supergroup_indices: Tuple[int, ...]
    aggregates: Tuple[AggregateCall, ...]
    superaggregates: Tuple[SuperAggSpec, ...]
    state_names: Tuple[str, ...]
    output_schema: StreamSchema

    @property
    def group_by_names(self) -> Tuple[str, ...]:
        return tuple(item.name for item in self.group_by)


@dataclass
class QueryPlan:
    """A planned query, ready for operator construction."""

    kind: str  # "sampling" | "aggregation" | "selection" | "stateful_selection"
    analyzed: AnalyzedQuery
    sampling: Optional[SamplingSpec]
    output_schema: StreamSchema
    registries: Registries


_OUTPUT_NAME_FALLBACK = "col{index}"


def _output_schema(
    query_name: str,
    select_items: Sequence[SelectItem],
    ordered_names: Sequence[str],
) -> StreamSchema:
    attributes: List[Attribute] = []
    used: set = set()
    ordered_marked = False
    for index, item in enumerate(select_items):
        if item.alias:
            name = item.alias
        elif isinstance(item.expr, ColumnRef):
            name = item.expr.name
        else:
            name = _OUTPUT_NAME_FALLBACK.format(index=index)
        base, suffix = name, 1
        while name in used:
            suffix += 1
            name = f"{base}_{suffix}"
        used.add(name)
        ordering = Ordering.NONE
        if (
            not ordered_marked
            and isinstance(item.expr, ColumnRef)
            and item.expr.name in ordered_names
        ):
            ordering = Ordering.INCREASING
            ordered_marked = True
        attributes.append(Attribute(name, "int", ordering))
    return StreamSchema(query_name, attributes)


def _superagg_specs(
    analyzed: AnalyzedQuery, registries: Registries
) -> Tuple[SuperAggSpec, ...]:
    specs: List[SuperAggSpec] = []
    group_by_names = set(analyzed.group_by_names)
    for node in analyzed.superaggregates:
        # The paper writes both count_distinct$(*) and count_distinct$():
        # an empty argument list means "no per-group value", i.e. Star.
        value_expr = node.args[0] if node.args else Star()
        const_args: List[Any] = []
        for arg in node.args[1:]:
            if not isinstance(arg, Literal):
                raise PlanningError(
                    f"superaggregate {node.name}$: arguments after the first"
                    f" must be constants, got {arg}"
                )
            const_args.append(arg.value)
        prototype = registries.superaggregates.create(node.name, const_args)
        if prototype.feeds == "group" and not isinstance(value_expr, Star):
            bad = [c for c in column_names(value_expr) if c not in group_by_names]
            if bad:
                raise PlanningError(
                    f"group-fed superaggregate {node.name}$ may only reference"
                    f" group-by variables; {bad} are not"
                )
        specs.append(
            SuperAggSpec(
                name=node.name,
                value_expr=value_expr,
                const_args=tuple(const_args),
                feeds=prototype.feeds,
                slot=node.slot,
            )
        )
    return tuple(specs)


def plan(analyzed: AnalyzedQuery, registries: Registries, query_name: str = "Q") -> QueryPlan:
    """Build a :class:`QueryPlan` from an analyzed query."""
    if analyzed.kind in ("selection", "stateful_selection"):
        # A selection passes source columns through unchanged, so ordered
        # attributes of the source stay ordered in the output (downstream
        # queries window on them — e.g. the auto-inserted low-level feeder).
        source_ordered = [a.name for a in analyzed.schema.ordered_attributes()]
        output_schema = _output_schema(
            query_name, analyzed.ast.select, source_ordered
        )
        return QueryPlan(
            kind=analyzed.kind,
            analyzed=analyzed,
            sampling=None,
            output_schema=output_schema,
            registries=registries,
        )

    output_schema = _output_schema(
        query_name, analyzed.ast.select, analyzed.ordered_names
    )

    group_by_names = list(analyzed.group_by_names)
    ordered_indices = tuple(
        group_by_names.index(name) for name in analyzed.ordered_names
    )
    supergroup_indices = tuple(
        group_by_names.index(name) for name in analyzed.supergroup_names
    )
    nonordered = tuple(
        group_by_names.index(name)
        for name in analyzed.supergroup_names
        if name not in analyzed.ordered_names
    )

    spec = SamplingSpec(
        analyzed=analyzed,
        select_items=analyzed.ast.select,
        where=analyzed.ast.where,
        having=analyzed.ast.having,
        cleaning_when=analyzed.ast.cleaning_when,
        cleaning_by=analyzed.ast.cleaning_by,
        group_by=analyzed.group_by,
        ordered_indices=ordered_indices,
        supergroup_indices=supergroup_indices,
        nonordered_supergroup_indices=nonordered,
        aggregates=analyzed.aggregates,
        superaggregates=_superagg_specs(analyzed, registries),
        state_names=analyzed.state_names,
        output_schema=output_schema,
    )
    return QueryPlan(
        kind=analyzed.kind,
        analyzed=analyzed,
        sampling=spec,
        output_schema=output_schema,
        registries=registries,
    )


def compile_query(
    text: str,
    registries: Registries,
    query_name: str = "Q",
    strict: bool = False,
) -> QueryPlan:
    """Parse, analyze and plan a query text in one call.

    ``strict`` runs the full static analyzer first and refuses to compile
    a query with *any* diagnostic — lint warnings included — so sampling
    mistakes (unbounded group tables, constant CLEANING predicates, ...)
    fail at submission instead of silently running wrong.
    """
    if strict:
        from repro.analysis.linter import lint_query

        result = lint_query(text, registries, filename=query_name)
        if result.diagnostics:
            from repro.errors import AnalysisError

            raise AnalysisError(
                f"strict compilation of {query_name!r} failed:\n"
                + result.render()
            )
    ast = parse_query(text)
    analyzed = analyze(ast, registries)
    assert analyzed is not None  # raise mode always returns or raises
    return plan(analyzed, registries, query_name=query_name)
