"""Planner: turn an analyzed query into an executable specification.

The planner's jobs:

* split group-by variables into window (ordered) / supergroup / plain
  index sets the operator can evaluate positionally;
* resolve each superaggregate into a factory call specification (value
  expression + constant arguments) and determine its feeding discipline
  by instantiating a prototype;
* derive the output stream schema from the SELECT list (the first
  selected ordered group-by variable keeps its ``increasing`` marker so
  downstream queries can window on it);
* choose the operator kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import PlanningError
from repro.dsms.expr import (
    AggregateCall,
    ColumnRef,
    Expr,
    Literal,
    Star,
    SuperAggregateCall,
    column_names,
)
from repro.dsms.parser.analyzer import AnalyzedQuery, Registries, analyze
from repro.dsms.parser.ast import GroupByItem, QueryAst, SelectItem
from repro.dsms.parser.parser import parse_query
from repro.streams.schema import Attribute, Ordering, StreamSchema


@dataclass(frozen=True)
class SuperAggSpec:
    """Instantiation recipe for one superaggregate slot."""

    name: str
    value_expr: Expr
    const_args: Tuple[Any, ...]
    feeds: str  # "group" | "tuple"
    slot: int


@dataclass
class SamplingSpec:
    """Everything the sampling operator needs to run one query."""

    analyzed: AnalyzedQuery
    select_items: Tuple[SelectItem, ...]
    where: Optional[Expr]
    having: Optional[Expr]
    cleaning_when: Optional[Expr]
    cleaning_by: Optional[Expr]
    group_by: Tuple[GroupByItem, ...]
    ordered_indices: Tuple[int, ...]
    supergroup_indices: Tuple[int, ...]
    nonordered_supergroup_indices: Tuple[int, ...]
    aggregates: Tuple[AggregateCall, ...]
    superaggregates: Tuple[SuperAggSpec, ...]
    state_names: Tuple[str, ...]
    output_schema: StreamSchema

    @property
    def group_by_names(self) -> Tuple[str, ...]:
        return tuple(item.name for item in self.group_by)


@dataclass
class QueryPlan:
    """A planned query, ready for operator construction.

    ``annotations`` carries analysis results attached after planning —
    the sampling-soundness pass stores its per-edge facts and estimator
    verdicts under ``"sampling"`` (see
    :func:`repro.analysis.sampling_algebra.analyze_sampling`) so later
    layers can read them without re-running the analysis.
    """

    kind: str  # "sampling" | "aggregation" | "selection" | "stateful_selection"
    analyzed: AnalyzedQuery
    sampling: Optional[SamplingSpec]
    output_schema: StreamSchema
    registries: Registries
    annotations: Dict[str, Any] = field(default_factory=dict)


_OUTPUT_NAME_FALLBACK = "col{index}"


def _output_schema(
    query_name: str,
    select_items: Sequence[SelectItem],
    ordered_names: Sequence[str],
) -> StreamSchema:
    attributes: List[Attribute] = []
    used: set = set()
    ordered_marked = False
    for index, item in enumerate(select_items):
        if item.alias:
            name = item.alias
        elif isinstance(item.expr, ColumnRef):
            name = item.expr.name
        else:
            name = _OUTPUT_NAME_FALLBACK.format(index=index)
        base, suffix = name, 1
        while name in used:
            suffix += 1
            name = f"{base}_{suffix}"
        used.add(name)
        ordering = Ordering.NONE
        if (
            not ordered_marked
            and isinstance(item.expr, ColumnRef)
            and item.expr.name in ordered_names
        ):
            ordering = Ordering.INCREASING
            ordered_marked = True
        attributes.append(Attribute(name, "int", ordering))
    return StreamSchema(query_name, attributes)


def _superagg_specs(
    analyzed: AnalyzedQuery, registries: Registries
) -> Tuple[SuperAggSpec, ...]:
    specs: List[SuperAggSpec] = []
    group_by_names = set(analyzed.group_by_names)
    for node in analyzed.superaggregates:
        # The paper writes both count_distinct$(*) and count_distinct$():
        # an empty argument list means "no per-group value", i.e. Star.
        value_expr = node.args[0] if node.args else Star()
        const_args: List[Any] = []
        for arg in node.args[1:]:
            if not isinstance(arg, Literal):
                raise PlanningError(
                    f"superaggregate {node.name}$: arguments after the first"
                    f" must be constants, got {arg}"
                )
            const_args.append(arg.value)
        prototype = registries.superaggregates.create(node.name, const_args)
        if prototype.feeds == "group" and not isinstance(value_expr, Star):
            bad = [c for c in column_names(value_expr) if c not in group_by_names]
            if bad:
                raise PlanningError(
                    f"group-fed superaggregate {node.name}$ may only reference"
                    f" group-by variables; {bad} are not"
                )
        specs.append(
            SuperAggSpec(
                name=node.name,
                value_expr=value_expr,
                const_args=tuple(const_args),
                feeds=prototype.feeds,
                slot=node.slot,
            )
        )
    return tuple(specs)


def plan(analyzed: AnalyzedQuery, registries: Registries, query_name: str = "Q") -> QueryPlan:
    """Build a :class:`QueryPlan` from an analyzed query."""
    if analyzed.kind in ("selection", "stateful_selection"):
        # A selection passes source columns through unchanged, so ordered
        # attributes of the source stay ordered in the output (downstream
        # queries window on them — e.g. the auto-inserted low-level feeder).
        source_ordered = [a.name for a in analyzed.schema.ordered_attributes()]
        output_schema = _output_schema(
            query_name, analyzed.ast.select, source_ordered
        )
        return QueryPlan(
            kind=analyzed.kind,
            analyzed=analyzed,
            sampling=None,
            output_schema=output_schema,
            registries=registries,
        )

    output_schema = _output_schema(
        query_name, analyzed.ast.select, analyzed.ordered_names
    )

    group_by_names = list(analyzed.group_by_names)
    ordered_indices = tuple(
        group_by_names.index(name) for name in analyzed.ordered_names
    )
    supergroup_indices = tuple(
        group_by_names.index(name) for name in analyzed.supergroup_names
    )
    nonordered = tuple(
        group_by_names.index(name)
        for name in analyzed.supergroup_names
        if name not in analyzed.ordered_names
    )

    spec = SamplingSpec(
        analyzed=analyzed,
        select_items=analyzed.ast.select,
        where=analyzed.ast.where,
        having=analyzed.ast.having,
        cleaning_when=analyzed.ast.cleaning_when,
        cleaning_by=analyzed.ast.cleaning_by,
        group_by=analyzed.group_by,
        ordered_indices=ordered_indices,
        supergroup_indices=supergroup_indices,
        nonordered_supergroup_indices=nonordered,
        aggregates=analyzed.aggregates,
        superaggregates=_superagg_specs(analyzed, registries),
        state_names=analyzed.state_names,
        output_schema=output_schema,
    )
    return QueryPlan(
        kind=analyzed.kind,
        analyzed=analyzed,
        sampling=spec,
        output_schema=output_schema,
        registries=registries,
    )


# ---------------------------------------------------------------------------
# Partition-key inference (sharded execution support)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PartitionInfo:
    """How one planned query constrains hash-partitioned execution.

    The sharded runtime splits a source stream across shards by hashing
    one *partition column*; a query is shard-safe when every pair of
    tuples that can interact through operator state lands on the same
    shard.  ``candidates`` are the source-column names that guarantee
    this for the query (``None`` means the query is stateless across
    partitions and accepts any partition column; an empty tuple means
    the query cannot be sharded at all — ``reason`` says why).

    ``passthrough`` lists output columns that remain *colocated* after
    this query: if the stream is partitioned on column ``c`` and ``c``
    is in ``passthrough``, all output rows sharing a ``c`` value are
    produced on one shard, so a downstream query may partition on it.
    """

    candidates: Optional[Tuple[str, ...]]
    passthrough: Tuple[str, ...]
    reason: str = ""


def _identity_output_names(select_items: Sequence[SelectItem]) -> List[str]:
    """Output columns that are a bare source column under its own name."""
    names = []
    for item in select_items:
        if isinstance(item.expr, ColumnRef) and (
            item.alias is None or item.alias == item.expr.name
        ):
            names.append(item.expr.name)
    return names


def _bare_nonordered_groupby(
    items: Sequence[GroupByItem], ordered_names: Sequence[str]
) -> List[str]:
    """Non-ordered group-by variables defined as a bare source column."""
    return [
        item.name
        for item in items
        if item.name not in ordered_names
        and isinstance(item.expr, ColumnRef)
        and item.expr.name == item.name
    ]


def partition_info(plan: QueryPlan) -> PartitionInfo:
    """Derive the sharding constraints of one planned query.

    The rules follow where operator state lives:

    * **selection** — stateless per tuple: unconstrained.
    * **stateful selection** — one global SFUN state set: cannot shard.
    * **aggregation** — state per group: any non-ordered bare-column
      group-by variable keeps each group shard-local.
    * **sampling** with SFUN states or superaggregates — state per
      supergroup: a non-ordered bare-column *supergroup* variable is
      required (all of a supergroup's tuples must share a shard).
    * **sampling** without shared state — falls back to the aggregation
      rule (groups are then independent).
    """
    analyzed = plan.analyzed
    select_passthrough = _identity_output_names(analyzed.ast.select)
    if plan.kind == "selection":
        return PartitionInfo(None, tuple(select_passthrough))
    if plan.kind == "stateful_selection":
        return PartitionInfo(
            (),
            (),
            "a stateful selection keeps one global SFUN state set, so its"
            " tuples cannot be split across shards; run it serially or"
            " rewrite it as a sampling query with a SUPERGROUP",
        )

    group_candidates = _bare_nonordered_groupby(
        analyzed.group_by, analyzed.ordered_names
    )
    # Grouped output columns stay colocated only when they are group-by
    # variables (each output row inherits its group's value).
    passthrough = tuple(
        name for name in select_passthrough if name in group_candidates
    )

    spec = plan.sampling
    if spec is not None and (spec.state_names or spec.superaggregates):
        supergroup_items = [spec.group_by[i] for i in spec.nonordered_supergroup_indices]
        candidates = _bare_nonordered_groupby(
            supergroup_items, analyzed.ordered_names
        )
        reason = (
            "sampling state (SFUN states / superaggregates) is shared per"
            " supergroup, and the supergroup has no non-ordered bare-column"
            " variable to hash-partition on; add one, e.g."
            " SUPERGROUP BY <window var>, <key column>"
        )
    else:
        candidates = group_candidates
        reason = (
            "no non-ordered bare-column GROUP BY variable to hash-partition"
            " on; every shard would emit its own partial row per window"
        )
    return PartitionInfo(tuple(candidates), passthrough, reason if not candidates else "")


def compile_query(
    text: str,
    registries: Registries,
    query_name: str = "Q",
    strict: bool = False,
    annotate: bool = False,
) -> QueryPlan:
    """Parse, analyze and plan a query text in one call.

    ``strict`` runs the full static analyzer first and refuses to compile
    a query with *any* diagnostic — lint warnings included — so sampling
    mistakes (unbounded group tables, constant CLEANING predicates, ...)
    fail at submission instead of silently running wrong.

    ``annotate`` additionally runs the sampling-soundness dataflow pass
    and stores its facts on ``plan.annotations["sampling"]`` (imported
    lazily so the base compile path has no analysis dependency).
    """
    if strict:
        from repro.analysis.linter import lint_query

        result = lint_query(text, registries, filename=query_name)
        if result.diagnostics:
            from repro.errors import AnalysisError

            raise AnalysisError(
                f"strict compilation of {query_name!r} failed:\n"
                + result.render()
            )
    ast = parse_query(text)
    analyzed = analyze(ast, registries)
    assert analyzed is not None  # raise mode always returns or raises
    planned = plan(analyzed, registries, query_name=query_name)
    if annotate:
        from repro.analysis.sampling_algebra import analyze_sampling

        analyze_sampling(planned)
    return planned
