"""Semantic analysis: classification, validation, slot assignment.

The parser leaves every call as an unclassified
:class:`~repro.dsms.expr.FunctionCall`.  The analyzer rewrites each into
one of:

* :class:`ScalarCall` — name registered as a scalar function,
* :class:`StatefulCall` — name registered in the stateful library (SFUN),
* :class:`AggregateCall` — name registered as a group aggregate,
* :class:`SuperAggregateCall` — name ends with ``$`` and is registered as
  a superaggregate,

assigns *slots* (indices into the per-group aggregate vector and the
per-supergroup superaggregate vector, deduplicated across clauses), and
enforces the clause-legality rules of the operator semantics (paper §5):

==============  ========================================================
Clause          May reference
==============  ========================================================
WHERE           tuple columns, group-by variables, scalars, SFUNs,
                superaggregates (min-hash admits via ``Kth_smallest$``)
CLEANING WHEN   supergroup variables, scalars, SFUNs, superaggregates
CLEANING BY     group-by variables, aggregates, scalars, SFUNs,
                superaggregates
HAVING          same as CLEANING BY
SELECT          same as CLEANING BY (it is evaluated per surviving group)
==============  ========================================================

It also derives the *window* variables — group-by variables whose defining
expressions reference only ordered stream attributes — and folds them into
the supergroup per paper §6.1 ("all ordered group-by variables are part of
the supergroup").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.dsms.aggregates import AggregateRegistry
from repro.dsms.expr import (
    AggregateCall,
    ColumnRef,
    Expr,
    FunctionCall,
    ScalarCall,
    Star,
    StatefulCall,
    SuperAggregateCall,
    column_names,
    find_nodes,
    free_column_names,
    rewrite,
)
from repro.dsms.functions import FunctionRegistry
from repro.dsms.parser.ast import GroupByItem, QueryAst, SelectItem
from repro.dsms.stateful import StatefulLibrary
from repro.streams.schema import StreamSchema

if TYPE_CHECKING:  # deferred: repro.core imports this module at runtime
    from repro.core.superaggregates import SuperAggregateRegistry


@dataclass
class Registries:
    """Everything name resolution needs, bundled."""

    schemas: Dict[str, StreamSchema]
    scalars: FunctionRegistry
    aggregates: AggregateRegistry
    superaggregates: "SuperAggregateRegistry"
    stateful: StatefulLibrary


@dataclass
class AnalyzedQuery:
    """Output of :func:`analyze` — the validated, classified query."""

    ast: QueryAst
    schema: StreamSchema
    group_by: Tuple[GroupByItem, ...]
    ordered_names: Tuple[str, ...]
    supergroup_names: Tuple[str, ...]
    aggregates: Tuple[AggregateCall, ...]
    superaggregates: Tuple[SuperAggregateCall, ...]
    state_names: Tuple[str, ...]
    kind: str  # "sampling" | "aggregation" | "selection" | "stateful_selection"

    @property
    def group_by_names(self) -> Tuple[str, ...]:
        return tuple(item.name for item in self.group_by)


class _Classifier:
    """Rewrites FunctionCall nodes and collects slotted aggregates."""

    def __init__(self, registries: Registries) -> None:
        self._registries = registries
        self._agg_slots: Dict[Tuple[str, str], AggregateCall] = {}
        self._super_slots: Dict[Tuple[str, str], SuperAggregateCall] = {}

    # -- results ---------------------------------------------------------------

    @property
    def aggregates(self) -> Tuple[AggregateCall, ...]:
        return tuple(
            sorted(self._agg_slots.values(), key=lambda node: node.slot)
        )

    @property
    def superaggregates(self) -> Tuple[SuperAggregateCall, ...]:
        return tuple(
            sorted(self._super_slots.values(), key=lambda node: node.slot)
        )

    def state_names(self, *exprs: Optional[Expr]) -> Tuple[str, ...]:
        names: List[str] = []
        for expr in exprs:
            if expr is None:
                continue
            for node in find_nodes(expr, StatefulCall):
                if node.state_name not in names:
                    names.append(node.state_name)
        return tuple(names)

    # -- classification -----------------------------------------------------------

    def classify(self, expr: Optional[Expr]) -> Optional[Expr]:
        if expr is None:
            return None
        return rewrite(expr, self._classify_node)

    def _classify_node(self, node: Expr) -> Optional[Expr]:
        if not isinstance(node, FunctionCall):
            return None
        name, args = node.name, node.args
        registries = self._registries
        if name.endswith("$"):
            base = name[:-1]
            if base not in registries.superaggregates:
                raise AnalysisError(f"unknown superaggregate {name!r}")
            key = (base, "|".join(map(str, args)))
            if key not in self._super_slots:
                slotted = SuperAggregateCall(base, args, slot=len(self._super_slots))
                self._super_slots[key] = slotted
            return self._super_slots[key]
        if name in registries.stateful:
            return StatefulCall(name, registries.stateful.state_of(name), args)
        if name in registries.aggregates:
            key = (name, "|".join(map(str, args)))
            if key not in self._agg_slots:
                slotted = AggregateCall(name, args, slot=len(self._agg_slots))
                self._agg_slots[key] = slotted
            return self._agg_slots[key]
        if name in registries.scalars:
            return ScalarCall(name, args)
        raise AnalysisError(
            f"unknown function {name!r}: not a scalar, aggregate, superaggregate,"
            " or stateful function"
        )


def _check_clause(
    clause: str,
    expr: Optional[Expr],
    allowed_columns: Sequence[str],
    allow_aggregates: bool,
    allow_superaggregates: bool = True,
    allow_stateful: bool = True,
) -> None:
    if expr is None:
        return
    for name in free_column_names(expr):
        if name not in allowed_columns:
            raise AnalysisError(
                f"{clause} references {name!r}, which is not available there"
                f" (available: {sorted(set(allowed_columns))})"
            )
    if not allow_aggregates and find_nodes(expr, AggregateCall):
        raise AnalysisError(f"{clause} may not reference group aggregates")
    if not allow_superaggregates and find_nodes(expr, SuperAggregateCall):
        raise AnalysisError(f"{clause} may not reference superaggregates")
    if not allow_stateful and find_nodes(expr, StatefulCall):
        raise AnalysisError(f"{clause} may not reference stateful functions")


def analyze(ast: QueryAst, registries: Registries) -> AnalyzedQuery:
    """Validate and classify a parsed query."""
    try:
        schema = registries.schemas[ast.from_stream]
    except KeyError:
        raise AnalysisError(
            f"unknown stream {ast.from_stream!r};"
            f" known: {sorted(registries.schemas)}"
        ) from None

    classifier = _Classifier(registries)

    # -- group-by variables ---------------------------------------------------
    group_by: List[GroupByItem] = []
    seen_names: set = set()
    for item in ast.group_by:
        if item.name in seen_names:
            raise AnalysisError(f"duplicate group-by variable {item.name!r}")
        seen_names.add(item.name)
        classified = classifier.classify(item.expr)
        assert classified is not None
        for col in column_names(classified):
            if col not in schema:
                raise AnalysisError(
                    f"GROUP BY expression for {item.name!r} references unknown"
                    f" column {col!r}"
                )
        bad = find_nodes(classified, AggregateCall) + find_nodes(
            classified, SuperAggregateCall
        ) + find_nodes(classified, StatefulCall)
        if bad:
            raise AnalysisError(
                f"GROUP BY expression for {item.name!r} may only use columns and"
                " scalar functions"
            )
        group_by.append(GroupByItem(classified, item.name))

    group_by_names = [item.name for item in group_by]

    # -- ordered (window) variables --------------------------------------------
    ordered_names: List[str] = []
    for item in group_by:
        cols = column_names(item.expr)
        if cols and all(schema.attribute(c).ordering.is_ordered for c in cols):
            ordered_names.append(item.name)

    # -- supergroup --------------------------------------------------------------
    for name in ast.supergroup:
        if name not in group_by_names:
            raise AnalysisError(
                f"SUPERGROUP variable {name!r} is not a GROUP BY variable"
                " (supergroups are a specialization of grouping sets)"
            )
    supergroup_names: List[str] = list(ordered_names)
    for name in ast.supergroup:
        if name not in supergroup_names:
            supergroup_names.append(name)

    # -- clause classification -----------------------------------------------------
    where = classifier.classify(ast.where)
    having = classifier.classify(ast.having)
    cleaning_when = classifier.classify(ast.cleaning_when)
    cleaning_by = classifier.classify(ast.cleaning_by)
    select_items = tuple(
        SelectItem(classifier.classify(item.expr), item.alias) for item in ast.select
    )

    if (ast.cleaning_when is None) != (ast.cleaning_by is None):
        raise AnalysisError(
            "CLEANING WHEN and CLEANING BY must be used together"
        )

    has_sampling_features = (
        ast.has_cleaning
        or bool(ast.supergroup)
        or bool(classifier.superaggregates)
        or bool(classifier.state_names(where, having, cleaning_when, cleaning_by,
                                       *[s.expr for s in select_items]))
    )

    if not ast.group_by:
        if classifier.aggregates or classifier.superaggregates:
            raise AnalysisError(
                "aggregates require a GROUP BY clause"
            )
        if ast.has_cleaning:
            raise AnalysisError("CLEANING clauses require a GROUP BY clause")
        _check_clause("WHERE", where, schema.names, allow_aggregates=False)
        for item in select_items:
            _check_clause("SELECT", item.expr, schema.names, allow_aggregates=False)
        state_names = classifier.state_names(
            where, *[s.expr for s in select_items]
        )
        kind = "stateful_selection" if state_names else "selection"
        analyzed_ast = QueryAst(
            select=select_items,
            from_stream=ast.from_stream,
            where=where,
            group_by=(),
            supergroup=(),
            having=None,
            cleaning_when=None,
            cleaning_by=None,
        )
        return AnalyzedQuery(
            ast=analyzed_ast,
            schema=schema,
            group_by=(),
            ordered_names=(),
            supergroup_names=(),
            aggregates=(),
            superaggregates=(),
            state_names=state_names,
            kind=kind,
        )

    # -- grouped query: clause legality ---------------------------------------------
    where_columns = list(schema.names) + group_by_names
    _check_clause("WHERE", where, where_columns, allow_aggregates=False)
    _check_clause(
        "CLEANING WHEN", cleaning_when, supergroup_names, allow_aggregates=False
    )
    group_context_columns = group_by_names
    _check_clause("CLEANING BY", cleaning_by, group_context_columns, allow_aggregates=True)
    _check_clause("HAVING", having, group_context_columns, allow_aggregates=True)
    for item in select_items:
        _check_clause("SELECT", item.expr, group_context_columns, allow_aggregates=True)

    state_names = classifier.state_names(
        where, having, cleaning_when, cleaning_by, *[s.expr for s in select_items]
    )

    analyzed_ast = QueryAst(
        select=select_items,
        from_stream=ast.from_stream,
        where=where,
        group_by=tuple(group_by),
        supergroup=ast.supergroup,
        having=having,
        cleaning_when=cleaning_when,
        cleaning_by=cleaning_by,
    )
    return AnalyzedQuery(
        ast=analyzed_ast,
        schema=schema,
        group_by=tuple(group_by),
        ordered_names=tuple(ordered_names),
        supergroup_names=tuple(supergroup_names),
        aggregates=classifier.aggregates,
        superaggregates=classifier.superaggregates,
        state_names=state_names,
        kind="sampling" if has_sampling_features else "aggregation",
    )
