"""Semantic analysis: classification, validation, slot assignment.

The parser leaves every call as an unclassified
:class:`~repro.dsms.expr.FunctionCall`.  The analyzer rewrites each into
one of:

* :class:`ScalarCall` — name registered as a scalar function,
* :class:`StatefulCall` — name registered in the stateful library (SFUN),
* :class:`AggregateCall` — name registered as a group aggregate,
* :class:`SuperAggregateCall` — name ends with ``$`` and is registered as
  a superaggregate,

assigns *slots* (indices into the per-group aggregate vector and the
per-supergroup superaggregate vector, deduplicated across clauses), and
enforces the clause-legality rules of the operator semantics (paper §5):

==============  ========================================================
Clause          May reference
==============  ========================================================
WHERE           tuple columns, group-by variables, scalars, SFUNs,
                superaggregates (min-hash admits via ``Kth_smallest$``)
CLEANING WHEN   supergroup variables, scalars, SFUNs, superaggregates
CLEANING BY     group-by variables, aggregates, scalars, SFUNs,
                superaggregates
HAVING          same as CLEANING BY
SELECT          same as CLEANING BY (it is evaluated per surviving group)
==============  ========================================================

It also derives the *window* variables — group-by variables whose defining
expressions reference only ordered stream attributes — and folds them into
the supergroup per paper §6.1 ("all ordered group-by variables are part of
the supergroup").

Error handling has two modes.  Called bare, :func:`analyze` raises
:class:`~repro.errors.AnalysisError` at the first problem (the historical
behaviour the planner and runtime rely on).  Called with a
:class:`~repro.analysis.diagnostics.DiagnosticCollector`, every violation
is *collected* (rules ``SA020``–``SA030``, each with a source span) and
analysis keeps going, so ``repro lint`` can show all of them in one run;
only an unknown stream is fatal (returns ``None``) because nothing else
can be checked without a schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import DiagnosticCollector
from repro.errors import AnalysisError
from repro.dsms.aggregates import AggregateRegistry
from repro.dsms.expr import (
    AggregateCall,
    ColumnRef,
    Expr,
    FunctionCall,
    ScalarCall,
    Star,
    StatefulCall,
    SuperAggregateCall,
    column_names,
    find_nodes,
    rewrite,
)
from repro.dsms.functions import FunctionRegistry
from repro.dsms.parser.ast import GroupByItem, QueryAst, SelectItem
from repro.dsms.span import Span
from repro.dsms.stateful import StatefulLibrary
from repro.streams.schema import StreamSchema

if TYPE_CHECKING:  # deferred: repro.core imports this module at runtime
    from repro.core.superaggregates import SuperAggregateRegistry


@dataclass
class Registries:
    """Everything name resolution needs, bundled."""

    schemas: Dict[str, StreamSchema]
    scalars: FunctionRegistry
    aggregates: AggregateRegistry
    superaggregates: "SuperAggregateRegistry"
    stateful: StatefulLibrary


@dataclass
class AnalyzedQuery:
    """Output of :func:`analyze` — the validated, classified query."""

    ast: QueryAst
    schema: StreamSchema
    group_by: Tuple[GroupByItem, ...]
    ordered_names: Tuple[str, ...]
    supergroup_names: Tuple[str, ...]
    aggregates: Tuple[AggregateCall, ...]
    superaggregates: Tuple[SuperAggregateCall, ...]
    state_names: Tuple[str, ...]
    kind: str  # "sampling" | "aggregation" | "selection" | "stateful_selection"

    @property
    def group_by_names(self) -> Tuple[str, ...]:
        return tuple(item.name for item in self.group_by)


class _Report:
    """Routes violations: raise (legacy) or collect (lint mode)."""

    def __init__(self, collector: Optional[DiagnosticCollector]) -> None:
        self.collector = collector

    @property
    def collecting(self) -> bool:
        return self.collector is not None

    def error(
        self,
        rule: str,
        message: str,
        span: Optional[Span] = None,
        hint: Optional[str] = None,
    ) -> None:
        if self.collector is None:
            raise AnalysisError(message)
        self.collector.error(rule, message, span, hint)


def _free_column_nodes(expr: Expr) -> List[ColumnRef]:
    """Column reference *nodes* outside aggregate calls (span-bearing
    sibling of :func:`~repro.dsms.expr.free_column_names`)."""
    nodes: List[ColumnRef] = []

    def visit(node: Expr) -> None:
        if isinstance(node, AggregateCall):
            return
        if isinstance(node, ColumnRef):
            nodes.append(node)
        for child in node.children():
            visit(child)

    visit(expr)
    return nodes


class _Classifier:
    """Rewrites FunctionCall nodes and collects slotted aggregates."""

    def __init__(self, registries: Registries, report: _Report) -> None:
        self._registries = registries
        self._report = report
        self._agg_slots: Dict[Tuple[str, str], AggregateCall] = {}
        self._super_slots: Dict[Tuple[str, str], SuperAggregateCall] = {}

    # -- results ---------------------------------------------------------------

    @property
    def aggregates(self) -> Tuple[AggregateCall, ...]:
        return tuple(
            sorted(self._agg_slots.values(), key=lambda node: node.slot)
        )

    @property
    def superaggregates(self) -> Tuple[SuperAggregateCall, ...]:
        return tuple(
            sorted(self._super_slots.values(), key=lambda node: node.slot)
        )

    def state_names(self, *exprs: Optional[Expr]) -> Tuple[str, ...]:
        names: List[str] = []
        for expr in exprs:
            if expr is None:
                continue
            for node in find_nodes(expr, StatefulCall):
                if node.state_name not in names:
                    names.append(node.state_name)
        return tuple(names)

    # -- classification -----------------------------------------------------------

    def classify(self, expr: Optional[Expr]) -> Optional[Expr]:
        if expr is None:
            return None
        return rewrite(expr, self._classify_node)

    def _classify_node(self, node: Expr) -> Optional[Expr]:
        if not isinstance(node, FunctionCall):
            return None
        name, args = node.name, node.args
        registries = self._registries
        if name.endswith("$"):
            base = name[:-1]
            if base not in registries.superaggregates:
                self._report.error(
                    "SA022", f"unknown superaggregate {name!r}", node.span
                )
                return None  # collect mode: leave the call unclassified
            key = (base, "|".join(map(str, args)))
            if key not in self._super_slots:
                slotted = SuperAggregateCall(
                    base, args, slot=len(self._super_slots), span=node.span
                )
                self._super_slots[key] = slotted
            return self._super_slots[key]
        if name in registries.stateful:
            return StatefulCall(
                name, registries.stateful.state_of(name), args, span=node.span
            )
        if name in registries.aggregates:
            key = (name, "|".join(map(str, args)))
            if key not in self._agg_slots:
                slotted = AggregateCall(
                    name, args, slot=len(self._agg_slots), span=node.span
                )
                self._agg_slots[key] = slotted
            return self._agg_slots[key]
        if name in registries.scalars:
            return ScalarCall(name, args, span=node.span)
        self._report.error(
            "SA021",
            f"unknown function {name!r}: not a scalar, aggregate, superaggregate,"
            " or stateful function",
            node.span,
        )
        return None


def _check_clause(
    clause: str,
    expr: Optional[Expr],
    allowed_columns: Sequence[str],
    allow_aggregates: bool,
    report: _Report,
    allow_superaggregates: bool = True,
    allow_stateful: bool = True,
) -> None:
    if expr is None:
        return
    for node in _free_column_nodes(expr):
        if node.name not in allowed_columns:
            report.error(
                "SA027",
                f"{clause} references {node.name!r}, which is not available there"
                f" (available: {sorted(set(allowed_columns))})",
                node.span,
            )
    if not allow_aggregates:
        for bad in find_nodes(expr, AggregateCall):
            report.error(
                "SA028",
                f"{clause} may not reference group aggregates",
                bad.span,
            )
    if not allow_superaggregates:
        for bad in find_nodes(expr, SuperAggregateCall):
            report.error(
                "SA028",
                f"{clause} may not reference superaggregates",
                bad.span,
            )
    if not allow_stateful:
        for bad in find_nodes(expr, StatefulCall):
            report.error(
                "SA028",
                f"{clause} may not reference stateful functions",
                bad.span,
            )


def analyze(
    ast: QueryAst,
    registries: Registries,
    collector: Optional[DiagnosticCollector] = None,
) -> Optional[AnalyzedQuery]:
    """Validate and classify a parsed query.

    Without ``collector``, raises :class:`AnalysisError` at the first
    violation and always returns an :class:`AnalyzedQuery`.  With a
    collector, violations are reported as diagnostics and analysis
    continues; returns ``None`` only when the stream is unknown.
    """
    report = _Report(collector)
    try:
        schema = registries.schemas[ast.from_stream]
    except KeyError:
        report.error(
            "SA020",
            f"unknown stream {ast.from_stream!r};"
            f" known: {sorted(registries.schemas)}",
            ast.clause_span("FROM"),
        )
        return None  # nothing else is checkable without a schema

    classifier = _Classifier(registries, report)

    # -- group-by variables ---------------------------------------------------
    group_by: List[GroupByItem] = []
    seen_names: set = set()
    for item in ast.group_by:
        if item.name in seen_names:
            report.error(
                "SA023",
                f"duplicate group-by variable {item.name!r}",
                item.expr.span or ast.clause_span("GROUP BY"),
            )
            continue
        seen_names.add(item.name)
        classified = classifier.classify(item.expr)
        assert classified is not None
        for col_node in _free_column_nodes(classified):
            if col_node.name not in schema:
                report.error(
                    "SA024",
                    f"GROUP BY expression for {item.name!r} references unknown"
                    f" column {col_node.name!r}",
                    col_node.span,
                )
        bad = find_nodes(classified, AggregateCall) + find_nodes(
            classified, SuperAggregateCall
        ) + find_nodes(classified, StatefulCall)
        if bad:
            report.error(
                "SA025",
                f"GROUP BY expression for {item.name!r} may only use columns and"
                " scalar functions",
                bad[0].span or item.expr.span,
            )
        group_by.append(GroupByItem(classified, item.name))

    group_by_names = [item.name for item in group_by]

    # -- ordered (window) variables --------------------------------------------
    ordered_names: List[str] = []
    for item in group_by:
        cols = column_names(item.expr)
        if cols and all(
            c in schema and schema.attribute(c).ordering.is_ordered for c in cols
        ):
            ordered_names.append(item.name)

    # -- supergroup --------------------------------------------------------------
    supergroup: List[str] = []
    for name in ast.supergroup:
        if name not in group_by_names:
            report.error(
                "SA026",
                f"SUPERGROUP variable {name!r} is not a GROUP BY variable"
                " (supergroups are a specialization of grouping sets)",
                ast.clause_span("SUPERGROUP"),
            )
            continue
        supergroup.append(name)
    supergroup_names: List[str] = list(ordered_names)
    for name in supergroup:
        if name not in supergroup_names:
            supergroup_names.append(name)

    # -- clause classification -----------------------------------------------------
    where = classifier.classify(ast.where)
    having = classifier.classify(ast.having)
    cleaning_when = classifier.classify(ast.cleaning_when)
    cleaning_by = classifier.classify(ast.cleaning_by)
    select_items = tuple(
        SelectItem(classifier.classify(item.expr), item.alias) for item in ast.select
    )

    if (ast.cleaning_when is None) != (ast.cleaning_by is None):
        present = "CLEANING WHEN" if ast.cleaning_when is not None else "CLEANING BY"
        report.error(
            "SA030",
            "CLEANING WHEN and CLEANING BY must be used together",
            ast.clause_span(present),
        )

    has_sampling_features = (
        ast.has_cleaning
        or bool(ast.supergroup)
        or bool(classifier.superaggregates)
        or bool(classifier.state_names(where, having, cleaning_when, cleaning_by,
                                       *[s.expr for s in select_items]))
    )

    if not ast.group_by:
        if classifier.aggregates or classifier.superaggregates:
            offender = (classifier.aggregates + classifier.superaggregates)[0]
            report.error(
                "SA029",
                "aggregates require a GROUP BY clause",
                offender.span,
            )
        if ast.has_cleaning:
            report.error(
                "SA029",
                "CLEANING clauses require a GROUP BY clause",
                ast.clause_span("CLEANING WHEN") or ast.clause_span("CLEANING BY"),
            )
        _check_clause("WHERE", where, schema.names, False, report)
        for item in select_items:
            _check_clause("SELECT", item.expr, schema.names, False, report)
        state_names = classifier.state_names(
            where, *[s.expr for s in select_items]
        )
        kind = "stateful_selection" if state_names else "selection"
        analyzed_ast = QueryAst(
            select=select_items,
            from_stream=ast.from_stream,
            where=where,
            group_by=(),
            supergroup=(),
            having=None,
            cleaning_when=None,
            cleaning_by=None,
            clause_spans=ast.clause_spans,
        )
        return AnalyzedQuery(
            ast=analyzed_ast,
            schema=schema,
            group_by=(),
            ordered_names=(),
            supergroup_names=(),
            aggregates=(),
            superaggregates=(),
            state_names=state_names,
            kind=kind,
        )

    # -- grouped query: clause legality ---------------------------------------------
    where_columns = list(schema.names) + group_by_names
    _check_clause("WHERE", where, where_columns, False, report)
    _check_clause("CLEANING WHEN", cleaning_when, supergroup_names, False, report)
    group_context_columns = group_by_names
    _check_clause("CLEANING BY", cleaning_by, group_context_columns, True, report)
    _check_clause("HAVING", having, group_context_columns, True, report)
    for item in select_items:
        _check_clause("SELECT", item.expr, group_context_columns, True, report)

    state_names = classifier.state_names(
        where, having, cleaning_when, cleaning_by, *[s.expr for s in select_items]
    )

    analyzed_ast = QueryAst(
        select=select_items,
        from_stream=ast.from_stream,
        where=where,
        group_by=tuple(group_by),
        supergroup=ast.supergroup,
        having=having,
        cleaning_when=cleaning_when,
        cleaning_by=cleaning_by,
        clause_spans=ast.clause_spans,
    )
    return AnalyzedQuery(
        ast=analyzed_ast,
        schema=schema,
        group_by=tuple(group_by),
        ordered_names=tuple(ordered_names),
        supergroup_names=tuple(supergroup_names),
        aggregates=classifier.aggregates,
        superaggregates=classifier.superaggregates,
        state_names=state_names,
        kind="sampling" if has_sampling_features else "aggregation",
    )
