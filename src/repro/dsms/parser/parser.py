"""Recursive-descent parser for the GSQL subset.

Grammar (clauses in this order, bracketed ones optional)::

    query      := SELECT select_list FROM ident [WHERE expr]
                  [GROUP BY groupby_list] [SUPERGROUP [BY] ident_list]
                  [HAVING expr] [CLEANING WHEN expr] [CLEANING BY expr]
    select_list:= select_item (',' select_item)*
    select_item:= expr [AS ident]
    groupby_list := groupby_item (',' groupby_item)*
    groupby_item := expr [AS ident]

    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | comparison
    comparison := additive [cmp_op additive]
    additive   := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/'|'%') unary)*
    unary      := '-' unary | primary
    primary    := NUMBER | STRING | TRUE | FALSE | '(' expr ')'
                | ident '(' [arglist] ')' | ident | '*'   (inside arglists)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError
from repro.dsms.expr import (
    BinaryOp,
    ColumnRef,
    Expr,
    FunctionCall,
    Literal,
    Star,
    UnaryOp,
)
from repro.dsms.parser.ast import GroupByItem, QueryAst, SelectItem
from repro.dsms.parser.lexer import Token, TokenType, tokenize
from repro.dsms.span import Span

_COMPARISON_OPS = ("=", "<>", "!=", "<=", ">=", "<", ">")


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._current
        return ParseError(
            f"{message}, found {token} (line {token.line})",
            line=token.line,
            col=token.col,
        )

    def _expect_keyword(self, word: str) -> Token:
        if not self._current.is_keyword(word):
            raise self._error(f"expected {word}")
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self._current.is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> Token:
        token = self._current
        if token.type is not TokenType.OP or token.value != op:
            raise self._error(f"expected {op!r}")
        return self._advance()

    def _accept_op(self, op: str) -> bool:
        token = self._current
        if token.type is TokenType.OP and token.value == op:
            self._advance()
            return True
        return False

    def _expect_ident(self, what: str) -> str:
        token = self._current
        if token.type is not TokenType.IDENT:
            raise self._error(f"expected {what}")
        self._advance()
        return token.value

    # -- query --------------------------------------------------------------

    def parse_query(self) -> QueryAst:
        clause_spans: Dict[str, Span] = {}
        clause_spans["SELECT"] = self._expect_keyword("SELECT").span
        select = self._parse_select_list()
        self._expect_keyword("FROM")
        from_token = self._current
        from_stream = self._expect_ident("stream name after FROM")
        # FROM diagnostics point at the stream name, not the keyword.
        clause_spans["FROM"] = from_token.span

        where: Optional[Expr] = None
        if self._current.is_keyword("WHERE"):
            clause_spans["WHERE"] = self._advance().span
            where = self.parse_expr()

        group_by: Tuple[GroupByItem, ...] = ()
        if self._current.is_keyword("GROUP"):
            clause_spans["GROUP BY"] = self._advance().span
            self._expect_keyword("BY")
            group_by = self._parse_groupby_list()

        supergroup: Tuple[str, ...] = ()
        if self._current.is_keyword("SUPERGROUP"):
            clause_spans["SUPERGROUP"] = self._advance().span
            self._accept_keyword("BY")  # the paper writes both forms
            names = [self._expect_ident("supergroup variable")]
            while self._accept_op(","):
                names.append(self._expect_ident("supergroup variable"))
            supergroup = tuple(names)

        having: Optional[Expr] = None
        if self._current.is_keyword("HAVING"):
            clause_spans["HAVING"] = self._advance().span
            having = self.parse_expr()

        cleaning_when: Optional[Expr] = None
        cleaning_by: Optional[Expr] = None
        while self._current.is_keyword("CLEANING"):
            cleaning_token = self._advance()
            if self._accept_keyword("WHEN"):
                if cleaning_when is not None:
                    raise self._error("duplicate CLEANING WHEN clause")
                clause_spans["CLEANING WHEN"] = cleaning_token.span
                cleaning_when = self.parse_expr()
            elif self._accept_keyword("BY"):
                if cleaning_by is not None:
                    raise self._error("duplicate CLEANING BY clause")
                clause_spans["CLEANING BY"] = cleaning_token.span
                cleaning_by = self.parse_expr()
            else:
                raise self._error("expected WHEN or BY after CLEANING")

        if self._current.type is not TokenType.EOF:
            raise self._error("unexpected trailing input")

        return QueryAst(
            select=select,
            from_stream=from_stream,
            where=where,
            group_by=group_by,
            supergroup=supergroup,
            having=having,
            cleaning_when=cleaning_when,
            cleaning_by=cleaning_by,
            clause_spans=clause_spans,
        )

    def _parse_select_list(self) -> Tuple[SelectItem, ...]:
        items = [self._parse_select_item()]
        while self._accept_op(","):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias after AS")
        return SelectItem(expr, alias)

    def _parse_groupby_list(self) -> Tuple[GroupByItem, ...]:
        items = [self._parse_groupby_item()]
        while self._accept_op(","):
            items.append(self._parse_groupby_item())
        return tuple(items)

    def _parse_groupby_item(self) -> GroupByItem:
        expr = self.parse_expr()
        if self._accept_keyword("AS"):
            name = self._expect_ident("alias after AS")
        elif isinstance(expr, ColumnRef):
            name = expr.name
        else:
            raise self._error(
                "a non-column GROUP BY expression needs an alias (e.g. time/60 AS tb)"
            )
        return GroupByItem(expr, name)

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._current.is_keyword("OR"):
            op_token = self._advance()
            left = BinaryOp("OR", left, self._parse_and(), span=op_token.span)
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._current.is_keyword("AND"):
            op_token = self._advance()
            left = BinaryOp("AND", left, self._parse_not(), span=op_token.span)
        return left

    def _parse_not(self) -> Expr:
        if self._current.is_keyword("NOT"):
            op_token = self._advance()
            return UnaryOp("NOT", self._parse_not(), span=op_token.span)
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        token = self._current
        if token.type is TokenType.OP and token.value in _COMPARISON_OPS:
            self._advance()
            right = self._parse_additive()
            return BinaryOp(token.value, left, right, span=token.span)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._current
            if token.type is TokenType.OP and token.value in ("+", "-"):
                self._advance()
                left = BinaryOp(
                    token.value, left, self._parse_multiplicative(), span=token.span
                )
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            token = self._current
            if token.type is TokenType.OP and token.value in ("*", "/", "%"):
                self._advance()
                left = BinaryOp(
                    token.value, left, self._parse_unary(), span=token.span
                )
            else:
                return left

    def _parse_unary(self) -> Expr:
        token = self._current
        if self._accept_op("-"):
            return UnaryOp("-", self._parse_unary(), span=token.span)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            return Literal(token.value, span=token.span)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value, span=token.span)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True, span=token.span)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False, span=token.span)
        if self._accept_op("("):
            inner = self.parse_expr()
            self._expect_op(")")
            return inner
        if token.type is TokenType.IDENT:
            self._advance()
            if self._accept_op("("):
                args = self._parse_arglist()
                self._expect_op(")")
                return FunctionCall(token.value, tuple(args), span=token.span)
            if token.value.endswith("$"):
                raise self._error(
                    f"superaggregate {token.value} must be called with arguments"
                )
            return ColumnRef(token.value, span=token.span)
        raise self._error("expected an expression")

    def _parse_arglist(self) -> List[Expr]:
        # Empty argument list: ssthreshold()
        token = self._current
        if token.type is TokenType.OP and token.value == ")":
            return []
        args = [self._parse_arg()]
        while self._accept_op(","):
            args.append(self._parse_arg())
        return args

    def _parse_arg(self) -> Expr:
        # '*' is only legal as a bare argument: count(*), count_distinct$(*).
        token = self._current
        if token.type is TokenType.OP and token.value == "*":
            self._advance()
            return Star(span=token.span)
        return self.parse_expr()


def parse_query(text: str) -> QueryAst:
    """Parse one query text into a :class:`QueryAst`."""
    return _Parser(tokenize(text)).parse_query()


def parse_expression(text: str) -> Expr:
    """Parse a standalone expression (used by tests and the REPL helper)."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    if parser._current.type is not TokenType.EOF:
        raise ParseError(f"unexpected trailing input after expression: {parser._current}")
    return expr
