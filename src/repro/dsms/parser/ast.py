"""Query-level AST produced by the parser.

Expression nodes live in :mod:`repro.dsms.expr`; this module holds the
clause structure of a whole query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.dsms.expr import Expr
from repro.dsms.span import Span


@dataclass(frozen=True)
class SelectItem:
    """One entry of the SELECT list, with an optional ``AS`` alias."""

    expr: Expr
    alias: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.expr} AS {self.alias}" if self.alias else str(self.expr)


@dataclass(frozen=True)
class GroupByItem:
    """One grouping variable definition, e.g. ``time/60 as tb`` or ``srcIP``.

    ``name`` is the variable's name: the alias when given, otherwise the
    column name (a bare-column item).  Group-by variables with expressions
    other than a bare column *must* carry an alias so later clauses can
    reference them.
    """

    expr: Expr
    name: str

    def __str__(self) -> str:
        return f"{self.expr} AS {self.name}"


@dataclass(frozen=True)
class QueryAst:
    """A parsed (not yet analyzed) query."""

    select: Tuple[SelectItem, ...]
    from_stream: str
    where: Optional[Expr] = None
    group_by: Tuple[GroupByItem, ...] = ()
    supergroup: Tuple[str, ...] = ()
    having: Optional[Expr] = None
    cleaning_when: Optional[Expr] = None
    cleaning_by: Optional[Expr] = None
    #: Keyword spans by clause name ("SELECT", "FROM", "WHERE", "GROUP BY",
    #: "SUPERGROUP", "HAVING", "CLEANING WHEN", "CLEANING BY"), carried for
    #: diagnostics only — never part of equality.
    clause_spans: Optional[Mapping[str, Span]] = field(
        default=None, compare=False, repr=False
    )

    @property
    def has_cleaning(self) -> bool:
        return self.cleaning_when is not None or self.cleaning_by is not None

    def clause_span(self, clause: str) -> Optional[Span]:
        """Span of a clause keyword, if the parser recorded one."""
        if self.clause_spans is None:
            return None
        return self.clause_spans.get(clause)

    def __str__(self) -> str:
        parts = ["SELECT " + ", ".join(map(str, self.select)), f"FROM {self.from_stream}"]
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(map(str, self.group_by)))
        if self.supergroup:
            parts.append("SUPERGROUP " + ", ".join(self.supergroup))
        if self.having is not None:
            parts.append(f"HAVING {self.having}")
        if self.cleaning_when is not None:
            parts.append(f"CLEANING WHEN {self.cleaning_when}")
        if self.cleaning_by is not None:
            parts.append(f"CLEANING BY {self.cleaning_by}")
        return "\n".join(parts)
