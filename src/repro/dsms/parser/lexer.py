"""Tokenizer for the GSQL subset.

Notable lexical details:

* superaggregate names carry a ``$`` suffix (``count_distinct$``), lexed as
  part of the identifier;
* the paper's examples spell the grouping clause both ``GROUP BY`` and
  ``GROUP_BY`` — both lex to the same keyword pair;
* keywords are case-insensitive, identifiers are case-sensitive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

from repro.errors import LexError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "AS",
        "SUPERGROUP",
        "HAVING",
        "CLEANING",
        "WHEN",
        "AND",
        "OR",
        "NOT",
        "TRUE",
        "FALSE",
    }
)

#: Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "%", "(", ")", ",")


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: Any
    position: int
    line: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word

    def __str__(self) -> str:
        if self.type is TokenType.EOF:
            return "<eof>"
        return str(self.value)


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; always ends with an EOF token."""
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            # SQL line comment
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            if i < n and text[i] == "$":
                i += 1
                tokens.append(Token(TokenType.IDENT, word + "$", start, line))
                continue
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start, line))
            elif upper == "GROUP_BY":
                # The paper's examples write both GROUP BY and GROUP_BY.
                tokens.append(Token(TokenType.KEYWORD, "GROUP", start, line))
                tokens.append(Token(TokenType.KEYWORD, "BY", start, line))
            else:
                tokens.append(Token(TokenType.IDENT, word, start, line))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < n and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
                if text[i] == ".":
                    # a dot not followed by a digit terminates the number
                    if i + 1 >= n or not text[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            literal = text[start:i]
            value: Any = float(literal) if "." in literal else int(literal)
            tokens.append(Token(TokenType.NUMBER, value, start, line))
            continue
        if ch in ("'", '"'):
            quote = ch
            start = i
            i += 1
            chars: List[str] = []
            while i < n and text[i] != quote:
                if text[i] == "\n":
                    raise LexError("unterminated string literal", start, line)
                chars.append(text[i])
                i += 1
            if i >= n:
                raise LexError("unterminated string literal", start, line)
            i += 1  # closing quote
            tokens.append(Token(TokenType.STRING, "".join(chars), start, line))
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenType.OP, op, i, line))
                i += len(op)
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {ch!r}", i, line)
    tokens.append(Token(TokenType.EOF, None, n, line))
    return tokens
