"""Tokenizer for the GSQL subset.

Notable lexical details:

* superaggregate names carry a ``$`` suffix (``count_distinct$``), lexed as
  part of the identifier;
* the paper's examples spell the grouping clause both ``GROUP BY`` and
  ``GROUP_BY`` — both lex to the same keyword pair;
* keywords are case-insensitive, identifiers are case-sensitive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List

from repro.dsms.span import Span
from repro.errors import LexError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "AS",
        "SUPERGROUP",
        "HAVING",
        "CLEANING",
        "WHEN",
        "AND",
        "OR",
        "NOT",
        "TRUE",
        "FALSE",
    }
)

#: Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "%", "(", ")", ",")


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: Any
    position: int
    line: int
    #: 1-based column of the token's first character on its line.
    col: int = field(default=1, compare=False)
    #: Character length of the lexeme (strings include their quotes).
    length: int = field(default=1, compare=False)

    @property
    def span(self) -> Span:
        return Span(self.line, self.col, self.length)

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word

    def __str__(self) -> str:
        if self.type is TokenType.EOF:
            return "<eof>"
        return str(self.value)


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; always ends with an EOF token."""
    tokens: List[Token] = []
    i = 0
    line = 1
    line_start = 0  # offset of the first character of the current line
    n = len(text)

    def col_of(offset: int) -> int:
        return offset - line_start + 1

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            # SQL line comment
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            if i < n and text[i] == "$":
                i += 1
                tokens.append(
                    Token(TokenType.IDENT, word + "$", start, line,
                          col_of(start), i - start)
                )
                continue
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(
                    Token(TokenType.KEYWORD, upper, start, line,
                          col_of(start), i - start)
                )
            elif upper == "GROUP_BY":
                # The paper's examples write both GROUP BY and GROUP_BY.
                tokens.append(
                    Token(TokenType.KEYWORD, "GROUP", start, line,
                          col_of(start), 5)
                )
                tokens.append(
                    Token(TokenType.KEYWORD, "BY", start, line,
                          col_of(start) + 6, 2)
                )
            else:
                tokens.append(
                    Token(TokenType.IDENT, word, start, line,
                          col_of(start), i - start)
                )
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < n and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
                if text[i] == ".":
                    # a dot not followed by a digit terminates the number
                    if i + 1 >= n or not text[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            literal = text[start:i]
            value: Any = float(literal) if "." in literal else int(literal)
            tokens.append(
                Token(TokenType.NUMBER, value, start, line,
                      col_of(start), i - start)
            )
            continue
        if ch in ("'", '"'):
            quote = ch
            start = i
            i += 1
            chars: List[str] = []
            while i < n and text[i] != quote:
                if text[i] == "\n":
                    raise LexError("unterminated string literal", start, line)
                chars.append(text[i])
                i += 1
            if i >= n:
                raise LexError("unterminated string literal", start, line)
            i += 1  # closing quote
            tokens.append(
                Token(TokenType.STRING, "".join(chars), start, line,
                      col_of(start), i - start)
            )
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(
                    Token(TokenType.OP, op, i, line, col_of(i), len(op))
                )
                i += len(op)
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {ch!r}", i, line)
    tokens.append(Token(TokenType.EOF, None, n, line, col_of(n), 0))
    return tokens
