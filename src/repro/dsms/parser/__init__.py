"""GSQL-subset front end: lexer, parser, analyzer, planner.

The textual query form (paper §5) is aggregation syntax extended with
``SUPERGROUP``, ``CLEANING WHEN`` and ``CLEANING BY``::

    SELECT <select expression list>
    FROM <stream>
    WHERE <predicate>
    GROUP BY <group-by variable definition list>
    [SUPERGROUP <group-by variable list>]
    [HAVING <predicate>]
    CLEANING WHEN <predicate>
    CLEANING BY <predicate>

Pipeline: :func:`tokenize` -> :func:`parse_query` -> :func:`analyze`
-> :func:`plan`.  The high-level convenience :func:`compile_query` runs
all four against a registry bundle.
"""

from repro.dsms.parser.lexer import Token, TokenType, tokenize
from repro.dsms.parser.ast import GroupByItem, QueryAst, SelectItem
from repro.dsms.parser.parser import parse_query
from repro.dsms.parser.analyzer import AnalyzedQuery, Registries, analyze
from repro.dsms.parser.planner import QueryPlan, SamplingSpec, plan, compile_query

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "GroupByItem",
    "QueryAst",
    "SelectItem",
    "parse_query",
    "AnalyzedQuery",
    "Registries",
    "analyze",
    "QueryPlan",
    "SamplingSpec",
    "plan",
    "compile_query",
]
