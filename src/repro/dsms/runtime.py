"""The two-level Gigascope-like runtime (paper §3, Figure 1).

Queries whose FROM clause names a registered *source stream* are low-level
queries: they read from that stream's ring buffer.  Gigascope restricts
low-level nodes to cheap data reduction — "Currently only selection and
(partial) aggregation are supported" (paper §7.2) — so when a sampling
query is submitted directly against a source stream the runtime does what
the paper did: it interposes an automatic low-level pass-through selection
query and runs the sampling operator at the high level.  Every tuple a
low-level query forwards upward is charged a ``tuple_copy`` (the dominant
cost in the paper's Fig 5 discussion); replacing the pass-through with a
prefiltering low-level query (Fig 6) is done by submitting that query
explicitly and pointing the sampling query at its name.

The runtime is synchronous: :meth:`Gigascope.run` drives a record iterator
through the ring buffers, the low-level operators, and on through the
query DAG; each query's output is retained on its handle (the "App" sink
of Figure 1) and also forwarded to any downstream queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import ExecutionError, PlanningError
from repro.dsms.aggregates import default_aggregate_registry
from repro.dsms.cost import CostModel, NULL_COST_MODEL
from repro.dsms.functions import default_function_registry
from repro.dsms.operators import build_operator
from repro.dsms.operators.base import Operator
from repro.dsms.parser import Registries, compile_query
from repro.dsms.ring_buffer import RingBuffer
from repro.dsms.stateful import StatefulLibrary
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACE, TraceSink
from repro.streams.records import Record
from repro.streams.schema import StreamSchema, coerce_record
from repro.streams.sources import QuarantineStream
from repro.core.superaggregates import default_superaggregate_registry
from repro.errors import SchemaError


@dataclass
class QueryHandle:
    """One registered query: its plan, operator, topology and sink."""

    name: str
    text: str
    level: str  # "low" | "high"
    source: str  # source stream or upstream query name
    operator: Operator
    results: List[Record] = field(default_factory=list)
    keep_results: bool = True
    forwarded: int = 0  # tuples this node pushed to downstream queries

    @property
    def output_schema(self) -> StreamSchema:
        return self.operator.output_schema


class Gigascope:
    """A miniature DSMS instance hosting source streams and queries."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        ring_capacity: int = 65536,
        strict: bool = False,
        shed_threshold: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceSink] = None,
        profile: bool = False,
        quarantine: Optional[QuarantineStream] = None,
        validate_admission: bool = False,
        vectorize: bool = False,
    ) -> None:
        """``strict`` makes every :meth:`add_query` refuse queries with
        any static-analysis diagnostic (see ``repro.analysis``).

        ``shed_threshold`` enables overload load shedding: when a source
        stream's ring-buffer backlog (slowest subscriber) would exceed
        this many records, the surplus of the incoming batch is *shed* —
        dropped at admission, counted per stream (:meth:`run_report`),
        charged to the cost model (``tuple_shed``) and reported to
        downstream sampling operators (``WindowStats.shed_tuples``) —
        instead of silently overwriting the ring.  ``None`` disables
        shedding (the default; the ring then drops oldest records under
        overload exactly as before).

        ``metrics`` / ``trace`` attach an instance-wide metrics registry
        and trace sink; every operator registered afterwards is bound to
        them (docs/OBSERVABILITY.md).  Defaults: a private registry and
        the no-op trace sink.  ``profile`` additionally charges wall time
        per operator call into ``operator_seconds{query,phase}``.

        ``validate_admission`` hardens the ingest edge: every fed payload
        is validated (and, where possible, coerced) against its stream
        schema, and records that fail — NaN window ids, wrong types,
        non-records — are routed to the dead-letter ``quarantine`` stream
        instead of raising mid-query.  Quarantined records are counted
        per stream and reported to downstream sampling operators, so the
        conservation identity becomes
        ``records == ingested + shed + quarantined``.  ``quarantine``
        defaults to a private bounded :class:`QuarantineStream`; pass one
        to share it with a resilient source or inspect it afterwards.

        ``vectorize`` executes selection and plain-aggregation operators
        on the columnar batch engine (DESIGN.md §11): ring-buffer output
        is wrapped into a :class:`RecordBatch` and whole batches flow
        through compiled numpy closures, with records rebuilt only at
        output edges.  Plans the batch engine cannot express (SFUNs,
        superaggregates, nondeterministic scalars, custom aggregates)
        fall back per operator to the tuple path; results are
        byte-identical either way.
        """
        self.cost = cost_model or NULL_COST_MODEL
        self.strict = strict
        self.shed_threshold = shed_threshold
        self.validate_admission = validate_admission
        self.vectorize = vectorize
        self.quarantine = (
            quarantine if quarantine is not None else QuarantineStream()
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace if trace is not None else NULL_TRACE
        self.profile = profile
        self.registries = Registries(
            schemas={},
            scalars=default_function_registry(),
            aggregates=default_aggregate_registry(),
            superaggregates=default_superaggregate_registry(),
            stateful=StatefulLibrary(),
        )
        self._ring_capacity = ring_capacity
        self._rings: Dict[str, RingBuffer] = {}
        self._queries: Dict[str, QueryHandle] = {}
        self._order: List[str] = []  # insertion order == topological order
        self._downstream: Dict[str, List[str]] = {}
        self._auto_counter = 0
        #: low-level subscriber ids while an incremental run is open
        self._session: Optional[Dict[str, int]] = None
        #: subscriber ids of the most recent run (for run_report)
        self._last_subscribers: Dict[str, int] = {}
        #: records shed at admission, per source stream
        self._shed: Dict[str, int] = {}
        #: records dead-lettered at admission, per source stream
        self._quarantined: Dict[str, int] = {}
        #: records refused at the serving edge by a tenant quota
        self._quota_shed: Dict[str, int] = {}
        #: records skipped at the serving edge by an open circuit breaker
        self._poison_skipped: Dict[str, int] = {}

    # -- registration -----------------------------------------------------------

    def register_stream(self, schema: StreamSchema) -> None:
        """Register a source stream (creates its ring buffer)."""
        if schema.name in self.registries.schemas:
            raise PlanningError(f"stream {schema.name!r} already registered")
        self.registries.schemas[schema.name] = schema
        self._rings[schema.name] = RingBuffer(self._ring_capacity)

    def use_stateful_library(self, library: StatefulLibrary) -> None:
        """Merge an SFUN pack into this instance's registries."""
        self.registries.stateful = self.registries.stateful.merge(library)

    def register_scalar(self, name: str, fn, deterministic: bool = True) -> None:
        self.registries.scalars.register(name, fn, deterministic=deterministic)

    def lint(self, text: str, name: str = "query"):
        """Statically analyze a query against this instance's registries
        without compiling or registering it; returns a ``LintResult``."""
        from repro.analysis.linter import lint_query

        return lint_query(text, self.registries, filename=name)

    # -- queries -----------------------------------------------------------------

    def add_query(
        self,
        text: str,
        name: Optional[str] = None,
        keep_results: bool = True,
        low_level_aggregation: bool = False,
        strict: Optional[bool] = None,
    ) -> QueryHandle:
        """Compile and register one query.

        The query's FROM clause may name a source stream or a previously
        registered query.  The query's own output schema is registered
        under ``name`` so later queries can read from it.

        ``low_level_aggregation`` lets a plain aggregation query run
        directly at the low level (paper Figure 1: "Low-level queries
        perform initial fast selection and aggregation") instead of behind
        an auto-inserted pass-through feeder — early data reduction that
        avoids the per-tuple copy cost.  Sampling queries always run at
        the high level (paper §7.2: the low level supports only selection
        and partial aggregation).

        ``strict`` (default: the instance's flag) refuses the query when
        the static analyzer reports any diagnostic, warnings included.
        """
        if name is None:
            self._auto_counter += 1
            name = f"q{self._auto_counter}"
        if name in self.registries.schemas:
            raise PlanningError(f"name {name!r} already in use")

        strict = self.strict if strict is None else strict
        plan = compile_query(text, self.registries, query_name=name, strict=strict)
        source = plan.analyzed.ast.from_stream
        reads_source_stream = source in self._rings

        if low_level_aggregation and plan.kind != "aggregation":
            raise PlanningError(
                "low_level_aggregation applies only to plain aggregation"
                f" queries, not {plan.kind!r}"
            )

        if (
            reads_source_stream
            and plan.kind in ("sampling", "aggregation")
            and not (plan.kind == "aggregation" and low_level_aggregation)
        ):
            # Paper §7.2: only selection runs at the low level, so a heavy
            # query against a raw stream needs a low-level feeder.  Insert
            # the pass-through selection the paper used (and measured).
            feeder_name = f"{name}__lowsel"
            self._add_passthrough_selection(source, feeder_name)
            try:
                text_rewritten = self._rewrite_from(text, source, feeder_name)
                plan = compile_query(
                    text_rewritten, self.registries, query_name=name,
                    strict=strict,
                )
            except Exception:
                # The feeder must not outlive the query it was inserted
                # for; a leaked __lowsel node would shadow the name and
                # keep forwarding (and charging for) every tuple.
                self._remove_query(feeder_name)
                raise
            source = feeder_name
            reads_source_stream = False

        level = "low" if reads_source_stream else "high"
        if level == "high" and source not in self._queries:
            raise PlanningError(
                f"query {name!r} reads from {source!r}, which is neither a"
                " source stream nor a registered query"
            )

        operator = build_operator(
            plan, self.cost, account=name, vectorize=self.vectorize
        )
        operator.bind_obs(self.metrics, self.trace, name)
        if (
            self.vectorize
            and getattr(operator, "execution_mode", "tuple") != "vectorized"
        ):
            # The fallback is a per-plan decision made here, once — put
            # it where reports and scrapes can see it, not just stderr.
            if getattr(operator, "vectorize_fallback", None) is None:
                operator.vectorize_fallback = "this plan kind runs per-tuple"
            self.metrics.counter(
                "vectorize_fallback_total",
                help="queries that fell back to the tuple path under"
                " vectorize=True",
                query=name,
            ).inc()
        handle = QueryHandle(
            name=name,
            text=text,
            level=level,
            source=source,
            operator=operator,
            keep_results=keep_results,
        )
        self._queries[name] = handle
        self._order.append(name)
        self._downstream.setdefault(source, []).append(name)
        self.registries.schemas[name] = operator.output_schema
        return handle

    def add_merge(self, name: str, sources: List[str]) -> QueryHandle:
        """Merge the outputs of several same-schema queries into one stream.

        The merge preserves ordering on the sources' shared ordered
        attribute, so windowed queries can read from it (Gigascope's MERGE
        operator).  Sources must be previously registered queries.
        """
        from repro.dsms.operators.merge import MergeOperator

        if name in self.registries.schemas:
            raise PlanningError(f"name {name!r} already in use")
        if len(sources) < 2:
            raise PlanningError("a merge needs at least two sources")
        schemas = []
        for source in sources:
            if source not in self._queries:
                raise PlanningError(
                    f"merge source {source!r} is not a registered query"
                )
            schemas.append(self._queries[source].output_schema)
        first = schemas[0]
        if any(s.attributes != first.attributes for s in schemas[1:]):
            raise PlanningError("merge sources must share one schema")

        operator = MergeOperator(first, sources)
        operator.bind_obs(self.metrics, self.trace, name)
        handle = QueryHandle(
            name=name,
            text=f"MERGE {':'.join(sources)}",
            level="high",
            source=sources[0],
            operator=operator,
            keep_results=True,
        )
        self._queries[name] = handle
        self._order.append(name)
        for source in sources:
            self._downstream.setdefault(source, []).append(name)
        self.registries.schemas[name] = operator.output_schema
        return handle

    def _add_passthrough_selection(self, stream: str, name: str) -> QueryHandle:
        schema = self.registries.schemas[stream]
        select_list = ", ".join(schema.names)
        # Internal plumbing, not user input: never strict-check it.
        return self.add_query(
            f"SELECT {select_list} FROM {stream}",
            name=name,
            keep_results=False,
            strict=False,
        )

    @staticmethod
    def _rewrite_from(text: str, old: str, new: str) -> str:
        """Replace the FROM stream name using the parsed AST's span.

        A textual search can match ``FROM <name>`` inside a string
        literal or a ``--`` comment and corrupt the query; the parser's
        FROM span points at the one real stream-name token.
        """
        from repro.dsms.parser import parse_query

        ast = parse_query(text)
        if ast.from_stream != old:
            raise PlanningError(
                f"could not rewrite FROM {old}: query reads from"
                f" {ast.from_stream!r}"
            )
        span = ast.clause_span("FROM")
        if span is None:  # pragma: no cover - parser always records it
            raise PlanningError(f"could not rewrite FROM {old}: no span")
        lines = text.split("\n")
        offset = sum(len(line) + 1 for line in lines[: span.line - 1])
        offset += span.col - 1
        if text[offset : offset + span.length] != old:
            raise PlanningError(
                f"could not rewrite FROM {old}: span does not cover the"
                " stream name"
            )
        return text[:offset] + new + text[offset + span.length :]

    def _remove_query(self, name: str) -> None:
        """Unregister a query added during a failed composite operation."""
        handle = self._queries.pop(name)
        self._order.remove(name)
        self.registries.schemas.pop(name, None)
        downstream = self._downstream.get(handle.source)
        if downstream and name in downstream:
            downstream.remove(name)
            if not downstream:
                del self._downstream[handle.source]

    def query(self, name: str) -> QueryHandle:
        try:
            return self._queries[name]
        except KeyError:
            raise ExecutionError(f"unknown query {name!r}") from None

    def query_handles(self) -> List[QueryHandle]:
        """Every registered query handle, in registration (topo) order."""
        return [self._queries[name] for name in self._order]

    # -- execution ----------------------------------------------------------------

    def run(self, records: Iterable[Record], batch_size: int = 4096) -> int:
        """Drive a record stream through the system; returns records read.

        Records are routed to the ring buffer of their schema's stream.
        After the iterator is exhausted every operator is flushed in
        topological order, so trailing windows are emitted.
        """
        self.start()
        total = 0
        batch: List[Record] = []
        try:
            for record in records:
                batch.append(record)
                if len(batch) >= batch_size:
                    total += self.feed(batch)
                    batch = []
            if batch:
                total += self.feed(batch)
        except BaseException:
            self._session = None  # abandon the run without flushing
            raise
        self.finish()
        return total

    # Incremental driving (used by the sharded runtime, which interleaves
    # feeding several instances): start() once, feed() any number of
    # batches, finish() once to flush trailing windows.

    def start(self) -> None:
        """Begin an incremental run: subscribe low-level queries."""
        if self._session is not None:
            raise ExecutionError("instance is already running; finish() first")
        self._session = self._subscribe_low_level()
        # Kept after finish() so run_report() can still read ring
        # drop/backlog counters for the completed run.
        self._last_subscribers = dict(self._session)

    def feed(self, records: List[Record]) -> int:
        """Push one batch of records through the DAG; returns batch size."""
        if self._session is None:
            raise ExecutionError("start() the instance before feeding it")
        if not records:
            return 0
        return self._run_batch(list(records), self._session)

    def finish(self) -> None:
        """End an incremental run: flush every operator in topo order."""
        if self._session is None:
            raise ExecutionError("instance is not running")
        try:
            self._flush_all()
        finally:
            self._session = None

    def inject(
        self,
        name: str,
        records: List[Record],
        from_source: Optional[str] = None,
    ) -> None:
        """Dispatch records directly into one registered query node.

        The serving layer's shared-feed replay path: when another
        instance already ran the shared low-level prefix over a batch,
        its captured outputs are injected here into this instance's
        downstream operator, bypassing ring admission.  Records flow
        through the operator (and onward) exactly as if the local
        low-level node had produced them.
        """
        if self._session is None:
            raise ExecutionError("start() the instance before injecting")
        handle = self.query(name)
        for record in records:
            self._dispatch(handle, record, from_source=from_source)

    def quota_shed(self, stream: str, count: int) -> None:
        """Account ``count`` records refused at the serving edge because
        the owning tenant is over its cost quota.

        Mirrors overload shedding (:meth:`_admit`) at the layer above
        admission: counted per stream, charged ``quota_shed`` cycles,
        and folded into the conservation identity, which widens to
        ``records == ingested + shed + quarantined + quota_shed``.
        """
        if count <= 0:
            return
        self._quota_shed[stream] = self._quota_shed.get(stream, 0) + count
        self.cost.charge(stream, "quota_shed", count)
        self.metrics.counter(
            "stream_records_total",
            help="records offered to the stream (before admission)",
            stream=stream,
        ).inc(count)
        self.metrics.counter(
            "stream_quota_shed_total",
            help="records refused at the serving edge by a tenant quota",
            stream=stream,
        ).inc(count)
        if self.trace.enabled:
            self.trace.emit("quota_shed", stream=stream, count=count)
        self._notify_shed(stream, count)

    def poison_shed(self, stream: str, count: int) -> None:
        """Account ``count`` records skipped at the serving edge because
        this instance's standing query is quarantined (its circuit
        breaker is open after repeated batch failures).

        The third serving-edge refusal, alongside overload shedding and
        tenant quotas: counted per stream, charged ``poison_skip``
        cycles, and folded into the conservation identity, which widens
        to ``records == ingested + shed + quarantined + quota_shed +
        poison_skipped``.
        """
        if count <= 0:
            return
        self._poison_skipped[stream] = (
            self._poison_skipped.get(stream, 0) + count
        )
        self.cost.charge(stream, "poison_skip", count)
        self.metrics.counter(
            "stream_records_total",
            help="records offered to the stream (before admission)",
            stream=stream,
        ).inc(count)
        self.metrics.counter(
            "serve_poison_skipped_total",
            help="records skipped at the serving edge because the query's"
            " circuit breaker is open",
            stream=stream,
        ).inc(count)
        if self.trace.enabled:
            self.trace.emit("poison_skip", stream=stream, count=count)
        self._notify_shed(stream, count)

    def _subscribe_low_level(self) -> Dict[str, int]:
        subscribers: Dict[str, int] = {}
        for name in self._order:
            handle = self._queries[name]
            if handle.level == "low":
                subscribers[name] = self._rings[handle.source].subscribe()
        return subscribers

    def _run_batch(self, batch: List[Record], subscribers: Dict[str, int]) -> int:
        by_stream: Dict[str, List[Record]] = {}
        offered: Dict[str, int] = {}
        for payload in batch:
            stream, record = self._admit_payload(payload)
            offered[stream] = offered.get(stream, 0) + 1
            if record is not None:
                by_stream.setdefault(stream, []).append(record)
        for stream, count in offered.items():
            self.metrics.counter(
                "stream_records_total",
                help="records offered to the stream (before admission)",
                stream=stream,
            ).inc(count)
        for stream, stream_records in by_stream.items():
            ring = self._rings[stream]
            if self.shed_threshold is not None:
                stream_records = self._admit(
                    stream, stream_records, ring, subscribers
                )
            self.metrics.counter(
                "stream_ingested_total",
                help="records admitted into the ring buffer",
                stream=stream,
            ).inc(len(stream_records))
            for record in stream_records:
                ring.push(record)
        for name, sid in subscribers.items():
            handle = self._queries[name]
            pending = self._rings[handle.source].poll(sid)
            if not pending:
                continue
            if hasattr(handle.operator, "process_batch"):
                from repro.dsms.vectorized import RecordBatch

                schema = self.registries.schemas[handle.source]
                self._dispatch_batch(
                    handle, RecordBatch.from_records(schema, list(pending))
                )
            else:
                for record in pending:
                    self._dispatch(handle, record)
        return len(batch)

    def _admit_payload(self, payload: Any) -> "tuple":
        """Route one fed payload to its stream, validating when enabled.

        Returns ``(stream_name, record_or_None)``; ``None`` means the
        payload was dead-lettered.  Without ``validate_admission`` this
        is the historical strict path: a non-record or a record for an
        unregistered stream raises :class:`ExecutionError`.
        """
        schema = payload.schema if isinstance(payload, Record) else None
        if schema is None and self.validate_admission and len(self._rings) == 1:
            # Raw payloads (mappings, value tuples) are only routable
            # when the instance hosts a single source stream.
            stream = next(iter(self._rings))
            schema = self.registries.schemas[stream]
        if schema is None:
            if self.validate_admission:
                self._quarantine_one(
                    "__unroutable__",
                    f"cannot route a {type(payload).__name__} payload to a"
                    " stream",
                    payload,
                )
                return "__unroutable__", None
            raise ExecutionError(
                f"cannot ingest a {type(payload).__name__}: not a Record"
            )
        stream = schema.name
        if stream not in self._rings:
            if self.validate_admission:
                self._quarantine_one(
                    stream, f"record for unregistered stream {stream!r}", payload
                )
                return stream, None
            raise ExecutionError(f"record for unregistered stream {stream!r}")
        if not self.validate_admission:
            return stream, payload
        try:
            return stream, coerce_record(schema, payload)
        except SchemaError as exc:
            self._quarantine_one(stream, str(exc), payload)
            return stream, None

    def _quarantine_one(self, stream: str, reason: str, payload: Any) -> None:
        """Dead-letter one refused payload: count, charge, notify, retain."""
        self._quarantined[stream] = self._quarantined.get(stream, 0) + 1
        self.cost.charge(stream, "tuple_quarantined", 1)
        self.metrics.counter(
            "stream_quarantined_total",
            help="records dead-lettered at admission (malformed input)",
            stream=stream,
        ).inc()
        if self.trace.enabled:
            self.trace.emit("quarantine", stream=stream, reason=reason)
        self.quarantine.put(reason, payload, source=stream)
        self._notify_quarantined(stream, 1)

    def _admit(
        self,
        stream: str,
        records: List[Record],
        ring: RingBuffer,
        subscribers: Dict[str, int],
    ) -> List[Record]:
        """Overload admission: step down intake instead of drowning the ring.

        When the slowest subscriber's backlog plus the incoming batch
        would exceed ``shed_threshold``, the surplus (newest records) is
        shed: counted, charged, and reported to downstream sampling
        operators so the degradation is deliberate and observable — the
        paper's drop-under-overload behavior (§1) made explicit.
        """
        backlog = max(
            (
                ring.backlog(sid)
                for name, sid in subscribers.items()
                if self._queries[name].source == stream
            ),
            default=0,
        )
        assert self.shed_threshold is not None
        allowed = max(0, self.shed_threshold - backlog)
        if len(records) <= allowed:
            return records
        shed = len(records) - allowed
        self._shed[stream] = self._shed.get(stream, 0) + shed
        self.cost.charge(stream, "tuple_shed", shed)
        self.metrics.counter(
            "stream_shed_total",
            help="records refused at admission under overload",
            stream=stream,
        ).inc(shed)
        if self.trace.enabled:
            self.trace.emit(
                "shed", stream=stream, count=shed, backlog=backlog
            )
        self._notify_shed(stream, shed)
        return records[:allowed]

    def _notify_shed(self, stream: str, count: int) -> None:
        """Tell every query downstream of ``stream`` (transitively) that
        ``count`` of its input tuples were shed, so sampling operators can
        expose the loss in their per-window stats."""
        seen = set()
        frontier = [stream]
        while frontier:
            node = frontier.pop()
            for child in self._downstream.get(node, ()):
                if child in seen:
                    continue
                seen.add(child)
                operator = self._queries[child].operator
                note = getattr(operator, "note_shed", None)
                if note is not None:
                    note(count)
                frontier.append(child)

    def _notify_quarantined(self, stream: str, count: int) -> None:
        """Tell every query downstream of ``stream`` (transitively) that
        ``count`` of its input tuples were dead-lettered at admission, so
        sampling operators can expose the loss in their window stats."""
        seen = set()
        frontier = [stream]
        while frontier:
            node = frontier.pop()
            for child in self._downstream.get(node, ()):
                if child in seen:
                    continue
                seen.add(child)
                operator = self._queries[child].operator
                note = getattr(operator, "note_quarantined", None)
                if note is not None:
                    note(count)
                frontier.append(child)

    def _dispatch(
        self, handle: QueryHandle, record: Record, from_source: Optional[str] = None
    ) -> None:
        operator = handle.operator
        if self.profile:
            started = perf_counter()
        if hasattr(operator, "process_from"):
            outputs = operator.process_from(from_source, record)
        else:
            outputs = operator.process(record)
        if self.profile:
            self.metrics.histogram(
                "operator_seconds",
                help="wall time per operator call",
                query=handle.name,
                phase="process",
            ).observe(perf_counter() - started)
        if outputs:
            self._propagate(handle, outputs)

    def _dispatch_batch(self, handle: QueryHandle, batch: Any) -> None:
        """Feed one column batch to a vectorized operator (and onward)."""
        operator = handle.operator
        if self.profile:
            started = perf_counter()
        outputs = operator.process_batch(batch)
        if self.profile:
            self.metrics.histogram(
                "operator_seconds",
                help="wall time per operator call",
                query=handle.name,
                phase="process",
            ).observe(perf_counter() - started)
        if outputs is not None and len(outputs):
            self._propagate_batch(handle, outputs)

    def _propagate_batch(self, handle: QueryHandle, outputs: Any) -> None:
        """Batch analogue of :meth:`_propagate`: records are rebuilt only
        where a row-wise consumer (the results sink, a tuple-path child)
        actually needs them; vectorized children receive the batch."""
        records: Optional[List[Record]] = None
        if handle.keep_results:
            records = outputs.to_records()
            handle.results.extend(records)
        downstream = self._downstream.get(handle.name)
        if not downstream:
            return
        count = len(outputs)
        handle.forwarded += count
        self.cost.charge(handle.name, "tuple_copy", count)
        self.metrics.counter(
            "query_forwarded_total",
            help="tuples pushed to downstream queries",
            query=handle.name,
        ).inc(count)
        for child_name in downstream:
            child = self._queries[child_name]
            if hasattr(child.operator, "process_batch"):
                self._dispatch_batch(child, outputs)
            else:
                if records is None:
                    records = outputs.to_records()
                for record in records:
                    self._dispatch(child, record, from_source=handle.name)

    def _propagate(self, handle: QueryHandle, outputs: List[Record]) -> None:
        if handle.keep_results:
            handle.results.extend(outputs)
        downstream = self._downstream.get(handle.name)
        if not downstream:
            return
        # Forwarding to another query is the copy the paper charges for.
        handle.forwarded += len(outputs)
        self.cost.charge(handle.name, "tuple_copy", len(outputs))
        self.metrics.counter(
            "query_forwarded_total",
            help="tuples pushed to downstream queries",
            query=handle.name,
        ).inc(len(outputs))
        for child_name in downstream:
            child = self._queries[child_name]
            for record in outputs:
                self._dispatch(child, record, from_source=handle.name)

    def _flush_all(self) -> None:
        for name in self._order:
            handle = self._queries[name]
            if self.profile:
                started = perf_counter()
            outputs = handle.operator.flush()
            if self.profile:
                self.metrics.histogram(
                    "operator_seconds",
                    help="wall time per operator call",
                    query=name,
                    phase="flush",
                ).observe(perf_counter() - started)
            if outputs:
                self._propagate(handle, outputs)
            # A flushed node is exhausted: release any downstream merge
            # watermark it was holding.
            for child_name in self._downstream.get(name, ()):
                child = self._queries[child_name]
                if hasattr(child.operator, "end_source"):
                    released = child.operator.end_source(name)
                    if released:
                        self._propagate(child, released)

    # -- crash-recovery checkpoints -------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Picklable snapshot of all mutable run state.

        Captures every query node: operator state (see
        ``Operator.checkpoint``), retained results, and forwarded-tuple
        counters — plus shed counters and cost balances.  Ring buffers
        are deliberately *not* captured: a restored instance starts with
        empty rings, and the supervisor replays the journalled batches
        that postdate the checkpoint to refill the pipeline.
        """
        queries = {}
        for name in self._order:
            handle = self._queries[name]
            queries[name] = {
                "operator": handle.operator.checkpoint(),
                # Shallow copy: records are immutable once emitted, the
                # list must be decoupled from the still-growing handle.
                "results": list(handle.results),
                "forwarded": handle.forwarded,
            }
        return {
            "version": 2,
            "queries": queries,
            "shed": dict(self._shed),
            "quarantined": dict(self._quarantined),
            "quota_shed": dict(self._quota_shed),
            "poison_skipped": dict(self._poison_skipped),
            "cost_accounts": self.cost.accounts() if self.cost.enabled else {},
            # v2: metric/trace state rides along so a supervised restart
            # resumes counting exactly where the checkpoint left off.
            "metrics": self.metrics.checkpoint(),
            "trace": self.trace.checkpoint(),
        }

    def restore(self, snapshot: Dict[str, Any], restore_cost: bool = False) -> None:
        """Reinstate a :meth:`checkpoint` taken from an identically
        registered instance (same streams and queries, in order).

        ``restore_cost`` also resets this instance's cost model to the
        snapshot's balances — only safe when the model is private to this
        instance (a forked worker's copy), not shared across shards.
        """
        queries = snapshot["queries"]
        if set(queries) != set(self._order):
            raise ExecutionError(
                "checkpoint does not match this instance: snapshot has"
                f" queries {sorted(queries)}, instance has {sorted(self._order)}"
            )
        for name in self._order:
            entry = queries[name]
            handle = self._queries[name]
            handle.operator.restore(entry["operator"])
            handle.results[:] = entry["results"]
            handle.forwarded = entry["forwarded"]
        self._shed = dict(snapshot["shed"])
        # Pre-quarantine snapshots lack the key; counters start at zero.
        self._quarantined = dict(snapshot.get("quarantined", {}))
        self._quota_shed = dict(snapshot.get("quota_shed", {}))
        self._poison_skipped = dict(snapshot.get("poison_skipped", {}))
        if restore_cost and self.cost.enabled:
            self.cost.reset()
            self.cost.absorb(snapshot["cost_accounts"])
        # v1 snapshots predate the observability layer; leave counters as
        # they are (zero on a fresh worker) rather than guessing.
        if "metrics" in snapshot:
            self.metrics.restore(snapshot["metrics"])
        if "trace" in snapshot and self.trace.enabled:
            self.trace.restore(snapshot["trace"])

    # -- reporting ------------------------------------------------------------------

    def results(self, name: str) -> List[Record]:
        return self.query(name).results

    def run_report(self) -> Dict[str, Any]:
        """Overload/degradation counters for the most recent run.

        ``streams``: per source stream, ring-buffer ``drops`` (slowest
        subscriber), remaining ``backlog``, ``shed`` records, and
        ``quarantined`` (dead-lettered) records.
        ``queries``: per sampling query, late / incomparable / shed /
        quarantined tuple totals over all windows.  Everything here is a
        tuple the answer silently does *not* include — the report makes
        degradation visible instead of silent.
        """
        self._sync_ring_metrics()
        streams: Dict[str, Dict[str, int]] = {}
        for stream in self._rings:
            streams[stream] = {
                "drops": int(self.metrics.value("ring_dropped", stream=stream)),
                "backlog": int(self.metrics.value("ring_backlog", stream=stream)),
                "shed": int(
                    self.metrics.value("stream_shed_total", stream=stream)
                ),
                "quarantined": int(
                    self.metrics.value("stream_quarantined_total", stream=stream)
                ),
                "quota_shed": int(
                    self.metrics.value("stream_quota_shed_total", stream=stream)
                ),
                "poison_skipped": int(
                    self.metrics.value(
                        "serve_poison_skipped_total", stream=stream
                    )
                ),
            }
        queries: Dict[str, Dict[str, int]] = {}
        for name in self._order:
            operator = self._queries[name].operator
            if getattr(operator, "overload_counters", None) is None:
                continue
            value = self.metrics.value
            queries[name] = {
                "late_tuples": int(
                    value("operator_late_tuples_total", query=name,
                          operator=operator.kind_label)
                ),
                "incomparable_tuples": int(
                    value("operator_incomparable_tuples_total", query=name,
                          operator=operator.kind_label)
                ),
                "shed_tuples": int(
                    value("operator_shed_tuples_total", query=name,
                          operator=operator.kind_label)
                ),
                "quarantined_tuples": int(
                    value("operator_quarantined_tuples_total", query=name,
                          operator=operator.kind_label)
                ),
            }
        report: Dict[str, Any] = {"streams": streams, "queries": queries}
        if self.vectorize:
            fallbacks = {
                name: self._queries[name].operator.vectorize_fallback
                for name in self._order
                if getattr(
                    self._queries[name].operator, "execution_mode", "tuple"
                )
                != "vectorized"
            }
            if fallbacks:
                report["vectorize"] = {"fallbacks": fallbacks}
        return report

    def _sync_ring_metrics(self) -> None:
        """Mirror ring-buffer drop/backlog counts into gauges.

        Rings are polled state, not events, so the registry mirrors them
        on demand (report/export time) rather than per push.
        """
        for stream, ring in self._rings.items():
            sids = [
                sid
                for name, sid in self._last_subscribers.items()
                if self._queries[name].source == stream
            ]
            self.metrics.gauge(
                "ring_dropped",
                help="records overwritten unread (slowest subscriber)",
                stream=stream,
            ).set(max((ring.drops(sid) for sid in sids), default=0))
            self.metrics.gauge(
                "ring_backlog",
                help="records admitted but not yet consumed",
                stream=stream,
            ).set(max((ring.backlog(sid) for sid in sids), default=0))

    def explain(self) -> str:
        """Render the query DAG (levels, sources, operators, cost)."""
        from repro.dsms.explain import explain_instance

        return explain_instance(self)

    def cpu_percent(self, name: str, stream_seconds: float) -> float:
        """CPU% of one query node under the cost model."""
        return self.cost.cpu_percent(name, stream_seconds)
