"""Sharded parallel runtime: hash-partitioned SPLIT / MERGE execution.

The paper runs its sampling operator inside Gigascope on live 100 kpps
feeds; the serial :class:`~repro.dsms.runtime.Gigascope` instance is the
throughput ceiling of this reproduction.  Group-by sampling is
embarrassingly partitionable — every algorithm's state (reservoir,
subset-sum threshold, heavy-hitter counters) lives in group/supergroup
tables keyed by group-by values — so hash-partitioning the source stream
on a non-ordered group-by key makes all operator state shard-local, and
the existing :class:`~repro.dsms.operators.merge.MergeOperator` (the
paper's ordered merge) recombines shard outputs without disturbing the
windowed ordering downstream queries rely on.

Architecture::

                       +-> shard 0: Gigascope (full query DAG) -+
    records --SPLIT----+-> shard 1: Gigascope (full query DAG) -+--MERGE--> results
     (hash of          +-> ...                                  -+  (per query,
      partition col)                                                watermark)

* **SPLIT** — each source stream gets one *partition column*, inferred
  by the planner (:func:`repro.dsms.parser.planner.partition_info`) from
  every query reading the stream; records route to shard
  ``stable_hash(record[column]) % shards``.
* **shards** — full replicas of the query DAG.  ``processes=False``
  (default) drives them in-process, batch-interleaved and fully
  deterministic; ``processes=True`` forks one worker per shard and
  exchanges pickled record batches over queues (POSIX ``fork`` start
  method, so SFUN closures need no pickling).
* **MERGE** — one :class:`MergeOperator` per registered query recombines
  the shard outputs on the query's ordered output attribute; a shard
  that finishes releases its watermark via ``end_source``.

Semantics: for queries whose partition constraints are satisfiable (see
``partition_info``), a sharded run produces the same window output as
the serial runtime up to within-window row order (the serial operator
emits a window's groups in hash-table insertion order, which interleaves
shard-owned keys arbitrarily; :func:`canonical_rows` gives the common
canonical form).  One documented edge: a shard that receives *no* tuple
for an entire window never observes that window boundary, so
window-to-window SFUN carryover on that shard skips the silent window
(the serial operator would have dropped the carryover state); dense
feeds — the paper's operating regime — never hit this.

Cost accounting: every shard charges the shared cost model (in-process)
or its own forked copy whose balances the parent absorbs afterwards
(processes), both under the plain query name — so ``cpu_percent`` and
the Fig 5/6 benchmarks read one aggregate account per query, exactly as
with the serial runtime.
"""

from __future__ import annotations

import multiprocessing
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, PlanningError
from repro.dsms.cost import CostModel, NULL_COST_MODEL
from repro.dsms.operators.merge import MergeOperator
from repro.dsms.parser import compile_query
from repro.dsms.parser.planner import partition_info
from repro.dsms.runtime import Gigascope, QueryHandle
from repro.dsms.stateful import StatefulLibrary
from repro.streams.records import Record
from repro.streams.schema import StreamSchema


def stable_hash(value: Any) -> int:
    """Deterministic, process-independent hash for partition routing.

    Python's builtin ``hash`` is salted per process for strings, so it
    cannot route records consistently between a parent and its forked
    workers; CRC32 of the value's ``repr`` is stable everywhere.
    """
    return zlib.crc32(repr(value).encode("utf-8"))


def canonical_rows(records: Sequence[Record]) -> List[Tuple[Any, ...]]:
    """Window output in canonical order: sorted by the ordered attribute,
    then by the full value tuple.

    Within a window the serial operator emits groups in insertion order
    while the sharded merge emits them in shard order; both orders are
    permutations of the same rows, and sorting makes serial and sharded
    outputs comparable byte for byte.
    """
    rows: List[Tuple[Any, Tuple[Any, ...]]] = []
    for record in records:
        ordered = record.schema.ordered_attributes()
        key_index = record.schema.index_of(ordered[0].name) if ordered else 0
        rows.append((record.values[key_index], record.values))
    rows.sort()
    return [values for _, values in rows]


@dataclass
class ShardedQueryHandle:
    """One query registered on every shard, with the merged sink."""

    name: str
    text: str
    output_schema: StreamSchema
    keep_results: bool = True
    #: merged (order-recombined) output across all shards
    results: List[Record] = field(default_factory=list)
    #: the per-shard handles (note: in ``processes`` mode the parent's
    #: copies stay empty — shard results live in the worker processes)
    shard_handles: List[QueryHandle] = field(default_factory=list)


@dataclass(frozen=True)
class _Node:
    """Partition bookkeeping for one stream or query node."""

    #: source streams this node transitively reads from
    roots: frozenset
    #: root column names that stay shard-colocated through this node
    passthrough: frozenset


class _MergeSink:
    """Recombines one query's shard outputs through a MergeOperator."""

    def __init__(self, handle: ShardedQueryHandle, shards: int) -> None:
        self.handle = handle
        self.sources = [f"shard{i}" for i in range(shards)]
        # MergeOperator needs >= 2 sources; one shard is a pass-through.
        self.operator = (
            MergeOperator(handle.output_schema, self.sources)
            if shards > 1
            else None
        )
        self.cursors = [0] * shards

    def feed(self, shard: int, records: Sequence[Record]) -> None:
        if self.operator is None:
            self._sink(list(records))
            return
        for record in records:
            self._sink(self.operator.process_from(self.sources[shard], record))

    def drain(self, shard: int, handle: QueryHandle) -> None:
        """Feed any records the shard produced since the last drain."""
        produced = handle.results
        cursor = self.cursors[shard]
        if len(produced) > cursor:
            self.feed(shard, produced[cursor:])
            self.cursors[shard] = len(produced)

    def end_source(self, shard: int) -> None:
        if self.operator is not None:
            self._sink(self.operator.end_source(self.sources[shard]))

    def _sink(self, outputs: List[Record]) -> None:
        if outputs and self.handle.keep_results:
            self.handle.results.extend(outputs)


class ShardedGigascope:
    """A DSMS instance that executes every query on N parallel shards.

    Mirrors the :class:`Gigascope` API (``register_stream``,
    ``use_stateful_library``, ``add_query``, ``add_merge``, ``run``,
    ``results``, ``cpu_percent``, ``explain``); queries must satisfy the
    partition rules of :func:`partition_info` or ``add_query`` raises a
    :class:`PlanningError` explaining why the query cannot shard.
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        processes: bool = False,
        cost_model: Optional[CostModel] = None,
        ring_capacity: int = 65536,
        strict: bool = False,
    ) -> None:
        if shards < 1:
            raise PlanningError("shards must be >= 1")
        self.shards = shards
        self.processes = processes
        self.cost = cost_model or NULL_COST_MODEL
        self.strict = strict
        # Strictness is enforced once, centrally, in add_query; the shard
        # instances receive pre-vetted text and never re-lint it.
        self._instances = [
            Gigascope(cost_model=self.cost, ring_capacity=ring_capacity)
            for _ in range(shards)
        ]
        self._handles: Dict[str, ShardedQueryHandle] = {}
        self._order: List[str] = []
        self._nodes: Dict[str, _Node] = {}
        self._streams: List[str] = []
        #: per root stream: (query name, acceptable partition columns)
        self._constraints: Dict[str, List[Tuple[str, frozenset]]] = {}
        self._partition: Dict[str, str] = {}
        self._auto_counter = 0

    # -- registration -----------------------------------------------------------

    @property
    def registries(self):
        """Registries of shard 0 (all shards are kept identical)."""
        return self._instances[0].registries

    def register_stream(self, schema: StreamSchema) -> None:
        for instance in self._instances:
            instance.register_stream(schema)
        nonordered = frozenset(
            a.name for a in schema.attributes if not a.ordering.is_ordered
        )
        self._nodes[schema.name] = _Node(frozenset({schema.name}), nonordered)
        self._streams.append(schema.name)
        self._constraints[schema.name] = []

    def use_stateful_library(self, library: StatefulLibrary) -> None:
        for instance in self._instances:
            instance.use_stateful_library(library)

    def register_scalar(self, name: str, fn, deterministic: bool = True) -> None:
        for instance in self._instances:
            instance.register_scalar(name, fn, deterministic=deterministic)

    def lint(self, text: str, name: str = "query"):
        return self._instances[0].lint(text, name=name)

    # -- queries -----------------------------------------------------------------

    def add_query(
        self,
        text: str,
        name: Optional[str] = None,
        keep_results: bool = True,
        low_level_aggregation: bool = False,
        strict: Optional[bool] = None,
    ) -> ShardedQueryHandle:
        """Register one query on every shard (see :meth:`Gigascope.add_query`).

        Beyond the serial checks, the query must be *shardable*: its
        output needs an ordered attribute (for the recombining MERGE)
        and its operator state must be partitionable on some non-ordered
        column of the source stream (see :func:`partition_info`).
        """
        if name is None:
            self._auto_counter += 1
            name = f"q{self._auto_counter}"
        if name in self._nodes:
            raise PlanningError(f"name {name!r} already in use")

        strict = self.strict if strict is None else strict
        plan = compile_query(
            text, self._instances[0].registries, query_name=name, strict=strict
        )
        source = plan.analyzed.ast.from_stream
        node = self._nodes.get(source)
        if node is None:
            raise PlanningError(
                f"query {name!r} reads from {source!r}, which is neither a"
                " source stream nor a registered query"
            )
        if not plan.output_schema.ordered_attributes():
            raise PlanningError(
                f"cannot shard query {name!r}: its output has no ordered"
                " attribute for the recombining MERGE; select the window"
                " variable (an ordered column) first"
            )

        info = partition_info(plan)
        if info.candidates is not None:
            effective = frozenset(info.candidates) & node.passthrough
            if not effective:
                detail = info.reason or (
                    "none of its candidate partition columns"
                    f" {sorted(info.candidates)} survives the upstream"
                    f" query chain (colocated columns: {sorted(node.passthrough)})"
                )
                raise PlanningError(
                    f"cannot shard query {name!r}: {detail}"
                )
            for root in node.roots:
                self._constraints[root].append((name, effective))
        self._nodes[name] = _Node(
            node.roots, frozenset(info.passthrough) & node.passthrough
        )

        shard_handles = [
            instance.add_query(
                text,
                name=name,
                keep_results=True,  # shard outputs feed the merge
                low_level_aggregation=low_level_aggregation,
                strict=False,
            )
            for instance in self._instances
        ]
        handle = ShardedQueryHandle(
            name=name,
            text=text,
            output_schema=shard_handles[0].output_schema,
            keep_results=keep_results,
            shard_handles=shard_handles,
        )
        self._handles[name] = handle
        self._order.append(name)
        return handle

    def add_merge(self, name: str, sources: List[str]) -> ShardedQueryHandle:
        """Merge same-schema queries inside every shard (then re-merge
        the shard outputs like any other query)."""
        if name in self._nodes:
            raise PlanningError(f"name {name!r} already in use")
        nodes = []
        for source in sources:
            if source not in self._handles:
                raise PlanningError(
                    f"merge source {source!r} is not a registered query"
                )
            nodes.append(self._nodes[source])
        shard_handles = [
            instance.add_merge(name, sources) for instance in self._instances
        ]
        roots: frozenset = frozenset().union(*(n.roots for n in nodes))
        passthrough = nodes[0].passthrough
        for n in nodes[1:]:
            passthrough &= n.passthrough
        self._nodes[name] = _Node(roots, passthrough)
        handle = ShardedQueryHandle(
            name=name,
            text=shard_handles[0].text,
            output_schema=shard_handles[0].output_schema,
            keep_results=True,
            shard_handles=shard_handles,
        )
        self._handles[name] = handle
        self._order.append(name)
        return handle

    def query(self, name: str) -> ShardedQueryHandle:
        try:
            return self._handles[name]
        except KeyError:
            raise ExecutionError(f"unknown query {name!r}") from None

    def results(self, name: str) -> List[Record]:
        return self.query(name).results

    # -- partition resolution -----------------------------------------------------

    def partition_column(self, stream: str) -> str:
        """The partition column chosen for one source stream."""
        self._resolve_partitions()
        try:
            return self._partition[stream]
        except KeyError:
            raise ExecutionError(f"unknown stream {stream!r}") from None

    def _resolve_partitions(self) -> None:
        for stream in self._streams:
            constraints = self._constraints[stream]
            if constraints:
                common = frozenset.intersection(
                    *(candidates for _, candidates in constraints)
                )
                if not common:
                    per_query = ", ".join(
                        f"{query}: {sorted(candidates)}"
                        for query, candidates in constraints
                    )
                    raise PlanningError(
                        f"stream {stream!r} has no partition column acceptable"
                        f" to every query ({per_query}); split the queries"
                        " across instances or align their keys"
                    )
            else:
                common = self._nodes[stream].passthrough
                if not common:
                    raise PlanningError(
                        f"stream {stream!r} has no non-ordered attribute to"
                        " partition on"
                    )
            # Deterministic choice: first acceptable column in schema order.
            schema = self._instances[0].registries.schemas[stream]
            self._partition[stream] = next(
                name for name in schema.names if name in common
            )

    def _route_indices(self) -> Dict[str, int]:
        self._resolve_partitions()
        schemas = self._instances[0].registries.schemas
        return {
            stream: schemas[stream].index_of(column)
            for stream, column in self._partition.items()
        }

    # -- execution ----------------------------------------------------------------

    def run(self, records: Iterable[Record], batch_size: int = 4096) -> int:
        """SPLIT the record stream across the shards, MERGE their outputs.

        Returns the number of records read (like :meth:`Gigascope.run`).
        """
        route = self._route_indices()
        sinks = [_MergeSink(self._handles[name], self.shards) for name in self._order]
        if self.processes:
            return self._run_processes(records, batch_size, route, sinks)
        return self._run_inline(records, batch_size, route, sinks)

    def _split(
        self, batch: Sequence[Record], route: Dict[str, int]
    ) -> List[List[Record]]:
        buckets: List[List[Record]] = [[] for _ in range(self.shards)]
        for record in batch:
            try:
                index = route[record.schema.name]
            except KeyError:
                raise ExecutionError(
                    f"record for unregistered stream {record.schema.name!r}"
                ) from None
            buckets[stable_hash(record.values[index]) % self.shards].append(record)
        return buckets

    def _run_inline(
        self,
        records: Iterable[Record],
        batch_size: int,
        route: Dict[str, int],
        sinks: List[_MergeSink],
    ) -> int:
        """Deterministic in-process mode: shards advance batch by batch."""
        for instance in self._instances:
            instance.start()
        total = 0
        batch: List[Record] = []

        def feed_round(batch: List[Record]) -> int:
            buckets = self._split(batch, route)
            for shard, bucket in enumerate(buckets):
                if bucket:
                    self._instances[shard].feed(bucket)
            for sink in sinks:
                for shard in range(self.shards):
                    sink.drain(shard, sink.handle.shard_handles[shard])
            return len(batch)

        try:
            for record in records:
                batch.append(record)
                if len(batch) >= batch_size:
                    total += feed_round(batch)
                    batch = []
            if batch:
                total += feed_round(batch)
            for shard, instance in enumerate(self._instances):
                instance.finish()
                for sink in sinks:
                    sink.drain(shard, sink.handle.shard_handles[shard])
                    sink.end_source(shard)
        except BaseException:
            for instance in self._instances:
                instance._session = None
            raise
        return total

    def _run_processes(
        self,
        records: Iterable[Record],
        batch_size: int,
        route: Dict[str, int],
        sinks: List[_MergeSink],
    ) -> int:
        """Fork one worker per shard; exchange pickled record batches."""
        try:
            context = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise ExecutionError(
                "processes=True needs the 'fork' start method (POSIX);"
                " use the in-process mode instead"
            ) from exc
        in_queues = [context.Queue() for _ in range(self.shards)]
        out_queue = context.Queue()
        workers = [
            context.Process(
                target=_shard_worker,
                args=(shard, self._instances[shard], list(self._order),
                      in_queues[shard], out_queue),
                daemon=True,
            )
            for shard in range(self.shards)
        ]
        for worker in workers:
            worker.start()

        total = 0
        batch: List[Record] = []
        try:
            for record in records:
                batch.append(record)
                if len(batch) >= batch_size:
                    total += self._ship(batch, route, in_queues)
                    batch = []
            if batch:
                total += self._ship(batch, route, in_queues)
        finally:
            for queue in in_queues:
                queue.put(None)

        failures = []
        shard_results: Dict[int, Dict[str, List[Record]]] = {}
        for _ in range(self.shards):
            shard, results, accounts, error = out_queue.get()
            if error is not None:
                failures.append(f"shard {shard}: {error}")
                continue
            shard_results[shard] = results
            self.cost.absorb(accounts)
        for worker in workers:
            worker.join()
        if failures:
            raise ExecutionError("sharded run failed: " + "; ".join(failures))

        for sink in sinks:
            for shard in range(self.shards):
                sink.feed(shard, shard_results[shard].get(sink.handle.name, []))
                sink.end_source(shard)
        return total

    def _ship(
        self,
        batch: List[Record],
        route: Dict[str, int],
        in_queues: List,
    ) -> int:
        for shard, bucket in enumerate(self._split(batch, route)):
            if bucket:
                in_queues[shard].put(bucket)
        return len(batch)

    # -- reporting ------------------------------------------------------------------

    def cpu_percent(self, name: str, stream_seconds: float) -> float:
        """Aggregate CPU% of one query across all shards (one account)."""
        return self.cost.cpu_percent(name, stream_seconds)

    def explain(self) -> str:
        """Render the sharding layout plus one shard's query DAG."""
        lines = [
            f"ShardedGigascope(shards={self.shards},"
            f" processes={self.processes})"
        ]
        try:
            self._resolve_partitions()
            for stream in self._streams:
                lines.append(
                    f"  split {stream} by hash({self._partition[stream]})"
                    f" % {self.shards}"
                )
        except PlanningError as exc:
            lines.append(f"  (partition unresolved: {exc})")
        for name in self._order:
            lines.append(f"  merge {name} on its ordered attribute")
        lines.append("  per-shard DAG:")
        lines.extend("    " + line for line in self._instances[0].explain().splitlines())
        return "\n".join(lines)


def _shard_worker(
    shard: int,
    instance: Gigascope,
    query_names: List[str],
    in_queue,
    out_queue,
) -> None:
    """Worker-process loop: drain batches, run the shard DAG, ship results.

    Runs in a forked child, so ``instance`` (including closures inside
    SFUN libraries) is inherited by memory copy rather than pickled; only
    record batches, result records and cost balances cross the process
    boundary, and those pickle cleanly.
    """
    try:
        if instance.cost.enabled:
            # The fork copied the parent's balances; count only this
            # worker's own charges so the parent can absorb the delta.
            instance.cost.reset()
        instance.start()
        while True:
            batch = in_queue.get()
            if batch is None:
                break
            instance.feed(batch)
        instance.finish()
        results = {name: instance.query(name).results for name in query_names}
        accounts = instance.cost.accounts() if instance.cost.enabled else {}
        out_queue.put((shard, results, accounts, None))
    except BaseException as exc:  # pragma: no cover - exercised via parent
        out_queue.put((shard, {}, {}, repr(exc)))
