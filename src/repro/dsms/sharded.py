"""Sharded parallel runtime: hash-partitioned SPLIT / MERGE execution.

The paper runs its sampling operator inside Gigascope on live 100 kpps
feeds; the serial :class:`~repro.dsms.runtime.Gigascope` instance is the
throughput ceiling of this reproduction.  Group-by sampling is
embarrassingly partitionable — every algorithm's state (reservoir,
subset-sum threshold, heavy-hitter counters) lives in group/supergroup
tables keyed by group-by values — so hash-partitioning the source stream
on a non-ordered group-by key makes all operator state shard-local, and
the existing :class:`~repro.dsms.operators.merge.MergeOperator` (the
paper's ordered merge) recombines shard outputs without disturbing the
windowed ordering downstream queries rely on.

Architecture::

                       +-> shard 0: Gigascope (full query DAG) -+
    records --SPLIT----+-> shard 1: Gigascope (full query DAG) -+--MERGE--> results
     (hash of          +-> ...                                  -+  (per query,
      partition col)                                                watermark)

* **SPLIT** — each source stream gets one *partition column*, inferred
  by the planner (:func:`repro.dsms.parser.planner.partition_info`) from
  every query reading the stream; records route to shard
  ``stable_hash(record[column]) % shards``.
* **shards** — full replicas of the query DAG.  ``processes=False``
  (default) drives them in-process, batch-interleaved and fully
  deterministic; ``processes=True`` forks one worker per shard and
  exchanges pickled record batches over queues (POSIX ``fork`` start
  method, so SFUN closures need no pickling).
* **MERGE** — one :class:`MergeOperator` per registered query recombines
  the shard outputs on the query's ordered output attribute; a shard
  that finishes releases its watermark via ``end_source``.

Semantics: for queries whose partition constraints are satisfiable (see
``partition_info``), a sharded run produces the same window output as
the serial runtime up to within-window row order (the serial operator
emits a window's groups in hash-table insertion order, which interleaves
shard-owned keys arbitrarily; :func:`canonical_rows` gives the common
canonical form).  One documented edge: a shard that receives *no* tuple
for an entire window never observes that window boundary, so
window-to-window SFUN carryover on that shard skips the silent window
(the serial operator would have dropped the carryover state); dense
feeds — the paper's operating regime — never hit this.

Cost accounting: every shard charges the shared cost model (in-process)
or its own forked copy whose balances the parent absorbs afterwards
(processes), both under the plain query name — so ``cpu_percent`` and
the Fig 5/6 benchmarks read one aggregate account per query, exactly as
with the serial runtime.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as _queue
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, PlanningError
from repro.dsms.cost import CostModel, NULL_COST_MODEL
from repro.dsms.operators.merge import MergeOperator
from repro.dsms.parser import compile_query
from repro.dsms.parser.planner import partition_info
from repro.dsms.rebalance import (
    MigrationDeferred,
    RebalancePolicy,
    Rebalancer,
    RoutingTable,
    migrate_states,
)
from repro.dsms.resilience import ShardSupervisor, SupervisionPolicy, SupervisionReport
from repro.dsms.runtime import Gigascope, QueryHandle
from repro.dsms.stateful import StatefulLibrary
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACE, TraceSink
from repro.streams.records import Record
from repro.streams.schema import StreamSchema, coerce_record
from repro.streams.sources import QuarantineStream
from repro.errors import SchemaError


def stable_hash(value: Any) -> int:
    """Deterministic, process-independent hash for partition routing.

    Python's builtin ``hash`` is salted per process for strings, so it
    cannot route records consistently between a parent and its forked
    workers; CRC32 of the value's ``repr`` is stable everywhere.
    """
    return zlib.crc32(repr(value).encode("utf-8"))


def canonical_rows(records: Sequence[Record]) -> List[Tuple[Any, ...]]:
    """Window output in canonical order: sorted by the ordered attribute,
    then by the full value tuple.

    Within a window the serial operator emits groups in insertion order
    while the sharded merge emits them in shard order; both orders are
    permutations of the same rows, and sorting makes serial and sharded
    outputs comparable byte for byte.
    """
    rows: List[Tuple[Any, Tuple[Any, ...]]] = []
    for record in records:
        ordered = record.schema.ordered_attributes()
        key_index = record.schema.index_of(ordered[0].name) if ordered else 0
        rows.append((record.values[key_index], record.values))
    rows.sort()
    return [values for _, values in rows]


@dataclass
class ShardedQueryHandle:
    """One query registered on every shard, with the merged sink."""

    name: str
    text: str
    output_schema: StreamSchema
    keep_results: bool = True
    #: merged (order-recombined) output across all shards
    results: List[Record] = field(default_factory=list)
    #: the per-shard handles (note: in ``processes`` mode the parent's
    #: copies stay empty — shard results live in the worker processes)
    shard_handles: List[QueryHandle] = field(default_factory=list)


@dataclass(frozen=True)
class _Node:
    """Partition bookkeeping for one stream or query node."""

    #: source streams this node transitively reads from
    roots: frozenset
    #: root column names that stay shard-colocated through this node
    passthrough: frozenset


class _MergeSink:
    """Recombines one query's shard outputs through a MergeOperator."""

    def __init__(self, handle: ShardedQueryHandle, shards: int) -> None:
        self.handle = handle
        self.sources = [f"shard{i}" for i in range(shards)]
        # MergeOperator needs >= 2 sources; one shard is a pass-through.
        self.operator = (
            MergeOperator(handle.output_schema, self.sources)
            if shards > 1
            else None
        )
        self.cursors = [0] * shards

    def feed(self, shard: int, records: Sequence[Record]) -> None:
        if self.operator is None:
            self._sink(list(records))
            return
        for record in records:
            self._sink(self.operator.process_from(self.sources[shard], record))

    def drain(self, shard: int, handle: QueryHandle) -> None:
        """Feed any records the shard produced since the last drain."""
        produced = handle.results
        cursor = self.cursors[shard]
        if len(produced) > cursor:
            self.feed(shard, produced[cursor:])
            self.cursors[shard] = len(produced)

    def end_source(self, shard: int) -> None:
        if self.operator is not None:
            self._sink(self.operator.end_source(self.sources[shard]))

    def _sink(self, outputs: List[Record]) -> None:
        if outputs and self.handle.keep_results:
            self.handle.results.extend(outputs)


class ShardedGigascope:
    """A DSMS instance that executes every query on N parallel shards.

    Mirrors the :class:`Gigascope` API (``register_stream``,
    ``use_stateful_library``, ``add_query``, ``add_merge``, ``run``,
    ``results``, ``cpu_percent``, ``explain``); queries must satisfy the
    partition rules of :func:`partition_info` or ``add_query`` raises a
    :class:`PlanningError` explaining why the query cannot shard.
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        processes: bool = False,
        cost_model: Optional[CostModel] = None,
        ring_capacity: int = 65536,
        strict: bool = False,
        queue_depth: int = 8,
        stall_timeout: float = 60.0,
        supervise: bool = False,
        supervision: Optional[SupervisionPolicy] = None,
        shed_threshold: Optional[int] = None,
        fault_plan: Any = None,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceSink] = None,
        quarantine: Optional["QuarantineStream"] = None,
        validate_admission: bool = False,
        rebalance: Any = None,
    ) -> None:
        """Beyond the PR-2 parameters:

        ``queue_depth`` bounds each worker's input queue (batches), so a
        wedged worker backpressures the splitter instead of buffering
        unboundedly.  ``stall_timeout`` caps how long an *unsupervised*
        process run waits for worker results before failing.
        ``supervise=True`` runs workers under a :class:`ShardSupervisor`
        (implies process mode): crashed or stalled shards restart and
        recover from the batch journal / operator checkpoints, per
        ``supervision`` (a :class:`SupervisionPolicy`, default policy if
        None).  ``shed_threshold`` enables graceful degradation: each
        shard's Gigascope sheds admission beyond that ring backlog, and
        the supervisor sheds batches when a shard's input queue stays at
        that depth.  ``fault_plan`` (a
        :class:`repro.testing.faults.FaultPlan`) injects deterministic
        worker failures for tests; ignored by the in-process mode.

        ``metrics`` / ``trace`` attach the parent-side metrics registry
        and trace sink.  Each shard instance keeps its *own* registry
        (and, when tracing is on, its own sink); after a run the parent
        absorbs every shard's series stamped with a ``shard`` label, so
        ``metrics.total(name, query=...)`` aggregates across shards while
        the per-shard series stay distinguishable.  In process modes the
        snapshots cross the fork boundary with the results.

        ``validate_admission`` validates every record at the SPLIT edge
        — in the parent, uniformly across all three execution modes —
        and routes uncoercible records to ``quarantine`` (a
        :class:`repro.streams.sources.QuarantineStream`; a private
        bounded one by default) instead of shipping them to a worker
        where the failure would surface as a shard crash.  Quarantined
        records are counted in the parent registry as
        ``stream_quarantined_total{stream=...}``.

        ``rebalance`` enables elastic skew-aware sharding (``True`` for
        the default policy, or a :class:`RebalancePolicy`): routing goes
        through a :class:`RoutingTable` instead of the pure hash modulo,
        and a :class:`Rebalancer` watches per-shard load to split hot
        key ranges, migrate operator state between shards via the
        checkpoint/restore snapshots, scale the shard pool, and — under
        ``policy.curate`` — downsample an unmigratable hot key's traffic
        with shed-style cost accounting.  Works with the in-process and
        supervised modes; unsupervised process shards have no control
        channel to migrate over.
        """
        if shards < 1:
            raise PlanningError("shards must be >= 1")
        if queue_depth < 1:
            raise PlanningError("queue_depth must be >= 1")
        self.shards = shards
        self.supervise = supervise or supervision is not None
        self.processes = processes or self.supervise
        if rebalance and processes and not self.supervise:
            raise PlanningError(
                "rebalance needs the in-process or supervised mode:"
                " unsupervised process shards have no control channel"
                " for state migration (use supervise=True)"
            )
        self.cost = cost_model or NULL_COST_MODEL
        self.strict = strict
        self.queue_depth = queue_depth
        self.stall_timeout = stall_timeout
        self.supervision = supervision
        self.shed_threshold = shed_threshold
        self.fault_plan = fault_plan
        #: SupervisionReport of the most recent supervised run (else None)
        self.last_supervision: Optional[SupervisionReport] = None
        self._last_report: Optional[dict] = None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace if trace is not None else NULL_TRACE
        self.validate_admission = validate_admission
        self.quarantine = (
            quarantine if quarantine is not None else QuarantineStream()
        )
        self._ring_capacity = ring_capacity
        if rebalance:
            policy = (
                rebalance
                if isinstance(rebalance, RebalancePolicy)
                else RebalancePolicy()
            )
            self._rebalancer: Optional[Rebalancer] = Rebalancer(
                policy, RoutingTable.default(shards, policy.slots_per_shard)
            )
        else:
            self._rebalancer = None
        #: registration calls replayed onto pool-grown shard instances
        self._replay_log: List[Tuple[str, tuple]] = []
        # Strictness is enforced once, centrally, in add_query; the shard
        # instances receive pre-vetted text and never re-lint it.
        self._instances = [self._new_instance() for _ in range(shards)]
        self._handles: Dict[str, ShardedQueryHandle] = {}
        self._order: List[str] = []
        self._nodes: Dict[str, _Node] = {}
        self._streams: List[str] = []
        #: per root stream: (query name, acceptable partition columns)
        self._constraints: Dict[str, List[Tuple[str, frozenset]]] = {}
        self._partition: Dict[str, str] = {}
        self._auto_counter = 0

    # -- registration -----------------------------------------------------------

    def _new_instance(self) -> Gigascope:
        return Gigascope(
            cost_model=self.cost,
            ring_capacity=self._ring_capacity,
            shed_threshold=self.shed_threshold,
            trace=TraceSink() if self.trace.enabled else None,
        )

    def _ensure_pool(self, size: int) -> List[int]:
        """Grow the shard pool to ``size`` instances; returns new ids.

        The pool only grows — a scale-*down* simply routes no traffic to
        the retired shards, which stay alive to report the results and
        state they already hold.  New instances replay the registration
        log so they carry the identical query DAG.
        """
        added: List[int] = []
        while self.shards < size:
            shard = self.shards
            instance = self._new_instance()
            for kind, args in self._replay_log:
                if kind == "stream":
                    instance.register_stream(*args)
                elif kind == "library":
                    instance.use_stateful_library(*args)
                elif kind == "scalar":
                    name, fn, deterministic = args
                    instance.register_scalar(name, fn, deterministic=deterministic)
                elif kind == "query":
                    text, name, low_level = args
                    instance.add_query(
                        text,
                        name=name,
                        keep_results=True,
                        low_level_aggregation=low_level,
                        strict=False,
                    )
            self._instances.append(instance)
            for name in self._order:
                self._handles[name].shard_handles.append(instance.query(name))
            self.shards += 1
            added.append(shard)
        return added

    @property
    def registries(self):
        """Registries of shard 0 (all shards are kept identical)."""
        return self._instances[0].registries

    def register_stream(self, schema: StreamSchema) -> None:
        for instance in self._instances:
            instance.register_stream(schema)
        self._replay_log.append(("stream", (schema,)))
        nonordered = frozenset(
            a.name for a in schema.attributes if not a.ordering.is_ordered
        )
        self._nodes[schema.name] = _Node(frozenset({schema.name}), nonordered)
        self._streams.append(schema.name)
        self._constraints[schema.name] = []

    def use_stateful_library(self, library: StatefulLibrary) -> None:
        for instance in self._instances:
            instance.use_stateful_library(library)
        self._replay_log.append(("library", (library,)))

    def register_scalar(self, name: str, fn, deterministic: bool = True) -> None:
        for instance in self._instances:
            instance.register_scalar(name, fn, deterministic=deterministic)
        self._replay_log.append(("scalar", (name, fn, deterministic)))

    def lint(self, text: str, name: str = "query"):
        return self._instances[0].lint(text, name=name)

    # -- queries -----------------------------------------------------------------

    def add_query(
        self,
        text: str,
        name: Optional[str] = None,
        keep_results: bool = True,
        low_level_aggregation: bool = False,
        strict: Optional[bool] = None,
    ) -> ShardedQueryHandle:
        """Register one query on every shard (see :meth:`Gigascope.add_query`).

        Beyond the serial checks, the query must be *shardable*: its
        output needs an ordered attribute (for the recombining MERGE)
        and its operator state must be partitionable on some non-ordered
        column of the source stream (see :func:`partition_info`).
        """
        if name is None:
            self._auto_counter += 1
            name = f"q{self._auto_counter}"
        if name in self._nodes:
            raise PlanningError(f"name {name!r} already in use")

        strict = self.strict if strict is None else strict
        plan = compile_query(
            text, self._instances[0].registries, query_name=name, strict=strict
        )
        source = plan.analyzed.ast.from_stream
        node = self._nodes.get(source)
        if node is None:
            raise PlanningError(
                f"query {name!r} reads from {source!r}, which is neither a"
                " source stream nor a registered query"
            )
        if self._rebalancer is not None:
            # Rebalancing moves operator state between shards through
            # checkpoint snapshots, so every SFUN state must be
            # snapshottable.  Checked before the shardability rules so a
            # query failing several is refused for this reason first —
            # ``repro lint --target 'shards=N,rebalance'`` reports the
            # same verdict as rule SA306.
            library = self._instances[0].registries.stateful
            bad = sorted(
                {
                    state
                    for state in plan.analyzed.state_names
                    if not library.checkpointable(state)
                }
            )
            if bad:
                raise PlanningError(
                    f"cannot rebalance query {name!r}: SFUN state(s) {bad}"
                    " declare checkpointable=False, so their operator state"
                    " is not migratable across shard boundaries; run without"
                    " rebalancing or make the state snapshottable"
                )
        if not plan.output_schema.ordered_attributes():
            raise PlanningError(
                f"cannot shard query {name!r}: its output has no ordered"
                " attribute for the recombining MERGE; select the window"
                " variable (an ordered column) first"
            )

        info = partition_info(plan)
        if info.candidates is not None:
            effective = frozenset(info.candidates) & node.passthrough
            if not effective:
                detail = info.reason or (
                    "none of its candidate partition columns"
                    f" {sorted(info.candidates)} survives the upstream"
                    f" query chain (colocated columns: {sorted(node.passthrough)})"
                )
                raise PlanningError(
                    f"cannot shard query {name!r}: {detail}"
                )
            for root in node.roots:
                self._constraints[root].append((name, effective))
        self._nodes[name] = _Node(
            node.roots, frozenset(info.passthrough) & node.passthrough
        )

        shard_handles = [
            instance.add_query(
                text,
                name=name,
                keep_results=True,  # shard outputs feed the merge
                low_level_aggregation=low_level_aggregation,
                strict=False,
            )
            for instance in self._instances
        ]
        self._replay_log.append(("query", (text, name, low_level_aggregation)))
        handle = ShardedQueryHandle(
            name=name,
            text=text,
            output_schema=shard_handles[0].output_schema,
            keep_results=keep_results,
            shard_handles=shard_handles,
        )
        self._handles[name] = handle
        self._order.append(name)
        return handle

    def add_merge(self, name: str, sources: List[str]) -> ShardedQueryHandle:
        """Merge same-schema queries inside every shard (then re-merge
        the shard outputs like any other query)."""
        if name in self._nodes:
            raise PlanningError(f"name {name!r} already in use")
        if self._rebalancer is not None:
            raise PlanningError(
                "rebalance does not support in-shard MERGE nodes: a"
                " MergeOperator's watermark state is keyed by source, not"
                " by partition value, so it cannot migrate between shards"
            )
        nodes = []
        for source in sources:
            if source not in self._handles:
                raise PlanningError(
                    f"merge source {source!r} is not a registered query"
                )
            nodes.append(self._nodes[source])
        shard_handles = [
            instance.add_merge(name, sources) for instance in self._instances
        ]
        roots: frozenset = frozenset().union(*(n.roots for n in nodes))
        passthrough = nodes[0].passthrough
        for n in nodes[1:]:
            passthrough &= n.passthrough
        self._nodes[name] = _Node(roots, passthrough)
        handle = ShardedQueryHandle(
            name=name,
            text=shard_handles[0].text,
            output_schema=shard_handles[0].output_schema,
            keep_results=True,
            shard_handles=shard_handles,
        )
        self._handles[name] = handle
        self._order.append(name)
        return handle

    def query(self, name: str) -> ShardedQueryHandle:
        try:
            return self._handles[name]
        except KeyError:
            raise ExecutionError(f"unknown query {name!r}") from None

    def query_handles(self) -> List[QueryHandle]:
        """Shard 0's query handles, in registration order (all shards run
        identical DAGs, so one shard's capability records speak for all)."""
        return [
            self._handles[name].shard_handles[0] for name in self._order
        ]

    def results(self, name: str) -> List[Record]:
        return self.query(name).results

    # -- partition resolution -----------------------------------------------------

    def partition_column(self, stream: str) -> str:
        """The partition column chosen for one source stream."""
        self._resolve_partitions()
        try:
            return self._partition[stream]
        except KeyError:
            raise ExecutionError(f"unknown stream {stream!r}") from None

    def _resolve_partitions(self) -> None:
        for stream in self._streams:
            constraints = self._constraints[stream]
            if constraints:
                common = frozenset.intersection(
                    *(candidates for _, candidates in constraints)
                )
                if not common:
                    per_query = ", ".join(
                        f"{query}: {sorted(candidates)}"
                        for query, candidates in constraints
                    )
                    raise PlanningError(
                        f"stream {stream!r} has no partition column acceptable"
                        f" to every query ({per_query}); split the queries"
                        " across instances or align their keys"
                    )
            else:
                common = self._nodes[stream].passthrough
                if not common:
                    raise PlanningError(
                        f"stream {stream!r} has no non-ordered attribute to"
                        " partition on"
                    )
            # Deterministic choice: first acceptable column in schema order.
            schema = self._instances[0].registries.schemas[stream]
            self._partition[stream] = next(
                name for name in schema.names if name in common
            )

    def _route_indices(self) -> Dict[str, int]:
        self._resolve_partitions()
        schemas = self._instances[0].registries.schemas
        return {
            stream: schemas[stream].index_of(column)
            for stream, column in self._partition.items()
        }

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        records: Iterable[Record],
        batch_size: int = 4096,
        *,
        on_round=None,
        resume_state: Optional[Dict[int, Tuple[int, bytes]]] = None,
    ) -> int:
        """SPLIT the record stream across the shards, MERGE their outputs.

        Returns the number of records read (like :meth:`Gigascope.run`).

        ``on_round`` / ``resume_state`` are the durable-resume hooks
        (supervised mode only — see :mod:`repro.dsms.durability`):
        ``on_round(supervisor, total)`` fires after every shipped round,
        and ``resume_state`` seeds the shards from a prior process's
        committed checkpoints.
        """
        if (on_round is not None or resume_state) and not self.supervise:
            raise ExecutionError(
                "on_round/resume_state need supervised mode"
                " (ShardedGigascope(supervise=True)): durable commits are"
                " built on the supervisor's checkpoint protocol"
            )
        route = self._route_indices()
        # Under rebalance the shard pool can grow mid-run, so the merge
        # sinks are built *after* execution (sized to the final pool);
        # shard handles keep full results either way.
        sinks = (
            None
            if self._rebalancer is not None
            else [_MergeSink(self._handles[name], self.shards) for name in self._order]
        )
        self._last_report = None
        self.last_supervision = None
        if self.validate_admission:
            records = self._validate_edge(records)
        if self.supervise:
            return self._run_supervised(
                records, batch_size, route, sinks,
                on_round=on_round, resume_state=resume_state,
            )
        if self.processes:
            return self._run_processes(records, batch_size, route, sinks)
        return self._run_inline(records, batch_size, route, sinks)

    def _validate_edge(self, records: Iterable[Record]) -> Iterable[Record]:
        """Validate/coerce records at the SPLIT edge; dead-letter failures.

        Runs in the parent so all three execution modes get identical
        admission behavior, and a malformed record is refused *before*
        it can crash a worker mid-query.
        """
        schemas = self.registries.schemas
        single = self._streams[0] if len(self._streams) == 1 else None
        for payload in records:
            schema = payload.schema if isinstance(payload, Record) else None
            if schema is None and single is not None:
                schema = schemas[single]
            if schema is None or schema.name not in self._nodes:
                stream = schema.name if schema is not None else "__unroutable__"
                self._quarantine_edge(
                    stream,
                    f"cannot route a {type(payload).__name__} payload to a"
                    " stream" if schema is None
                    else f"record for unregistered stream {stream!r}",
                    payload,
                )
                continue
            try:
                yield coerce_record(schema, payload)
            except SchemaError as exc:
                self._quarantine_edge(schema.name, str(exc), payload)

    def _quarantine_edge(self, stream: str, reason: str, payload: Any) -> None:
        self.metrics.counter(
            "stream_quarantined_total",
            help="records dead-lettered at the split edge (malformed input)",
            stream=stream,
        ).inc()
        self.cost.charge(stream, "tuple_quarantined", 1)
        if self.trace.enabled:
            self.trace.emit("quarantine", stream=stream, reason=reason)
        self.quarantine.put(reason, payload, source=stream)

    def _split(
        self, batch: Sequence[Record], route: Dict[str, int]
    ) -> List[List[Record]]:
        buckets: List[List[Record]] = [[] for _ in range(self.shards)]
        rebalancer = self._rebalancer
        for record in batch:
            try:
                index = route[record.schema.name]
            except KeyError:
                raise ExecutionError(
                    f"record for unregistered stream {record.schema.name!r}"
                ) from None
            value = record.values[index]
            if rebalancer is None:
                buckets[stable_hash(value) % self.shards].append(record)
            else:
                shard, admit = rebalancer.route_record(
                    stable_hash(value), value, record.schema.name
                )
                if admit:
                    buckets[shard].append(record)
        if rebalancer is not None:
            self._account_curated(rebalancer.drain_curated())
        return buckets

    def _account_curated(self, per_stream: Dict[str, int]) -> None:
        """Charge curated (hot-key downsampled) records like shed ones."""
        for stream, count in per_stream.items():
            self.metrics.counter(
                "rebalance_curated_total",
                help="records dropped by hot-key curation at the split edge",
                stream=stream,
            ).inc(count)
            self.cost.charge(stream, "tuple_shed", count)
            if self.trace.enabled:
                self.trace.emit(
                    "rebalance_curate", stream=stream, dropped=count
                )

    def _absorb_shard_obs(
        self, shard: int, metrics_snapshot: Optional[dict], trace_events: list
    ) -> None:
        """Fold one shard's metric/trace state into the parent, stamped
        with the ``shard`` label so per-shard series stay separable."""
        if metrics_snapshot:
            self.metrics.absorb(metrics_snapshot, extra_labels={"shard": shard})
        if self.trace.enabled and trace_events:
            self.trace.absorb(trace_events, shard=shard)

    def _run_inline(
        self,
        records: Iterable[Record],
        batch_size: int,
        route: Dict[str, int],
        sinks: List[_MergeSink],
    ) -> int:
        """Deterministic in-process mode: shards advance batch by batch."""
        for instance in self._instances:
            instance.start()
        total = 0
        batch: List[Record] = []

        def feed_round(batch: List[Record]) -> int:
            buckets = self._split(batch, route)
            for shard, bucket in enumerate(buckets):
                if bucket:
                    self._instances[shard].feed(bucket)
            if sinks is not None:
                for sink in sinks:
                    for shard in range(self.shards):
                        sink.drain(shard, sink.handle.shard_handles[shard])
            if self._rebalancer is not None:
                # Round boundary: rings are drained, so shard checkpoints
                # cover all fed input — a consistent migration point.
                self._rebalance_inline()
            return len(batch)

        try:
            for record in records:
                batch.append(record)
                if len(batch) >= batch_size:
                    total += feed_round(batch)
                    batch = []
            if batch:
                total += feed_round(batch)
            for instance in self._instances:
                instance.finish()
            if sinks is None:
                sinks = [
                    _MergeSink(self._handles[name], self.shards)
                    for name in self._order
                ]
                for sink in sinks:
                    for shard in range(self.shards):
                        sink.feed(shard, sink.handle.shard_handles[shard].results)
                        sink.end_source(shard)
            else:
                for shard in range(self.shards):
                    for sink in sinks:
                        sink.drain(shard, sink.handle.shard_handles[shard])
                        sink.end_source(shard)
            # Snapshot the per-shard reports before the registries are
            # zeroed below (run_report reads the registry).
            self._last_report = _merge_reports(
                [instance.run_report() for instance in self._instances]
            )
            for shard, instance in enumerate(self._instances):
                self._absorb_shard_obs(
                    shard,
                    instance.metrics.checkpoint(),
                    list(instance.trace.events) if instance.trace.enabled else [],
                )
                # Zero the shard registry (in place, so bound operator
                # series survive): a second run() must not re-fold this
                # run's counts into the parent.
                instance.metrics.reset()
                if instance.trace.enabled:
                    instance.trace.events.clear()
        except BaseException:
            for instance in self._instances:
                instance._session = None
            raise
        return total

    def _run_supervised(
        self,
        records: Iterable[Record],
        batch_size: int,
        route: Dict[str, int],
        sinks: List[_MergeSink],
        on_round=None,
        resume_state: Optional[Dict[int, Tuple[int, bytes]]] = None,
    ) -> int:
        """Run the workers under a :class:`ShardSupervisor`: crashed or
        stalled shards restart and recover by checkpoint restore plus
        journal replay, so a single worker failure does not fail the run."""
        supervisor = ShardSupervisor(
            self,
            policy=self.supervision,
            fault_plan=self.fault_plan,
            shed_threshold=self.shed_threshold,
            resume_state=resume_state,
        )
        self.last_supervision = supervisor.report
        if self._rebalancer is not None:
            # Rebalance *before* the caller's hook so a durable commit in
            # the same round journals the post-migration checkpoints and
            # routing table together.
            user_on_round = on_round

            def on_round(sup, total):
                self._rebalance_supervised(sup)
                if user_on_round is not None:
                    user_on_round(sup, total)

        total, shard_results, reports = supervisor.run(
            records, batch_size, route, on_round=on_round
        )
        if sinks is None:
            sinks = [
                _MergeSink(self._handles[name], self.shards)
                for name in self._order
            ]
        for sink in sinks:
            for shard in range(self.shards):
                sink.feed(shard, shard_results[shard].get(sink.handle.name, []))
                sink.end_source(shard)
        self._last_report = _merge_reports(reports)
        return total

    # -- rebalancing --------------------------------------------------------------

    def _rebalance_inline(self) -> None:
        """Inline-mode decision point: plan, migrate live state, commit."""
        rebalancer = self._rebalancer
        assert rebalancer is not None
        plan = rebalancer.maybe_plan()
        if plan is None:
            return
        if not plan.reroutes:
            rebalancer.commit(plan)
            self._note_rebalance(rebalancer, migrated=(0, 0))
            return
        added = self._ensure_pool(plan.table.shard_count)
        for shard in added:
            self._instances[shard].start()
        states = {
            shard: self._instances[shard].checkpoint()
            for shard in range(self.shards)
        }
        try:
            states, changed, moved = migrate_states(self, states, plan.table)
        except MigrationDeferred as exc:
            rebalancer.defer(plan, str(exc))
            self._note_rebalance(rebalancer, deferred=str(exc))
            return
        for shard in sorted(changed):
            self._instances[shard].restore(states[shard])
        rebalancer.commit(plan, moved)
        self._note_rebalance(rebalancer, migrated=moved)

    def _rebalance_supervised(self, supervisor: ShardSupervisor) -> None:
        """Supervised decision point: checkpoint barrier, migrate, install.

        The new checkpoints are installed parent-side *atomically* (all
        shards' ``_ckpt`` slots rewritten before any worker is told to
        restore), so a worker crash at any point mid-migration recovers
        through the normal restart path from a consistent post-migration
        checkpoint set.
        """
        rebalancer = self._rebalancer
        assert rebalancer is not None
        plan = rebalancer.maybe_plan()
        if plan is None:
            return
        if not plan.reroutes:
            rebalancer.commit(plan)
            self._note_rebalance(rebalancer, migrated=(0, 0))
            return
        added = self._ensure_pool(plan.table.shard_count)
        for shard in added:
            supervisor.add_shard(shard)
        blobs = supervisor.checkpoint_all()
        states = {shard: pickle.loads(blob) for shard, (_seq, blob) in blobs.items()}
        try:
            states, changed, moved = migrate_states(self, states, plan.table)
        except MigrationDeferred as exc:
            rebalancer.defer(plan, str(exc))
            self._note_rebalance(rebalancer, deferred=str(exc))
            return
        supervisor.install_checkpoints(
            {shard: pickle.dumps(states[shard]) for shard in sorted(changed)}
        )
        rebalancer.commit(plan, moved)
        self._note_rebalance(rebalancer, migrated=moved)

    def _note_rebalance(
        self,
        rebalancer: Rebalancer,
        migrated: Optional[Tuple[int, int]] = None,
        deferred: Optional[str] = None,
    ) -> None:
        """Mirror one rebalance decision into metrics and the trace."""
        if deferred is not None:
            self.metrics.counter(
                "rebalance_deferred_total",
                help="rebalance plans deferred (shard windows not aligned)",
            ).inc()
            if self.trace.enabled:
                self.trace.emit("rebalance_defer", reason=deferred)
            return
        assert migrated is not None
        self.metrics.counter(
            "rebalance_plans_total", help="rebalance plans committed"
        ).inc()
        self.metrics.counter(
            "rebalance_migrated_groups_total",
            help="operator groups migrated between shards",
        ).inc(migrated[0])
        self.metrics.gauge(
            "rebalance_routing_version", help="committed routing-table version"
        ).set(rebalancer.table.version)
        self.metrics.gauge(
            "rebalance_active_shards",
            help="shards the routing table currently routes to",
        ).set(rebalancer.table.shard_count)
        if self.trace.enabled:
            self.trace.emit(
                "rebalance_plan",
                version=rebalancer.table.version,
                shards=rebalancer.table.shard_count,
                migrated_groups=migrated[0],
                migrated_supergroups=migrated[1],
                pinned=sorted(rebalancer.table.hot.values()),
            )

    def routing_snapshot(self) -> Optional[Dict[str, Any]]:
        """Picklable routing/rebalancer state for the durable journal."""
        if self._rebalancer is None:
            return None
        return {"pool": self.shards, "rebalancer": self._rebalancer.checkpoint()}

    def restore_rebalance(self, snapshot: Dict[str, Any]) -> None:
        """Reinstate a :meth:`routing_snapshot` before a resumed run, so
        the replay routes — and keeps deciding — under the journalled
        routing history."""
        if self._rebalancer is None:
            raise ExecutionError(
                "journal carries a routing table but this instance was"
                " built without rebalance=...; resume with the same"
                " configuration as the original run"
            )
        self._ensure_pool(snapshot["pool"])
        self._rebalancer.restore(snapshot["rebalancer"])

    def _run_processes(
        self,
        records: Iterable[Record],
        batch_size: int,
        route: Dict[str, int],
        sinks: List[_MergeSink],
    ) -> int:
        """Fork one worker per shard; exchange pickled record batches.

        Unsupervised: a worker failure fails the whole run — but it fails
        *promptly and attributably* (naming the dead shard) rather than
        deadlocking on a queue the worker will never serve again.
        """
        try:
            context = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise ExecutionError(
                "processes=True needs the 'fork' start method (POSIX);"
                " use the in-process mode instead"
            ) from exc
        in_queues = [context.Queue(maxsize=self.queue_depth) for _ in range(self.shards)]
        out_queue = context.Queue()
        workers = [
            context.Process(
                target=_shard_worker,
                args=(shard, self._instances[shard], list(self._order),
                      in_queues[shard], out_queue, self.fault_plan),
                daemon=True,
            )
            for shard in range(self.shards)
        ]
        for worker in workers:
            worker.start()

        total = 0
        batch: List[Record] = []
        try:
            try:
                for record in records:
                    batch.append(record)
                    if len(batch) >= batch_size:
                        total += self._ship(batch, route, in_queues, workers)
                        batch = []
                if batch:
                    total += self._ship(batch, route, in_queues, workers)
            finally:
                for queue in in_queues:
                    try:
                        # Timed: a dead worker's full queue never drains,
                        # and the collection loop reports it either way.
                        queue.put(None, timeout=1.0)
                    except _queue.Full:
                        pass

            shard_results, reports = self._collect_results(workers, out_queue)
        finally:
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
            for worker in workers:
                worker.join(timeout=5.0)

        self._last_report = _merge_reports(reports)
        for sink in sinks:
            for shard in range(self.shards):
                sink.feed(shard, shard_results[shard].get(sink.handle.name, []))
                sink.end_source(shard)
        return total

    def _collect_results(
        self, workers: List, out_queue
    ) -> Tuple[Dict[int, Dict[str, List[Record]]], List[dict]]:
        """Gather one result per shard with liveness checks.

        A bare ``out_queue.get()`` here deadlocks forever if a worker
        died (nothing will ever arrive); instead we poll with a timeout,
        watch worker liveness — with a short grace period, because a
        dying worker's result may still be in the queue's feeder pipe —
        and fail with the dead shard's identity and exit code.
        """
        failures: List[str] = []
        shard_results: Dict[int, Dict[str, List[Record]]] = {}
        reports: List[dict] = []
        pending = set(range(self.shards))
        dead_since: Dict[int, float] = {}
        deadline = time.monotonic() + self.stall_timeout
        while pending:
            try:
                message = out_queue.get(timeout=0.1)
            except _queue.Empty:
                message = None
            except Exception as exc:
                # Undecodable (corrupt) message: the queue survives; the
                # broken sender dies and the liveness check below names it.
                failures.append(
                    f"result queue delivered an undecodable message: {exc!r}"
                )
                message = None
            if message is not None:
                shard, results, accounts, error, report, metrics_snap, trace_events = message
                if shard in pending:
                    pending.discard(shard)
                    dead_since.pop(shard, None)
                    if error is not None:
                        failures.append(f"shard {shard}: {error}")
                    else:
                        shard_results[shard] = results
                        self.cost.absorb(accounts)
                        reports.append(report)
                        self._absorb_shard_obs(shard, metrics_snap, trace_events)
                continue
            now = time.monotonic()
            for shard in sorted(pending):
                worker = workers[shard]
                if worker.is_alive():
                    continue
                since = dead_since.setdefault(shard, now)
                if now - since >= 1.0:
                    pending.discard(shard)
                    failures.append(
                        f"shard {shard} worker (pid {worker.pid}) exited with"
                        f" code {worker.exitcode} without reporting a result"
                    )
            if pending and now > deadline:
                stuck = ", ".join(str(shard) for shard in sorted(pending))
                raise ExecutionError(
                    f"sharded run stalled: no result from shard(s) {stuck}"
                    f" within stall_timeout={self.stall_timeout}s"
                )
        if failures:
            raise ExecutionError("sharded run failed: " + "; ".join(failures))
        return shard_results, reports

    def _ship(
        self,
        batch: List[Record],
        route: Dict[str, int],
        in_queues: List,
        workers: Optional[List] = None,
    ) -> int:
        for shard, bucket in enumerate(self._split(batch, route)):
            if not bucket:
                continue
            while True:
                try:
                    # Bounded put: never block forever on a queue whose
                    # consumer is gone.
                    in_queues[shard].put(bucket, timeout=0.25)
                    break
                except _queue.Full:
                    if workers is not None and not workers[shard].is_alive():
                        worker = workers[shard]
                        raise ExecutionError(
                            f"shard {shard} worker (pid {worker.pid}) exited"
                            f" with code {worker.exitcode} while its input"
                            " queue was full"
                        ) from None
        return len(batch)

    # -- reporting ------------------------------------------------------------------

    def cpu_percent(self, name: str, stream_seconds: float) -> float:
        """Aggregate CPU% of one query across all shards (one account)."""
        return self.cost.cpu_percent(name, stream_seconds)

    def run_report(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """Overload counters of the most recent run, summed over shards.

        Same shape as :meth:`Gigascope.run_report`; in process modes the
        per-shard reports crossed the queue with the results, in the
        in-process mode they are read straight off the shard instances.
        Supervisor-level shedding is reported separately via
        :attr:`last_supervision`.

        When rebalancing is enabled the report grows a ``rebalance``
        section (plans, migrations, pins, scale events, curated
        records, the routing table); without it the shape is exactly
        the serial runtime's ``{streams, queries}``.
        """
        if self._last_report is not None:
            report = self._last_report
        else:
            report = _merge_reports(
                [instance.run_report() for instance in self._instances]
            )
        if self._rebalancer is not None:
            report = dict(report)
            report["rebalance"] = {
                **self._rebalancer.report.as_dict(),
                "routing": self._rebalancer.table.to_json(),
            }
        return report

    def explain(self) -> str:
        """Render the sharding layout plus one shard's query DAG."""
        lines = [
            f"ShardedGigascope(shards={self.shards},"
            f" processes={self.processes})"
        ]
        try:
            self._resolve_partitions()
            for stream in self._streams:
                if self._rebalancer is not None:
                    table = self._rebalancer.table
                    lines.append(
                        f"  split {stream} by"
                        f" routing_table[hash({self._partition[stream]})]"
                        f" (v{table.version}, {len(table.slots)} slots,"
                        f" {table.shard_count} shards)"
                    )
                else:
                    lines.append(
                        f"  split {stream} by hash({self._partition[stream]})"
                        f" % {self.shards}"
                    )
        except PlanningError as exc:
            lines.append(f"  (partition unresolved: {exc})")
        for name in self._order:
            lines.append(f"  merge {name} on its ordered attribute")
        lines.append("  per-shard DAG:")
        lines.extend("    " + line for line in self._instances[0].explain().splitlines())
        return "\n".join(lines)


def _merge_reports(reports: Sequence[dict]) -> Dict[str, Dict[str, Dict[str, int]]]:
    """Sum per-shard :meth:`Gigascope.run_report` dicts counter-wise."""
    merged: Dict[str, Dict[str, Dict[str, int]]] = {"streams": {}, "queries": {}}
    for report in reports:
        if not report:
            continue
        for section in ("streams", "queries"):
            for name, counters in report.get(section, {}).items():
                slot = merged[section].setdefault(name, {})
                for key, value in counters.items():
                    slot[key] = slot.get(key, 0) + value
    return merged


def _shard_worker(
    shard: int,
    instance: Gigascope,
    query_names: List[str],
    in_queue,
    out_queue,
    fault_plan: Any = None,
) -> None:
    """Worker-process loop: drain batches, run the shard DAG, ship results.

    Runs in a forked child, so ``instance`` (including closures inside
    SFUN libraries) is inherited by memory copy rather than pickled; only
    record batches, result records and cost balances cross the process
    boundary, and those pickle cleanly.
    """
    try:
        if instance.cost.enabled:
            # The fork copied the parent's balances; count only this
            # worker's own charges so the parent can absorb the delta.
            instance.cost.reset()
        instance.start()
        batch_no = 0
        while True:
            batch = in_queue.get()
            if batch is None:
                break
            batch_no += 1
            if fault_plan is not None:
                fault_plan.fire_batch(shard, 0, batch_no, out_queue)
            instance.feed(batch)
        if fault_plan is not None and fault_plan.drops_result(shard, 0):
            os._exit(0)
        instance.finish()
        results = {name: instance.query(name).results for name in query_names}
        accounts = instance.cost.accounts() if instance.cost.enabled else {}
        trace_events = list(instance.trace.events) if instance.trace.enabled else []
        out_queue.put(
            (shard, results, accounts, None, instance.run_report(),
             instance.metrics.checkpoint(), trace_events)
        )
    except BaseException as exc:  # pragma: no cover - exercised via parent
        out_queue.put((shard, {}, {}, repr(exc), {}, None, []))


def _supervised_worker(
    shard: int,
    epoch: int,
    instance: Gigascope,
    query_names: List[str],
    in_queue,
    out_queue,
    fault_plan: Any = None,
) -> None:
    """Worker loop under supervision: a small message protocol.

    Inbound: ``("restore", seq, blob)`` reinstates a pickled
    :meth:`Gigascope.checkpoint`; ``("batch", seq, records)`` feeds one
    routed batch and acks it; ``("checkpoint", seq)`` snapshots operator
    state and ships it back; ``("finish",)`` flushes and reports.
    Outbound messages all carry ``(kind, shard, epoch, ...)`` so the
    parent can discard events from incarnations it has declared dead.

    The checkpoint blob is pickled *synchronously* (``pickle.dumps``)
    before it enters the queue: Queue.put pickles lazily on a feeder
    thread, which would race with this loop mutating operator state on
    the very next batch.
    """
    try:
        if instance.cost.enabled:
            instance.cost.reset()
        instance.start()
        batch_no = 0
        while True:
            message = in_queue.get()
            kind = message[0]
            if kind == "restore":
                snapshot = pickle.loads(message[2])
                instance.restore(snapshot, restore_cost=instance.cost.enabled)
            elif kind == "batch":
                seq, records = message[1], message[2]
                batch_no += 1
                if fault_plan is not None:
                    fault_plan.fire_batch(shard, epoch, batch_no, out_queue)
                instance.feed(records)
                out_queue.put(("ack", shard, epoch, seq))
            elif kind == "checkpoint":
                blob = pickle.dumps(instance.checkpoint())
                out_queue.put(("ckpt", shard, epoch, message[1], blob))
            elif kind == "finish":
                if fault_plan is not None and fault_plan.drops_result(shard, epoch):
                    os._exit(0)
                instance.finish()
                results = {name: instance.query(name).results for name in query_names}
                accounts = instance.cost.accounts() if instance.cost.enabled else {}
                trace_events = (
                    list(instance.trace.events) if instance.trace.enabled else []
                )
                out_queue.put(
                    ("result", shard, epoch, results, accounts,
                     instance.run_report(), instance.metrics.checkpoint(),
                     trace_events)
                )
                return
            else:  # pragma: no cover - protocol guard
                raise ExecutionError(f"unknown supervisor message {kind!r}")
    except BaseException as exc:  # pragma: no cover - exercised via parent
        out_queue.put(("error", shard, epoch, repr(exc)))
