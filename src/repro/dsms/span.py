"""Source spans: line/column positions threaded from the lexer to diagnostics.

A :class:`Span` names a contiguous run of characters on one source line
(1-based ``line`` and ``col``, ``length`` >= 1).  The lexer stamps every
token with a span, the parser copies token spans onto the AST nodes it
builds, and the analysis subsystem (:mod:`repro.analysis`) reports
diagnostics against them so the CLI can render source-line carets.

Multi-line constructs carry the span of their *anchor* token (the clause
keyword, the operator, the function name) rather than the whole extent —
one caret run per diagnostic keeps the rendering simple and readable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """A 1-based (line, col) position with a character length."""

    line: int
    col: int
    length: int = 1

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"

    def caret_line(self) -> str:
        """The ``^^^`` underline for this span (no leading indent)."""
        return "^" * max(1, self.length)


#: Span used when no source position is known (programmatic ASTs).
UNKNOWN_SPAN = Span(0, 0, 0)
