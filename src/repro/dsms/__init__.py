"""A Gigascope-like data stream management system (DSMS) in Python.

The paper's host system (paper §3) has a two-level architecture:

* **low-level queries** read packets straight from a NIC ring buffer and
  perform cheap early data reduction (selection, partial aggregation);
* **high-level queries** consume the reduced streams and run the heavier
  operators — including the sampling operator this reproduction is about.

This package provides that substrate:

* :mod:`repro.dsms.ring_buffer` — the fixed-size source buffer,
* :mod:`repro.dsms.cost` — a deterministic cycle-cost model standing in for
  the paper's CPU-utilisation measurements (a Python interpreter cannot
  process 100 kpps per-packet at native line rate, so the performance
  figures are reproduced through calibrated per-operation costs; see
  DESIGN.md §3),
* :mod:`repro.dsms.expr` — the expression AST and evaluator,
* :mod:`repro.dsms.functions` — scalar function registry (``H``, ``UMAX``…),
* :mod:`repro.dsms.aggregates` — the UDAF framework,
* :mod:`repro.dsms.stateful` — ``STATE`` / ``SFUN`` declarations (paper §6.2),
* :mod:`repro.dsms.parser` — the GSQL-subset front end,
* :mod:`repro.dsms.operators` — selection / projection / aggregation
  operators plus the bridge to the sampling operator,
* :mod:`repro.dsms.runtime` — query nodes and the two-level runtime,
* :mod:`repro.dsms.sharded` — hash-partitioned SPLIT/MERGE parallel
  execution across N replica shards.
"""

from repro.dsms.ring_buffer import RingBuffer
from repro.dsms.cost import CostModel, CostBook, NULL_COST_MODEL
from repro.dsms.runtime import Gigascope, QueryHandle
from repro.dsms.sharded import ShardedGigascope, ShardedQueryHandle

__all__ = [
    "RingBuffer",
    "CostModel",
    "CostBook",
    "NULL_COST_MODEL",
    "Gigascope",
    "QueryHandle",
    "ShardedGigascope",
    "ShardedQueryHandle",
]
