"""User-defined aggregate function (UDAF) framework.

Gigascope's aggregation queries (and the sampling operator's per-group
aggregates) are built from UDAFs following the conventional three-phase
API: ``initialize`` a state, ``update`` it per tuple, and ``finalize`` it
into an output value.

The sampling operator additionally needs *reversible* aggregates: when a
cleaning phase evicts a group, its contribution must be subtracted from
any running superaggregate (paper §6.3: "When a new group is added or
deleted (as a result of the cleaning phase), we need to update the
supergroup aggregate by adding or subtracting the group aggregate value").
Aggregates that support this implement ``retract``.

Built-ins: sum, count, min, max, avg, count_distinct, first, last.
``min``/``max`` are not reversible (retraction of the extremum would need
the full multiset), which the superaggregate layer handles by recomputing
from surviving groups.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.errors import RegistryError


class Aggregate:
    """One aggregate computation over a group's tuples.

    Instances are per-group; the class is the registered UDAF.  Subclasses
    override :meth:`update` and :meth:`value`, optionally :meth:`retract`
    and :meth:`merge` (merge enables partial aggregation at low-level
    query nodes).
    """

    #: Set by subclasses that implement retract().
    reversible: bool = False
    #: Set by subclasses that implement merge().
    mergeable: bool = False

    def update(self, value: Any) -> None:
        raise NotImplementedError

    def value(self) -> Any:
        raise NotImplementedError

    def retract(self, value: Any) -> None:
        raise NotImplementedError(f"{type(self).__name__} is not reversible")

    def merge(self, other: "Aggregate") -> None:
        raise NotImplementedError(f"{type(self).__name__} is not mergeable")


class SumAggregate(Aggregate):
    reversible = True
    mergeable = True

    def __init__(self) -> None:
        self._total: Any = 0

    def update(self, value: Any) -> None:
        self._total += value

    def retract(self, value: Any) -> None:
        self._total -= value

    def merge(self, other: Aggregate) -> None:
        assert isinstance(other, SumAggregate)
        self._total += other._total

    def value(self) -> Any:
        return self._total


class CountAggregate(Aggregate):
    reversible = True
    mergeable = True

    def __init__(self) -> None:
        self._count = 0

    def update(self, value: Any) -> None:
        self._count += 1

    def retract(self, value: Any) -> None:
        self._count -= 1

    def merge(self, other: Aggregate) -> None:
        assert isinstance(other, CountAggregate)
        self._count += other._count

    def value(self) -> int:
        return self._count


class MinAggregate(Aggregate):
    mergeable = True

    def __init__(self) -> None:
        self._min: Optional[Any] = None

    def update(self, value: Any) -> None:
        if self._min is None or value < self._min:
            self._min = value

    def merge(self, other: Aggregate) -> None:
        assert isinstance(other, MinAggregate)
        if other._min is not None:
            self.update(other._min)

    def value(self) -> Any:
        return self._min


class MaxAggregate(Aggregate):
    mergeable = True

    def __init__(self) -> None:
        self._max: Optional[Any] = None

    def update(self, value: Any) -> None:
        if self._max is None or value > self._max:
            self._max = value

    def merge(self, other: Aggregate) -> None:
        assert isinstance(other, MaxAggregate)
        if other._max is not None:
            self.update(other._max)

    def value(self) -> Any:
        return self._max


class AvgAggregate(Aggregate):
    reversible = True
    mergeable = True

    def __init__(self) -> None:
        self._total: Any = 0
        self._count = 0

    def update(self, value: Any) -> None:
        self._total += value
        self._count += 1

    def retract(self, value: Any) -> None:
        self._total -= value
        self._count -= 1

    def merge(self, other: Aggregate) -> None:
        assert isinstance(other, AvgAggregate)
        self._total += other._total
        self._count += other._count

    def value(self) -> Optional[float]:
        if self._count == 0:
            return None
        return self._total / self._count


class CountDistinctAggregate(Aggregate):
    """Exact distinct count (a set per group).

    Groups in sampling queries stay small (they are bounded by cleaning),
    so an exact set is appropriate here; the *approximate* distinct
    machinery lives with the algorithms, not the UDAF layer.
    """

    reversible = False
    mergeable = True

    def __init__(self) -> None:
        self._seen: Set[Any] = set()

    def update(self, value: Any) -> None:
        self._seen.add(value)

    def merge(self, other: Aggregate) -> None:
        assert isinstance(other, CountDistinctAggregate)
        self._seen |= other._seen

    def value(self) -> int:
        return len(self._seen)


class FirstAggregate(Aggregate):
    """First value seen in the group (paper §6.6 heavy-hitters query)."""

    def __init__(self) -> None:
        self._first: Optional[Any] = None
        self._has_value = False

    def update(self, value: Any) -> None:
        if not self._has_value:
            self._first = value
            self._has_value = True

    def value(self) -> Any:
        return self._first


class LastAggregate(Aggregate):
    def __init__(self) -> None:
        self._last: Optional[Any] = None

    def update(self, value: Any) -> None:
        self._last = value

    def value(self) -> Any:
        return self._last


AggregateFactory = Callable[[], Aggregate]


class AggregateRegistry:
    """Name -> aggregate factory registry."""

    def __init__(self) -> None:
        self._factories: Dict[str, AggregateFactory] = {}

    def register(self, name: str, factory: AggregateFactory, replace: bool = False) -> None:
        if not replace and name in self._factories:
            raise RegistryError(f"aggregate {name!r} already registered")
        self._factories[name] = factory

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def create(self, name: str) -> Aggregate:
        try:
            return self._factories[name]()
        except KeyError:
            raise RegistryError(f"unknown aggregate {name!r}") from None

    def names(self) -> List[str]:
        return sorted(self._factories)

    def copy(self) -> "AggregateRegistry":
        clone = AggregateRegistry()
        clone._factories = dict(self._factories)
        return clone


def default_aggregate_registry() -> AggregateRegistry:
    registry = AggregateRegistry()
    registry.register("sum", SumAggregate)
    registry.register("count", CountAggregate)
    registry.register("min", MinAggregate)
    registry.register("max", MaxAggregate)
    registry.register("avg", AvgAggregate)
    registry.register("count_distinct", CountDistinctAggregate)
    registry.register("first", FirstAggregate)
    registry.register("last", LastAggregate)
    return registry
