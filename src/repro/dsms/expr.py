"""Expression AST and evaluator for the GSQL subset.

The parser builds these nodes; the analyzer classifies function calls into
scalar functions, aggregates, superaggregates (``name$``-suffixed, paper
§6.3) and stateful functions (paper §6.2); the operators evaluate them
against an :class:`EvalContext`.

Evaluation is context-driven rather than closure-compiled: the sampling
operator evaluates the same expression trees in several phases (per-tuple
WHERE, per-supergroup CLEANING WHEN, per-group CLEANING BY / HAVING, and
output SELECT), and each phase exposes a different context.  A context
only needs to implement the hooks for node kinds that can legally appear
in its clause — the analyzer enforces legality, so a hook that is missing
at runtime is a bug, reported as :class:`ExecutionError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.dsms.span import Span
from repro.errors import ExecutionError


# ---------------------------------------------------------------------------
# AST nodes
# ---------------------------------------------------------------------------

#: Spans are carried for diagnostics only: they never participate in node
#: equality or hashing (the analyzer dedups aggregate slots by value) and
#: default to None for programmatically built trees.
def _span_field() -> Any:
    return field(default=None, compare=False, repr=False)


class Expr:
    """Base class for all expression nodes."""

    span: Optional[Span]

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Literal(Expr):
    value: Any
    span: Optional[Span] = _span_field()

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str
    span: Optional[Span] = _span_field()

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Star(Expr):
    """The ``*`` argument of ``count(*)`` / ``count_distinct$(*)``."""

    span: Optional[Span] = _span_field()

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # '-', 'NOT'
    operand: Expr
    span: Optional[Span] = _span_field()

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # arithmetic: + - * / %   comparison: = <> < <= > >=   logic: AND OR
    left: Expr
    right: Expr
    span: Optional[Span] = _span_field()

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class FunctionCall(Expr):
    """An unclassified call, as parsed.  The analyzer rewrites these."""

    name: str
    args: Tuple[Expr, ...]
    span: Optional[Span] = _span_field()

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class ScalarCall(Expr):
    """A call to a registered scalar function (H, UMAX, ...)."""

    name: str
    args: Tuple[Expr, ...]
    span: Optional[Span] = _span_field()

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class AggregateCall(Expr):
    """A group aggregate: sum(len), count(*), min(x)...

    ``slot`` is assigned by the planner: the index of this aggregate in the
    group's aggregate vector.
    """

    name: str
    args: Tuple[Expr, ...]
    slot: int = -1
    span: Optional[Span] = _span_field()

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class SuperAggregateCall(Expr):
    """A supergroup aggregate, written ``name$(args)`` (paper §6.3)."""

    name: str
    args: Tuple[Expr, ...]
    slot: int = -1
    span: Optional[Span] = _span_field()

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        return f"{self.name}$({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class StatefulCall(Expr):
    """A call to an SFUN sharing per-supergroup state (paper §6.2)."""

    name: str
    state_name: str
    args: Tuple[Expr, ...]
    span: Optional[Span] = _span_field()

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


class EvalContext:
    """Resolution hooks for expression evaluation.

    Subclasses override the hooks relevant to their phase.  The default
    implementations raise, which surfaces analyzer gaps as explicit errors
    instead of silent Nones.
    """

    def column(self, name: str) -> Any:
        raise ExecutionError(f"column {name!r} not available in this context")

    def call_scalar(self, name: str, args: Sequence[Any]) -> Any:
        raise ExecutionError(f"scalar function {name!r} not available in this context")

    def aggregate_value(self, node: AggregateCall) -> Any:
        raise ExecutionError(f"aggregate {node.name!r} not available in this context")

    def superaggregate_value(self, node: SuperAggregateCall) -> Any:
        raise ExecutionError(
            f"superaggregate {node.name}$ not available in this context"
        )

    def call_stateful(self, node: StatefulCall, args: Sequence[Any]) -> Any:
        raise ExecutionError(
            f"stateful function {node.name!r} not available in this context"
        )


_ARITHMETIC: dict = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "%": lambda a, b: a % b,
}

_COMPARISON: dict = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def evaluate(expr: Expr, ctx: EvalContext) -> Any:
    """Evaluate ``expr`` against ``ctx``.

    Division follows SQL/C integer semantics on two ints (``time/60`` must
    bucket, not produce floats) and float semantics otherwise.  AND/OR
    short-circuit.
    """
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        return ctx.column(expr.name)
    if isinstance(expr, Star):
        return 1  # count(*) counts rows; the argument value is irrelevant
    if isinstance(expr, UnaryOp):
        value = evaluate(expr.operand, ctx)
        if expr.op == "-":
            return -value
        if expr.op == "NOT":
            return not value
        raise ExecutionError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BinaryOp):
        return _evaluate_binary(expr, ctx)
    if isinstance(expr, ScalarCall):
        args = [evaluate(a, ctx) for a in expr.args]
        return ctx.call_scalar(expr.name, args)
    if isinstance(expr, AggregateCall):
        return ctx.aggregate_value(expr)
    if isinstance(expr, SuperAggregateCall):
        return ctx.superaggregate_value(expr)
    if isinstance(expr, StatefulCall):
        args = [evaluate(a, ctx) for a in expr.args]
        return ctx.call_stateful(expr, args)
    if isinstance(expr, FunctionCall):
        raise ExecutionError(
            f"unclassified function call {expr.name!r} reached evaluation;"
            " run the analyzer before executing"
        )
    raise ExecutionError(f"unknown expression node {type(expr).__name__}")


def _is_integer(value: Any) -> bool:
    """True for values that take SQL/C integer-division semantics.

    ``bool`` is excluded deliberately: it subclasses ``int`` in Python,
    but ``TRUE / 2`` floor-dividing to ``0`` is a silent wrong answer —
    booleans divide as ordinary numbers (``0.5``), matching the numpy
    batch engine, which promotes bool columns to float on division.
    """
    return isinstance(value, int) and not isinstance(value, bool)


def _evaluate_binary(expr: BinaryOp, ctx: EvalContext) -> Any:
    op = expr.op
    if op == "AND":
        return bool(evaluate(expr.left, ctx)) and bool(evaluate(expr.right, ctx))
    if op == "OR":
        return bool(evaluate(expr.left, ctx)) or bool(evaluate(expr.right, ctx))
    left = evaluate(expr.left, ctx)
    right = evaluate(expr.right, ctx)
    if op == "/":
        if _is_integer(left) and _is_integer(right):
            if right == 0:
                raise ExecutionError("integer division by zero", span=expr.span)
            return left // right
        if right == 0:
            raise ExecutionError("division by zero", span=expr.span)
        try:
            return left / right
        except TypeError:
            raise _type_error(op, left, right, expr) from None
    if op in _ARITHMETIC:
        try:
            return _ARITHMETIC[op](left, right)
        except TypeError:
            raise _type_error(op, left, right, expr) from None
    if op in _COMPARISON:
        try:
            return _COMPARISON[op](left, right)
        except TypeError:
            raise _type_error(op, left, right, expr) from None
    raise ExecutionError(f"unknown binary operator {op!r}")


def _type_error(op: str, left: Any, right: Any, expr: BinaryOp) -> ExecutionError:
    """A mixed-type operand failure as a span-carrying ExecutionError.

    Without this, ``srcIP > 100`` on a string column escapes as a raw
    ``TypeError`` traceback from deep inside the operator instead of a
    diagnostic that names the expression and its source position.
    """
    return ExecutionError(
        f"cannot evaluate {expr}: unsupported operand types for {op!r}"
        f" ({type(left).__name__} and {type(right).__name__})",
        span=expr.span,
    )


# ---------------------------------------------------------------------------
# Tree utilities (used by the analyzer / planner)
# ---------------------------------------------------------------------------


def find_nodes(expr: Expr, node_type: type) -> List[Expr]:
    """All descendants of ``expr`` (inclusive) of the given node type."""
    return [node for node in expr.walk() if isinstance(node, node_type)]


def contains_node(expr: Expr, node_type: type) -> bool:
    return any(isinstance(node, node_type) for node in expr.walk())


def column_names(expr: Expr) -> List[str]:
    """Names of all column references in the tree, in encounter order."""
    return [node.name for node in expr.walk() if isinstance(node, ColumnRef)]


def free_column_names(expr: Expr) -> List[str]:
    """Column references *not* enclosed in an aggregate call.

    Aggregate arguments (``sum(len)``) are evaluated per tuple at update
    time, so the columns inside them are bound to the input stream rather
    than the clause's own context; clause-legality checks must skip them.
    """
    names: List[str] = []

    def visit(node: Expr) -> None:
        if isinstance(node, AggregateCall):
            return
        if isinstance(node, ColumnRef):
            names.append(node.name)
        for child in node.children():
            visit(child)

    visit(expr)
    return names


def rewrite(expr: Expr, fn: Callable[[Expr], Optional[Expr]]) -> Expr:
    """Bottom-up rewrite: ``fn`` may return a replacement node or ``None``.

    Children are rewritten first, then ``fn`` is offered the (possibly
    rebuilt) node.  Dataclass frozen-ness means rebuilds create new nodes.
    """
    if isinstance(expr, UnaryOp):
        rebuilt: Expr = UnaryOp(expr.op, rewrite(expr.operand, fn), span=expr.span)
    elif isinstance(expr, BinaryOp):
        rebuilt = BinaryOp(
            expr.op, rewrite(expr.left, fn), rewrite(expr.right, fn), span=expr.span
        )
    elif isinstance(expr, FunctionCall):
        rebuilt = FunctionCall(
            expr.name, tuple(rewrite(a, fn) for a in expr.args), span=expr.span
        )
    elif isinstance(expr, ScalarCall):
        rebuilt = ScalarCall(
            expr.name, tuple(rewrite(a, fn) for a in expr.args), span=expr.span
        )
    elif isinstance(expr, AggregateCall):
        rebuilt = AggregateCall(
            expr.name, tuple(rewrite(a, fn) for a in expr.args), expr.slot,
            span=expr.span,
        )
    elif isinstance(expr, SuperAggregateCall):
        rebuilt = SuperAggregateCall(
            expr.name, tuple(rewrite(a, fn) for a in expr.args), expr.slot,
            span=expr.span,
        )
    elif isinstance(expr, StatefulCall):
        rebuilt = StatefulCall(
            expr.name, expr.state_name, tuple(rewrite(a, fn) for a in expr.args),
            span=expr.span,
        )
    else:
        rebuilt = expr
    replacement = fn(rebuilt)
    return replacement if replacement is not None else rebuilt
