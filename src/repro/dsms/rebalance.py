"""Elastic skew-aware sharding: routing tables, hot keys, live migration.

Static hash partitioning (PR 2) assigns each partition-key value to the
shard ``stable_hash(value) % shards`` forever.  Under the paper's own
motivating workload — DDoS detection, where one victim key concentrates
nearly all traffic — that saturates a single shard while the others
idle.  This module turns the checkpoint/restore machinery of PR 3/5
from a recovery tool into a scaling tool:

* :class:`RoutingTable` replaces the pure modulo with an indirection —
  a fixed slot space (``hash % num_slots -> shard``) plus exact-hash
  overrides for pinned hot keys.  The default table is byte-identical
  to the legacy modulo (``num_slots`` is a multiple of the shard
  count), so routing only changes when a rebalance commits.
* :class:`Rebalancer` watches deterministic load signals gathered at
  the SPLIT edge (tuples routed per shard / per slot, heavy-hitter key
  counts) and, every ``check_interval`` rounds, produces a
  :class:`RoutingPlan`: slot reassignments, hot-key pins, shard-count
  scaling, and — when a single key is too hot to migrate away from —
  bounded *hot-key curation* that downsamples only that key's traffic
  with full shed-style cost accounting.
* :func:`migrate_states` rewrites per-shard :meth:`Gigascope.checkpoint`
  snapshots so that every group / supergroup / SFUN state lands on the
  shard the new table routes its key to.  Migration happens at a
  barrier where the snapshots cover all shipped input (the supervisor's
  ``checkpoint_all``, or an inline round boundary), so a shard crash
  mid-migration recovers through the normal restart path from the
  already-rewritten checkpoints.

Decisions are **data-deterministic**: every input the planner consults
(tuple counts, key counts, the accumulator deciding which curated
records survive) is a pure function of the record stream, never of
wall-clock queue depths.  That is what lets a rebalanced run ride the
durable journal: the routing table and the rebalancer's counters are
journalled with each commit, and a ``--resume`` replays the same
decisions at the same rounds (docs/RESILIENCE.md).
"""

from __future__ import annotations

import copy
import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dsms.sharded import ShardedGigascope


# --------------------------------------------------------------------------
# Routing
# --------------------------------------------------------------------------


class RoutingTable:
    """Slot-based routing with exact-hash overrides for hot keys.

    ``route(h)`` first consults ``hot`` (pinned key hashes), then the
    slot map ``slots[h % len(slots)]``.  ``shard_count`` is the number
    of shards the table may route to (shard ids ``0..shard_count-1``);
    the owning runtime's worker pool may be larger (retired shards stay
    alive to report results but receive no further traffic).
    """

    def __init__(
        self,
        slots: List[int],
        hot: Optional[Dict[int, int]] = None,
        shard_count: int = 1,
        version: int = 0,
    ) -> None:
        if not slots:
            raise ExecutionError("routing table needs at least one slot")
        self.slots = list(slots)
        self.hot: Dict[int, int] = dict(hot or {})
        self.shard_count = shard_count
        self.version = version

    @classmethod
    def default(cls, shards: int, slots_per_shard: int = 32) -> "RoutingTable":
        """The table equivalent to legacy ``stable_hash % shards``.

        ``num_slots`` is a multiple of ``shards``, so
        ``slots[h % num_slots] == (h % num_slots) % shards == h % shards``
        — byte-identical routing until the first rebalance commits.
        """
        num_slots = max(1, shards) * max(1, slots_per_shard)
        return cls(
            slots=[i % shards for i in range(num_slots)],
            shard_count=shards,
        )

    def route(self, h: int) -> int:
        pinned = self.hot.get(h)
        if pinned is not None:
            return pinned
        return self.slots[h % len(self.slots)]

    def copy(self) -> "RoutingTable":
        return RoutingTable(
            slots=list(self.slots),
            hot=dict(self.hot),
            shard_count=self.shard_count,
            version=self.version,
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "shard_count": self.shard_count,
            "num_slots": len(self.slots),
            "slots": list(self.slots),
            "hot": {str(h): shard for h, shard in sorted(self.hot.items())},
        }

    def snapshot(self) -> Dict[str, Any]:
        """Picklable state for the durable journal."""
        return {
            "slots": list(self.slots),
            "hot": dict(self.hot),
            "shard_count": self.shard_count,
            "version": self.version,
        }

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Any]) -> "RoutingTable":
        return cls(
            slots=snap["slots"],
            hot=snap["hot"],
            shard_count=snap["shard_count"],
            version=snap["version"],
        )


# --------------------------------------------------------------------------
# Policy / report
# --------------------------------------------------------------------------


@dataclass
class RebalancePolicy:
    """Tunables for elastic rebalancing (defaults suit test-scale runs).

    All thresholds are evaluated over the records observed since the
    previous decision point, never over wall-clock signals — the
    decisions must replay identically under ``--resume``.
    """

    #: evaluate a rebalance every N shipped rounds
    check_interval: int = 4
    #: skip a decision point that observed fewer records than this
    min_records: int = 256
    #: max-shard load over mean-shard load that counts as imbalanced
    imbalance_threshold: float = 1.5
    #: single-key share of traffic that gets the key pinned
    hot_key_fraction: float = 0.3
    #: routing slots per shard (the "finer routing table" granularity)
    slots_per_shard: int = 32
    #: ceiling on routable shards (None: stay at the initial count)
    max_shards: Optional[int] = None
    #: floor on routable shards
    min_shards: int = 1
    #: records per decision window one shard should handle; drives
    #: scale up/down (None: shard count changes only on hot-key pins)
    shard_capacity: Optional[int] = None
    #: downsample a key once its traffic share exceeds curate_threshold
    curate: bool = False
    #: single-key share beyond which even a dedicated shard cannot keep
    #: up and the key's traffic is curated (requires ``curate=True``)
    curate_threshold: float = 0.6
    #: fraction of a curated key's records that are admitted
    curate_keep: float = 0.125
    #: heavy-hitter candidates tracked per decision window
    top_k: int = 16


@dataclass
class RebalanceReport:
    """What the rebalancer did, for the run report and the CLI."""

    plans: int = 0
    deferred: int = 0
    migrated_groups: int = 0
    migrated_supergroups: int = 0
    moved_slots: int = 0
    pinned_keys: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    curated_keys: int = 0
    curated_records: int = 0
    events: List[Dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "plans": self.plans,
            "deferred": self.deferred,
            "migrated_groups": self.migrated_groups,
            "migrated_supergroups": self.migrated_supergroups,
            "moved_slots": self.moved_slots,
            "pinned_keys": self.pinned_keys,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "curated_keys": self.curated_keys,
            "curated_records": self.curated_records,
            "events": list(self.events),
        }


@dataclass
class RoutingPlan:
    """One committed-or-deferred rebalancing decision."""

    table: RoutingTable
    actions: List[Dict[str, Any]] = field(default_factory=list)
    #: key hashes newly placed under curation: hash -> (value, keep)
    curated: Dict[int, Tuple[Any, float]] = field(default_factory=dict)

    @property
    def reroutes(self) -> bool:
        return bool(self.actions)


class _Curation:
    """Deterministic per-key downsampler: admit ``keep`` of the stream.

    The accumulator pattern ``floor(n*keep) > floor((n-1)*keep)`` admits
    exactly ``floor(n*keep)`` of the first ``n`` records — a pure
    function of the key's record count, so a resumed run (which restores
    ``seen``/``admitted`` from the journal) curates identically.
    """

    __slots__ = ("value", "keep", "seen", "admitted")

    def __init__(self, value: Any, keep: float) -> None:
        self.value = value
        self.keep = keep
        self.seen = 0
        self.admitted = 0

    def admit(self) -> bool:
        self.seen += 1
        admit = int(self.seen * self.keep) > int((self.seen - 1) * self.keep)
        if admit:
            self.admitted += 1
        return admit

    def snapshot(self) -> Tuple[Any, float, int, int]:
        return (self.value, self.keep, self.seen, self.admitted)

    @classmethod
    def from_snapshot(cls, snap: Tuple[Any, float, int, int]) -> "_Curation":
        cur = cls(snap[0], snap[1])
        cur.seen, cur.admitted = snap[2], snap[3]
        return cur


class Rebalancer:
    """Deterministic skew detector + routing planner for one sharded run.

    The owner calls :meth:`route_record` for every record at the SPLIT
    edge and :meth:`maybe_plan` once per shipped round; a returned
    :class:`RoutingPlan` is applied (state migration, see
    :func:`migrate_states`) and then either :meth:`commit`-ted or
    :meth:`defer`-red (e.g. when shard windows are not aligned yet).
    """

    def __init__(self, policy: RebalancePolicy, table: RoutingTable) -> None:
        self.policy = policy
        self.table = table
        self.report = RebalanceReport()
        self.initial_shards = table.shard_count
        self._rounds = 0
        self._total = 0
        self._shard_counts: Dict[int, int] = {}
        self._slot_counts: Dict[int, int] = {}
        #: space-saving heavy hitters: hash -> [count, value]
        self._keys: Dict[int, List[Any]] = {}
        self._curations: Dict[int, _Curation] = {}
        #: records curated (dropped) per stream since the last drain
        self._curated_pending: Dict[str, int] = {}

    # -- split-edge hooks --------------------------------------------------

    def route_record(self, h: int, value: Any, stream: str) -> Tuple[int, bool]:
        """Route one record; returns ``(shard, admit)``.

        ``admit=False`` means the record belongs to a curated hot key
        and this occurrence is downsampled away (the caller accounts it
        like a shed tuple).
        """
        curation = self._curations.get(h)
        if curation is not None and curation.value == value:
            if not curation.admit():
                self.report.curated_records += 1
                self._curated_pending[stream] = (
                    self._curated_pending.get(stream, 0) + 1
                )
                return -1, False
        shard = self.table.route(h)
        self._total += 1
        self._shard_counts[shard] = self._shard_counts.get(shard, 0) + 1
        slot = h % len(self.table.slots)
        self._slot_counts[slot] = self._slot_counts.get(slot, 0) + 1
        self._observe_key(h, value)
        return shard, True

    def drain_curated(self) -> Dict[str, int]:
        """Per-stream curated-record counts since the last drain."""
        pending, self._curated_pending = self._curated_pending, {}
        return pending

    def _observe_key(self, h: int, value: Any) -> None:
        entry = self._keys.get(h)
        if entry is not None:
            entry[0] += 1
            return
        capacity = max(4, self.policy.top_k * 2)
        if len(self._keys) < capacity:
            self._keys[h] = [1, value]
            return
        # Space-saving: evict the minimum-count candidate and inherit its
        # count — overestimates, never underestimates, a hot key's share.
        victim = min(self._keys.items(), key=lambda kv: (kv[1][0], kv[0]))
        count = victim[1][0]
        del self._keys[victim[0]]
        self._keys[h] = [count + 1, value]

    # -- decisions ---------------------------------------------------------

    def maybe_plan(self) -> Optional[RoutingPlan]:
        """Advance one round; at a decision point, return a plan (or None)."""
        self._rounds += 1
        if self._rounds % self.policy.check_interval != 0:
            return None
        plan = self._plan()
        self._reset_window()
        return plan

    def _reset_window(self) -> None:
        self._total = 0
        self._shard_counts = {}
        self._slot_counts = {}
        self._keys = {}

    def _plan(self) -> Optional[RoutingPlan]:
        policy = self.policy
        total = self._total
        if total < policy.min_records:
            return None
        table = self.table
        active = table.shard_count
        loads = [self._shard_counts.get(s, 0) for s in range(active)]
        mean = total / active
        imbalance = max(loads) / mean if mean else 0.0

        # Hot keys: any single key whose share crosses the pin threshold.
        hot: List[Tuple[int, int, Any]] = []  # (count, hash, value)
        for h, (count, value) in self._keys.items():
            if count >= policy.hot_key_fraction * total:
                hot.append((count, h, value))
        hot.sort(key=lambda item: (-item[0], item[1]))
        hot = hot[: policy.top_k]

        # Target shard count.
        max_shards = policy.max_shards or self.initial_shards
        want = active
        if policy.shard_capacity:
            want = (total + policy.shard_capacity - 1) // policy.shard_capacity
        elif hot:
            want = active + 1  # give the cold traffic room away from the pin
        want = max(policy.min_shards, min(max_shards, want))

        needs_rebalance = (
            imbalance > policy.imbalance_threshold
            or want != active
            or any(
                table.route(h) != table.hot.get(h) and count >= policy.hot_key_fraction * total
                for count, h, _value in hot
                if h not in table.hot
            )
        )
        curated_new = self._plan_curation(hot, total)
        if not needs_rebalance and not curated_new:
            return None

        actions: List[Dict[str, Any]] = []
        new_table = table.copy()
        if want != active:
            actions.append(
                {
                    "action": "scale_up" if want > active else "scale_down",
                    "from": active,
                    "to": want,
                }
            )
            new_table.shard_count = want

        # Pin hot keys: each keeps its own dedicated routing entry so slot
        # moves never drag a pinned key's state around implicitly.
        pin_loads: Dict[int, int] = {s: 0 for s in range(want)}
        for count, h, value in hot:
            dest = table.hot.get(h)
            if dest is None or dest >= want:
                dest = min(pin_loads, key=lambda s: (pin_loads[s], s))
                actions.append(
                    {"action": "pin", "hash": h, "value": value, "shard": dest}
                )
            new_table.hot[h] = dest
            pin_loads[dest] += count
        hot_hashes = {h for _count, h, _value in hot}

        # Greedy LPT slot assignment: heaviest slots first onto the
        # currently lightest shard (pinned-key load counts as baseline).
        slot_loads = dict(self._slot_counts)
        for count, h, _value in hot:
            slot = h % len(table.slots)
            slot_loads[slot] = max(0, slot_loads.get(slot, 0) - count)
        order = sorted(
            range(len(new_table.slots)),
            key=lambda s: (-slot_loads.get(s, 0), s),
        )
        shard_loads = dict(pin_loads)
        moved = 0
        for slot in order:
            dest = min(shard_loads, key=lambda s: (shard_loads[s], s))
            if new_table.slots[slot] != dest:
                moved += 1
            new_table.slots[slot] = dest
            shard_loads[dest] += slot_loads.get(slot, 0)
        if moved:
            actions.append({"action": "move_slots", "count": moved})

        if not actions and not curated_new:
            return None
        new_table.version = table.version + 1
        return RoutingPlan(table=new_table, actions=actions, curated=curated_new)

    def _plan_curation(
        self, hot: List[Tuple[int, int, Any]], total: int
    ) -> Dict[int, Tuple[Any, float]]:
        if not self.policy.curate:
            return {}
        curated: Dict[int, Tuple[Any, float]] = {}
        for count, h, value in hot:
            if h in self._curations:
                continue
            if count >= self.policy.curate_threshold * total:
                curated[h] = (value, self.policy.curate_keep)
        return curated

    def commit(self, plan: RoutingPlan, migrated: Tuple[int, int] = (0, 0)) -> None:
        """Install a plan after its state migration succeeded."""
        self.table = plan.table
        self.report.plans += 1
        self.report.migrated_groups += migrated[0]
        self.report.migrated_supergroups += migrated[1]
        for action in plan.actions:
            kind = action["action"]
            if kind == "pin":
                self.report.pinned_keys += 1
            elif kind == "move_slots":
                self.report.moved_slots += action["count"]
            elif kind == "scale_up":
                self.report.scale_ups += 1
            elif kind == "scale_down":
                self.report.scale_downs += 1
            self.report.events.append(
                {"round": self._rounds, "version": plan.table.version, **action}
            )
        for h, (value, keep) in plan.curated.items():
            self._curations[h] = _Curation(value, keep)
            self.report.curated_keys += 1
            self.report.events.append(
                {
                    "round": self._rounds,
                    "action": "curate",
                    "value": value,
                    "keep": keep,
                }
            )

    def defer(self, plan: RoutingPlan, reason: str) -> None:
        """Record that a plan could not be applied yet (windows not
        aligned); curation still engages — it needs no state move."""
        self.report.deferred += 1
        self.report.events.append(
            {"round": self._rounds, "action": "defer", "reason": reason}
        )
        for h, (value, keep) in plan.curated.items():
            if h not in self._curations:
                self._curations[h] = _Curation(value, keep)
                self.report.curated_keys += 1

    # -- durability --------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Picklable snapshot for the durable journal.

        Captures everything a resumed run needs to make the *same*
        decisions on the *same* replayed input: the routing table, the
        observation window, and the curation accumulators.
        """
        return {
            "table": self.table.snapshot(),
            "initial_shards": self.initial_shards,
            "rounds": self._rounds,
            "total": self._total,
            "shard_counts": dict(self._shard_counts),
            "slot_counts": dict(self._slot_counts),
            "keys": {h: list(entry) for h, entry in self._keys.items()},
            "curations": {
                h: cur.snapshot() for h, cur in self._curations.items()
            },
            "report": pickle.dumps(self.report),
        }

    def restore(self, snap: Dict[str, Any]) -> None:
        self.table = RoutingTable.from_snapshot(snap["table"])
        self.initial_shards = snap["initial_shards"]
        self._rounds = snap["rounds"]
        self._total = snap["total"]
        self._shard_counts = dict(snap["shard_counts"])
        self._slot_counts = dict(snap["slot_counts"])
        self._keys = {h: list(entry) for h, entry in snap["keys"].items()}
        self._curations = {
            h: _Curation.from_snapshot(entry)
            for h, entry in snap["curations"].items()
        }
        self.report = pickle.loads(snap["report"])
        self._curated_pending = {}


# --------------------------------------------------------------------------
# State migration over checkpoint snapshots
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class MigrationSpec:
    """How one query node's checkpoint splits along the partition key.

    ``kind`` is ``"sampling"`` / ``"aggregation"`` / ``"stateless"``;
    ``gb_index`` locates the partition column inside the group key, and
    ``sg_pos`` (sampling only) inside the supergroup key, or None when
    the plan keeps no supergroup-keyed state on the partition column.
    """

    kind: str
    gb_index: int = -1
    sg_pos: Optional[int] = None


def migration_specs(owner: "ShardedGigascope") -> Dict[str, MigrationSpec]:
    """Per-query split metadata, computed from shard 0's operators.

    Every registered query's partition column is one of its own bare
    group-by columns (that is what :func:`partition_info` guarantees for
    shardable stateful plans), so ``operator._gb_index[column]`` locates
    the partition value inside every group key.
    """
    specs: Dict[str, MigrationSpec] = {}
    for name in owner._order:
        handle = owner._handles[name]
        operator = handle.shard_handles[0].operator
        node = owner._nodes[name]
        roots = sorted(node.roots)
        column = owner._partition[roots[0]] if roots else None
        gb_index = getattr(operator, "_gb_index", {}).get(column, None)
        spec_obj = getattr(operator, "spec", None)
        if gb_index is None:
            specs[name] = MigrationSpec(kind="stateless")
        elif spec_obj is not None and hasattr(
            spec_obj, "nonordered_supergroup_indices"
        ):
            indices = list(spec_obj.nonordered_supergroup_indices)
            sg_pos = indices.index(gb_index) if gb_index in indices else None
            specs[name] = MigrationSpec(
                kind="sampling", gb_index=gb_index, sg_pos=sg_pos
            )
        else:
            specs[name] = MigrationSpec(kind="aggregation", gb_index=gb_index)
    return specs


class MigrationDeferred(Exception):
    """Raised when shard windows are not aligned; retry at a later barrier."""




def _operator_snap(
    states: Dict[int, Dict[str, Any]], shard: int, name: str
) -> Optional[Dict[str, Any]]:
    snap = states.get(shard, {}).get("queries", {}).get(name, {}).get("operator")
    return snap if isinstance(snap, dict) else None


def _destinations(
    snap: Dict[str, Any], spec: MigrationSpec, table: RoutingTable, src: int, hash_fn
) -> set:
    """Read-only: shards this snapshot would send state to under ``table``."""
    dests: set = set()
    if spec.kind == "aggregation":
        for key in snap["groups"]:
            dest = table.route(hash_fn(key[spec.gb_index]))
            if dest != src:
                dests.add(dest)
        return dests
    for entry in snap["groups"]:
        dest = table.route(hash_fn(entry[0][spec.gb_index]))
        if dest != src:
            dests.add(dest)
    if spec.sg_pos is not None:
        for table_name in ("new_supergroups", "old_supergroups"):
            for entry in snap[table_name]:
                dest = table.route(hash_fn(entry[0][spec.sg_pos]))
                if dest != src:
                    dests.add(dest)
    return dests


def migrate_states(
    owner: "ShardedGigascope",
    states: Dict[int, Dict[str, Any]],
    new_table: RoutingTable,
) -> Tuple[Dict[int, Dict[str, Any]], set, Tuple[int, int]]:
    """Rewrite per-shard checkpoint snapshots to match ``new_table``.

    ``states`` maps shard id -> :meth:`Gigascope.checkpoint` dict for
    every shard that currently holds state; destination shards without a
    snapshot get a pristine template from the owner's parent-side
    instances.  Returns ``(states, changed, (groups, supergroups))``
    where ``changed`` is the set of shard ids whose snapshot was
    rewritten — sources that lost state and destinations that gained it.

    Raises :class:`MigrationDeferred` — *before any snapshot is mutated*
    — when, for some query, the shards losing or gaining state disagree
    on the current window: moving a window-w group into a shard already
    past w would mis-emit it.  The caller keeps the old routing and
    retries at the next barrier (worker state is a pure function of the
    input, so a resumed run defers and retries at the same rounds).
    """
    from repro.dsms.sharded import stable_hash

    specs = migration_specs(owner)

    # Pass 1 (read-only): window-alignment check across every query.
    plan_windows: Dict[str, Any] = {}
    for name, spec in specs.items():
        if spec.kind == "stateless":
            continue
        involved: set = set()
        for src in sorted(states):
            snap = _operator_snap(states, src, name)
            if snap is None:
                continue
            dests = _destinations(snap, spec, new_table, src, stable_hash)
            if dests:
                involved.add(src)
                involved.update(dests)
        if not involved:
            continue
        windows = set()
        for shard in sorted(involved):
            snap = _operator_snap(states, shard, name)
            if snap is not None and snap.get("current_window") is not None:
                windows.add(snap["current_window"])
        if len(windows) > 1:
            raise MigrationDeferred(
                f"query {name!r}: shards disagree on the current window"
                f" ({sorted(windows)})"
            )
        plan_windows[name] = next(iter(windows)) if windows else None

    changed: set = set()
    groups_moved = 0
    supergroups_moved = 0

    def ensure_state(shard: int) -> Dict[str, Any]:
        if shard not in states:
            states[shard] = owner._instances[shard].checkpoint()
        return states[shard]

    # Pass 2: destructively extract and merge, query by query.
    for name, window in plan_windows.items():
        spec = specs[name]
        for src in sorted(list(states)):
            snap = _operator_snap(states, src, name)
            if snap is None:
                continue
            if spec.kind == "sampling":
                parts = _split_sampling(snap, spec, new_table, src, stable_hash)
            else:
                parts = _split_aggregation(snap, spec, new_table, src, stable_hash)
            if not parts:
                continue
            changed.add(src)
            for dest, part in sorted(parts.items()):
                changed.add(dest)
                dest_snap = ensure_state(dest)["queries"][name]["operator"]
                if spec.kind == "sampling":
                    g, sg = _merge_sampling(dest_snap, part, window)
                else:
                    g, sg = _merge_aggregation(dest_snap, part, window)
                groups_moved += g
                supergroups_moved += sg

    return states, changed, (groups_moved, supergroups_moved)


def _split_sampling(
    snap: Dict[str, Any],
    spec: MigrationSpec,
    table: RoutingTable,
    src: int,
    hash_fn,
) -> Dict[int, Dict[str, Any]]:
    """Destructively extract the state leaving shard ``src``."""
    parts: Dict[int, Dict[str, Any]] = {}

    def part(dest: int) -> Dict[str, Any]:
        return parts.setdefault(
            dest,
            {
                "groups": [],
                "new_supergroups": [],
                "old_supergroups": [],
                # sg_pos None: placeholder supergroup entries *copied* (not
                # moved) so the destination's window close finds them.
                "shared_new": [],
                "shared_old": [],
            },
        )

    kept_groups = []
    #: supergroup keys that must exist at each destination (sg_pos None)
    needed_sg: Dict[int, set] = {}
    for entry in snap["groups"]:
        dest = table.route(hash_fn(entry[0][spec.gb_index]))
        if dest == src:
            kept_groups.append(entry)
        else:
            part(dest)["groups"].append(entry)
            if spec.sg_pos is None:
                needed_sg.setdefault(dest, set()).add(entry[2])
    snap["groups"] = kept_groups

    for table_name, shared_name in (
        ("new_supergroups", "shared_new"),
        ("old_supergroups", "shared_old"),
    ):
        kept = []
        for entry in snap[table_name]:
            if spec.sg_pos is not None:
                dest = table.route(hash_fn(entry[0][spec.sg_pos]))
                if dest == src:
                    kept.append(entry)
                else:
                    part(dest)[table_name].append(entry)
            else:
                # Partition column outside the supergroup key: the planner
                # only permits that when the supergroup carries no SFUN /
                # superaggregate state, so the entry is a placeholder —
                # keep it, and copy it wherever one of its groups went.
                kept.append(entry)
                for dest, keys in needed_sg.items():
                    if entry[0] in keys:
                        part(dest)[shared_name].append(copy.deepcopy(entry))
        snap[table_name] = kept
    return parts


def _merge_sampling(
    dest_snap: Dict[str, Any], part: Dict[str, Any], window: Any
) -> Tuple[int, int]:
    groups_moved = len(part["groups"])
    supergroups_moved = 0
    for table_name, shared_name in (
        ("new_supergroups", "shared_new"),
        ("old_supergroups", "shared_old"),
    ):
        present = {entry[0] for entry in dest_snap[table_name]}
        for entry in part[table_name]:
            dest_snap[table_name].append(entry)
            present.add(entry[0])
            supergroups_moved += 1
        for entry in part[shared_name]:
            if entry[0] not in present:
                dest_snap[table_name].append(entry)
                present.add(entry[0])
    dest_snap["groups"].extend(part["groups"])
    if dest_snap.get("current_window") is None and window is not None:
        # A fresh destination adopts the in-flight window: its next input
        # tuple must not re-open the window (which would orphan the
        # migrated groups), and the window close needs live WindowStats.
        from repro.core.sampling_operator import WindowStats

        dest_snap["current_window"] = window
        if dest_snap.get("active_stats") is None:
            dest_snap["active_stats"] = WindowStats(window=window)
    return groups_moved, supergroups_moved


def _split_aggregation(
    snap: Dict[str, Any],
    spec: MigrationSpec,
    table: RoutingTable,
    src: int,
    hash_fn,
) -> Dict[int, Dict[str, Any]]:
    parts: Dict[int, Dict[str, Any]] = {}
    kept: Dict[Any, Any] = {}
    for key, aggregates in snap["groups"].items():
        dest = table.route(hash_fn(key[spec.gb_index]))
        if dest == src:
            kept[key] = aggregates
        else:
            parts.setdefault(dest, {"groups": {}})["groups"][key] = aggregates
    snap["groups"] = kept
    return parts


def _merge_aggregation(
    dest_snap: Dict[str, Any], part: Dict[str, Any], window: Any
) -> Tuple[int, int]:
    dest_snap["groups"].update(part["groups"])
    if dest_snap.get("current_window") is None and window is not None:
        dest_snap["current_window"] = window
    return len(part["groups"]), 0
