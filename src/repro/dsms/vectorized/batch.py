"""Columnar record batches: one numpy array per column, bound to a schema.

A :class:`RecordBatch` is the unit of work of the vectorized engine
(DESIGN.md §11): the ingest edge converts a list of :class:`Record`\\ s
into one batch per source stream, operators transform whole batches with
numpy ufuncs, and records are only rebuilt at the output edges (retained
results, non-vectorized downstream operators).

Column conversion is *lazy*: a batch built from records converts a
column the first time an expression touches it, so a ``SELECT time, len
... WHERE len > 200`` over a nine-column stream pays for two column
conversions, not nine.  This is the in-memory analogue of the paper's
"data is fed to the low level queries from a ring buffer without
copying" (§3): the batch hand-off replaces the per-tuple copy the cost
model charges ~16k cycles for.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.streams.records import Record
from repro.streams.schema import StreamSchema

#: Schema type tag -> numpy dtype of the column array.  ``uint`` maps to
#: int64 (not uint64) so mixed signed/unsigned arithmetic — ``time - 60``
#: going negative, for instance — keeps Python's semantics instead of
#: wrapping around.
DTYPES: Dict[str, Any] = {
    "int": np.int64,
    "uint": np.int64,
    "float": np.float64,
    "bool": np.bool_,
    "str": object,
}


def column_dtype(type_tag: str) -> Any:
    return DTYPES.get(type_tag, object)


class RecordBatch:
    """A fixed-length run of tuples stored column-wise.

    Built either from materialized column arrays (operator outputs) or
    from a list of records (the ingest edge), in which case columns are
    converted on first access.
    """

    __slots__ = ("schema", "length", "_columns", "_records")

    def __init__(
        self,
        schema: StreamSchema,
        columns: Optional[Dict[str, Any]] = None,
        length: Optional[int] = None,
        records: Optional[List[Record]] = None,
    ) -> None:
        self.schema = schema
        self._columns: Dict[str, Any] = columns if columns is not None else {}
        self._records = records
        if length is not None:
            self.length = length
        elif records is not None:
            self.length = len(records)
        elif self._columns:
            self.length = len(next(iter(self._columns.values())))
        else:
            self.length = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def from_records(cls, schema: StreamSchema, records: List[Record]) -> "RecordBatch":
        """Wrap a record list; columns convert lazily on first access."""
        return cls(schema, records=records)

    @classmethod
    def empty(cls, schema: StreamSchema) -> "RecordBatch":
        return cls(schema, columns={}, length=0)

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return self.length

    def column(self, name: str) -> Any:
        """The column array for ``name``, converting from records if needed."""
        col = self._columns.get(name)
        if col is None:
            col = self._convert(name)
        return col

    def _convert(self, name: str) -> Any:
        if self._records is None:
            raise SchemaError(
                f"batch for schema {self.schema.name!r} has no column"
                f" {name!r} and no record backing to convert it from"
            )
        attr = self.schema.attribute(name)
        index = self.schema.index_of(name)
        dtype = column_dtype(attr.type_tag)
        values = [record.values[index] for record in self._records]
        try:
            col = np.asarray(values, dtype=dtype)
        except (TypeError, ValueError, OverflowError):
            # Heterogeneous or out-of-range values (a None in an unordered
            # column, an int overflowing int64): keep Python objects so
            # per-element semantics match the tuple path exactly.
            col = np.asarray(values, dtype=object)
        self._columns[name] = col
        return col

    def materialized(self) -> Dict[str, Any]:
        """All columns as arrays (converts any still-lazy ones)."""
        for attr in self.schema:
            self.column(attr.name)
        return self._columns

    # -- output edge --------------------------------------------------------

    def to_records(self) -> List[Record]:
        """Rebuild row-wise records (the output-edge converter).

        A batch still backed by its original record list returns that
        list unchanged — the ingest-to-ingest passthrough is free.
        ``tolist()`` is used per column so emitted values are plain
        Python scalars, byte-identical to the tuple path's output.
        """
        if self._records is not None:
            return self._records
        if self.length == 0:
            return []
        lists = []
        for attr in self.schema:
            col = self.column(attr.name)
            lists.append(col.tolist() if isinstance(col, np.ndarray) else list(col))
        return [Record(self.schema, row) for row in zip(*lists)]

    def take(self, mask: Any) -> "RecordBatch":
        """Rows selected by a boolean mask, as a new batch.

        Only materializes columns that are already converted; lazy
        columns stay lazy by filtering the record backing as well.
        """
        if self._records is not None:
            picked = [r for r, keep in zip(self._records, mask) if keep]
            columns = {name: col[mask] for name, col in self._columns.items()}
            return RecordBatch(self.schema, columns=columns, records=picked,
                              length=len(picked))
        columns = {name: col[mask] for name, col in self._columns.items()}
        return RecordBatch(self.schema, columns=columns,
                           length=int(np.count_nonzero(mask)))

    def slice(self, start: int, stop: int) -> "RecordBatch":
        """Rows ``start:stop`` as a new batch (window segmentation)."""
        records = self._records[start:stop] if self._records is not None else None
        columns = {name: col[start:stop] for name, col in self._columns.items()}
        return RecordBatch(self.schema, columns=columns, records=records,
                           length=stop - start)


def concat_batches(schema: StreamSchema, batches: Sequence[RecordBatch]) -> RecordBatch:
    """Concatenate output batches (multi-window emissions in one feed)."""
    batches = [b for b in batches if len(b)]
    if not batches:
        return RecordBatch.empty(schema)
    if len(batches) == 1:
        return batches[0]
    columns = {}
    for attr in schema:
        parts = [np.asarray(b.column(attr.name)) for b in batches]
        columns[attr.name] = np.concatenate(parts)
    return RecordBatch(schema, columns=columns,
                       length=sum(len(b) for b in batches))
