"""Compile analyzed expression trees into whole-batch closures.

The tuple path interprets the AST once per record; here each analyzed
WHERE/SELECT/HAVING/GROUP-BY tree is compiled *once per query* into a
closure that evaluates an entire :class:`RecordBatch` with numpy ufuncs.
The closure takes an :class:`Env` — column resolver, batch length, cost
hook, and (for HAVING/SELECT at window close) an aggregate-slot resolver
— and returns either a column array or a Python scalar (constant
subtrees stay scalars and broadcast for free).

Semantics mirror ``repro.dsms.expr`` exactly where the data allows it:

* two integer operands floor-divide (``time/60`` buckets), while bool or
  float operands take true division, and zero divisors raise the same
  span-carrying :class:`ExecutionError`;
* mixed-type arithmetic/ordering comparisons raise span-carrying
  ``ExecutionError`` instead of a raw ``TypeError``;
* ``=`` / ``<>`` never type-error (Python equality semantics);
* object-dtype columns (heterogeneous or overflowed data) fall back to
  an element-wise loop that applies the scalar rules verbatim.

Two divergences are inherent to batch evaluation and documented in
DESIGN.md §11: AND/OR do not short-circuit (both sides are evaluated
over the batch), and a zero divisor anywhere in a batch aborts the whole
batch before any of its rows are emitted.

Anything that *requires* per-tuple state or ordering — SFUN calls,
superaggregates, nondeterministic scalar functions — raises
:class:`UnsupportedExpression` at compile time, which the operator
factory turns into a clean fallback to the tuple path.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

from repro.errors import ExecutionError
from repro.dsms.expr import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    Expr,
    FunctionCall,
    Literal,
    ScalarCall,
    Star,
    StatefulCall,
    SuperAggregateCall,
    UnaryOp,
)
from repro.dsms.functions import FunctionRegistry


class UnsupportedExpression(Exception):
    """Raised at compile time when an expression needs the tuple path."""


class Env:
    """Evaluation environment for one compiled-closure invocation.

    ``column`` resolves a name to an array of ``length`` rows (row envs
    expose stream columns; group envs expose group-by key columns).
    ``charge`` mirrors the tuple path's cost accounting as batch deltas.
    ``aggregate`` resolves an aggregate slot to a per-group value array
    and only exists in group envs.
    """

    __slots__ = ("column", "length", "charge", "aggregate")

    def __init__(
        self,
        column: Callable[[str], Any],
        length: int,
        charge: Callable[[str, int], None],
        aggregate: Optional[Callable[[int], Any]] = None,
    ) -> None:
        self.column = column
        self.length = length
        self.charge = charge
        self.aggregate = aggregate


def _no_charge(_op: str, _count: int) -> None:
    pass


def make_env(batch: Any, charge: Callable[[str, int], None] = _no_charge) -> Env:
    """Row env over a :class:`RecordBatch`."""
    return Env(batch.column, len(batch), charge)


# ---------------------------------------------------------------------------
# Runtime value helpers
# ---------------------------------------------------------------------------


def _is_object_array(value: Any) -> bool:
    return isinstance(value, np.ndarray) and value.dtype == object


def _is_integer_operand(value: Any) -> bool:
    """Batch analogue of expr._is_integer: int-kind, bool excluded."""
    if isinstance(value, np.ndarray):
        return value.dtype.kind in "iu"
    return isinstance(value, (int, np.integer)) and not isinstance(
        value, (bool, np.bool_)
    )


def _type_name(value: Any) -> str:
    if isinstance(value, np.ndarray):
        if value.dtype == object and value.size:
            return type(value.flat[0]).__name__
        # The diagnostics name Python types, as the tuple path does.
        kind = value.dtype.kind
        if kind in "iu":
            return "int"
        if kind == "f":
            return "float"
        if kind == "b":
            return "bool"
        return value.dtype.name
    return type(value).__name__


def _type_error(op: str, left: Any, right: Any, expr: BinaryOp) -> ExecutionError:
    return ExecutionError(
        f"cannot evaluate {expr}: unsupported operand types for {op!r}"
        f" ({_type_name(left)} and {_type_name(right)})",
        span=expr.span,
    )


def _tighten(arr: Any) -> Any:
    """Recover a numeric dtype from an object array when possible.

    frompyfunc and the element-wise fallback produce object arrays even
    when every element is an int; re-inferring the dtype keeps the rest
    of the expression on the fast ufunc path.  Strings (and anything
    numpy would mangle) stay object.
    """
    if not isinstance(arr, np.ndarray) or arr.dtype != object or arr.size == 0:
        return arr
    try:
        cast = np.asarray(arr.tolist())
    except (TypeError, ValueError, OverflowError):
        return arr
    return cast if cast.dtype.kind in "iufb" else arr


def as_mask(value: Any, length: int) -> Any:
    """Coerce a predicate result to a full-length boolean mask."""
    if isinstance(value, np.ndarray):
        if value.dtype == np.bool_:
            return value
        if value.dtype == object:
            return np.asarray([bool(v) for v in value], dtype=np.bool_)
        return value.astype(np.bool_)
    return np.full(length, bool(value), dtype=np.bool_)


def as_column(value: Any, length: int) -> Any:
    """Coerce an expression result to a full-length column array."""
    if isinstance(value, np.ndarray):
        return value
    arr = np.empty(length, dtype=object)
    arr[:] = value
    return _tighten(arr)


# ---------------------------------------------------------------------------
# Binary operator application (runtime dispatch, once per batch)
# ---------------------------------------------------------------------------

_ARITH_UFUNCS = {"+": np.add, "-": np.subtract, "*": np.multiply, "%": np.mod}
_ORDER_UFUNCS = {"<": np.less, "<=": np.less_equal, ">": np.greater, ">=": np.greater_equal}


def _scalar_apply(op: str, a: Any, b: Any, expr: BinaryOp) -> Any:
    """The tuple path's per-pair semantics, for object-dtype fallback."""
    if op == "/":
        if (
            isinstance(a, int) and not isinstance(a, bool)
            and isinstance(b, int) and not isinstance(b, bool)
        ):
            if b == 0:
                raise ExecutionError("integer division by zero", span=expr.span)
            return a // b
        if b == 0:
            raise ExecutionError("division by zero", span=expr.span)
        try:
            return a / b
        except TypeError:
            raise _type_error(op, a, b, expr) from None
    if op == "=":
        return a == b
    if op in ("<>", "!="):
        return a != b
    try:
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "%":
            return a % b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
    except TypeError:
        raise _type_error(op, a, b, expr) from None
    raise ExecutionError(f"unknown binary operator {op!r}")


def _elementwise(expr: BinaryOp, left: Any, right: Any) -> Any:
    """Element-wise scalar-rule application for object-dtype operands."""
    n = len(left) if isinstance(left, np.ndarray) else len(right)
    lseq = left if isinstance(left, np.ndarray) else [left] * n
    rseq = right if isinstance(right, np.ndarray) else [right] * n
    out = np.empty(n, dtype=object)
    op = expr.op
    for i in range(n):
        out[i] = _scalar_apply(op, lseq[i], rseq[i], expr)
    return _tighten(out)


def _check_divisor(right: Any, expr: BinaryOp, message: str) -> None:
    if isinstance(right, np.ndarray):
        if right.size and np.any(right == 0):
            raise ExecutionError(message, span=expr.span)
    elif right == 0:
        raise ExecutionError(message, span=expr.span)


def apply_binary(expr: BinaryOp, left: Any, right: Any) -> Any:
    op = expr.op
    if not isinstance(left, np.ndarray) and not isinstance(right, np.ndarray):
        return _scalar_apply(op, left, right, expr)
    if _is_object_array(left) or _is_object_array(right):
        return _elementwise(expr, left, right)
    if op == "/":
        if _is_integer_operand(left) and _is_integer_operand(right):
            _check_divisor(right, expr, "integer division by zero")
            return np.floor_divide(left, right)
        _check_divisor(right, expr, "division by zero")
        try:
            return np.true_divide(left, right)
        except TypeError:
            raise _type_error(op, left, right, expr) from None
    if op == "%":
        # numpy would emit 0 with a warning; the tuple path raises.
        _check_divisor(right, expr, "modulo by zero")
    if op in _ARITH_UFUNCS:
        # Python bools are ints under arithmetic (True + True == 2);
        # numpy's bool ufuncs are logical (True + True == True).
        if isinstance(left, np.ndarray) and left.dtype == np.bool_:
            left = left.astype(np.int64)
        if isinstance(right, np.ndarray) and right.dtype == np.bool_:
            right = right.astype(np.int64)
        try:
            return _ARITH_UFUNCS[op](left, right)
        except TypeError:
            raise _type_error(op, left, right, expr) from None
    if op == "=":
        return _equality(left, right, negate=False)
    if op in ("<>", "!="):
        return _equality(left, right, negate=True)
    if op in _ORDER_UFUNCS:
        try:
            return _ORDER_UFUNCS[op](left, right)
        except TypeError:
            raise _type_error(op, left, right, expr) from None
    raise ExecutionError(f"unknown binary operator {op!r}")


def _equality(left: Any, right: Any, negate: bool) -> Any:
    # Python equality on mismatched types is False, never an error.
    try:
        result = np.not_equal(left, right) if negate else np.equal(left, right)
    except TypeError:
        result = np.bool_(negate)
    if not isinstance(result, np.ndarray):
        # Incomparable operand classes collapse to a scalar; broadcast.
        n = len(left) if isinstance(left, np.ndarray) else len(right)
        return np.full(n, bool(result), dtype=np.bool_)
    return result


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------


class BatchCompiler:
    """Compiles analyzed expression trees to ``Env -> value`` closures."""

    def __init__(self, functions: FunctionRegistry) -> None:
        self.functions = functions

    def compile(self, expr: Expr, allow_aggregates: bool = False) -> Callable[[Env], Any]:
        """Compile ``expr``; raises :class:`UnsupportedExpression` when the
        tree needs per-tuple state (SFUNs, superaggregates, nondeterministic
        scalar functions)."""
        return self._compile(expr, allow_aggregates)

    def compile_predicate(
        self, expr: Expr, allow_aggregates: bool = False
    ) -> Callable[[Env], Any]:
        """Like :meth:`compile` but coerces the result to a bool mask."""
        fn = self._compile(expr, allow_aggregates)

        def run(env: Env) -> Any:
            return as_mask(fn(env), env.length)

        return run

    # -- node dispatch -------------------------------------------------------

    def _compile(self, expr: Expr, allow_aggregates: bool) -> Callable[[Env], Any]:
        if isinstance(expr, Literal):
            value = expr.value
            return lambda env: value
        if isinstance(expr, ColumnRef):
            name = expr.name
            return lambda env: env.column(name)
        if isinstance(expr, Star):
            return lambda env: 1
        if isinstance(expr, UnaryOp):
            return self._compile_unary(expr, allow_aggregates)
        if isinstance(expr, BinaryOp):
            return self._compile_binary(expr, allow_aggregates)
        if isinstance(expr, ScalarCall):
            return self._compile_scalar_call(expr, allow_aggregates)
        if isinstance(expr, AggregateCall):
            if not allow_aggregates:
                raise UnsupportedExpression(
                    f"aggregate {expr.name}(...) outside a group context"
                )
            slot = expr.slot
            return lambda env: env.aggregate(slot)  # type: ignore[misc]
        if isinstance(expr, SuperAggregateCall):
            raise UnsupportedExpression(
                f"superaggregate {expr.name}$(...) requires supergroup state"
            )
        if isinstance(expr, StatefulCall):
            raise UnsupportedExpression(
                f"SFUN {expr.name}(...) requires ordered per-tuple state"
            )
        if isinstance(expr, FunctionCall):
            raise UnsupportedExpression(
                f"unclassified function call {expr.name!r}; run the analyzer first"
            )
        raise UnsupportedExpression(f"unknown expression node {type(expr).__name__}")

    def _compile_unary(self, expr: UnaryOp, allow_aggregates: bool) -> Callable[[Env], Any]:
        operand = self._compile(expr.operand, allow_aggregates)
        if expr.op == "-":

            def run_neg(env: Env) -> Any:
                value = operand(env)
                if isinstance(value, np.ndarray) and value.dtype == np.bool_:
                    # numpy refuses unary minus on booleans; Python's
                    # -True is -1, so promote first.
                    return -value.astype(np.int64)
                return -value

            return run_neg
        if expr.op == "NOT":

            def run_not(env: Env) -> Any:
                return np.logical_not(as_mask(operand(env), env.length))

            return run_not
        raise UnsupportedExpression(f"unknown unary operator {expr.op!r}")

    def _compile_binary(self, expr: BinaryOp, allow_aggregates: bool) -> Callable[[Env], Any]:
        left = self._compile(expr.left, allow_aggregates)
        right = self._compile(expr.right, allow_aggregates)
        op = expr.op
        if op == "AND":

            def run_and(env: Env) -> Any:
                # No short-circuit: both sides evaluate over the batch.
                return np.logical_and(
                    as_mask(left(env), env.length), as_mask(right(env), env.length)
                )

            return run_and
        if op == "OR":

            def run_or(env: Env) -> Any:
                return np.logical_or(
                    as_mask(left(env), env.length), as_mask(right(env), env.length)
                )

            return run_or

        def run(env: Env) -> Any:
            return apply_binary(expr, left(env), right(env))

        return run

    def _compile_scalar_call(
        self, expr: ScalarCall, allow_aggregates: bool
    ) -> Callable[[Env], Any]:
        fn = self.functions.get(expr.name)
        if not self.functions.is_deterministic(expr.name):
            raise UnsupportedExpression(
                f"scalar function {expr.name!r} is nondeterministic; batch"
                " re-evaluation could disagree with the tuple path"
            )
        arg_fns: List[Callable[[Env], Any]] = [
            self._compile(a, allow_aggregates) for a in expr.args
        ]
        nargs = len(arg_fns)
        ufn = np.frompyfunc(fn, nargs, 1) if nargs else None

        def run(env: Env) -> Any:
            args = [f(env) for f in arg_fns]
            # The tuple path calls the function once per row.
            env.charge("function_call", env.length)
            if ufn is None or not any(isinstance(a, np.ndarray) for a in args):
                return fn(*args)
            # Registered functions must see Python scalars, as on the
            # tuple path: int64 elements would silently wrap where
            # Python ints grow (hash32-style bit mixing).
            boxed = [
                a.astype(object)
                if isinstance(a, np.ndarray) and a.dtype != object
                else a
                for a in args
            ]
            return _tighten(ufn(*boxed))

        return run
