"""Columnar batch execution engine (DESIGN.md §11).

Enabled per instance with ``Gigascope(vectorize=True)`` (CLI:
``repro query --vectorize``).  Selection and plain aggregation plans
compile to whole-batch numpy evaluation; plans the batch engine cannot
express — SFUNs, superaggregates, nondeterministic scalar functions,
custom aggregate registrations — fall back per operator to the tuple
path with byte-identical results either way.
"""

from repro.dsms.vectorized.batch import RecordBatch, concat_batches
from repro.dsms.vectorized.compiler import (
    BatchCompiler,
    Env,
    UnsupportedExpression,
    as_column,
    as_mask,
    make_env,
)
from repro.dsms.vectorized.operators import (
    VectorizedAggregationOperator,
    VectorizedSelectionOperator,
)

__all__ = [
    "RecordBatch",
    "concat_batches",
    "BatchCompiler",
    "Env",
    "UnsupportedExpression",
    "as_column",
    "as_mask",
    "make_env",
    "VectorizedAggregationOperator",
    "VectorizedSelectionOperator",
]
