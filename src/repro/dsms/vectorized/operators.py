"""Vectorized selection and aggregation operators.

Both subclass their tuple-path counterparts and override only the
per-tuple hot path with a ``process_batch`` method; everything that is
*not* per-tuple — window close, flush, checkpoint/restore, metric
binding — is inherited, so the two engines share one group table format
(checkpoints are interchangeable) and a single-record ``process`` call
still works when a vectorized operator sits downstream of a
non-vectorized one.

Accounting parity is a hard invariant: every cost-model charge and
metric increment the tuple path makes per record, these operators make
as a batch delta — the conservation identities
(``in == filtered + rows_out``, ``in == filtered + admitted``) and the
cost-account totals come out byte-identical for the same input.

Group state stays as ordinary :class:`Aggregate` instances; each batch
is factorized into group codes (iterated pairwise ``np.unique`` packing)
and per-group *folds* write batched deltas into those instances.  Folds
preserve exactness: integer folds use int64 partials converted back to
Python ints, and anything where batching could change the answer —
float sums (addition order), NaN extremes, object columns — drops to a
sequential per-row loop over the same ``update`` calls the tuple path
makes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExecutionError
from repro.dsms.aggregates import (
    Aggregate,
    AggregateRegistry,
    AvgAggregate,
    CountAggregate,
    CountDistinctAggregate,
    FirstAggregate,
    LastAggregate,
    MaxAggregate,
    MinAggregate,
    SumAggregate,
)
from repro.dsms.cost import CostModel, NULL_COST_MODEL
from repro.dsms.expr import column_names
from repro.dsms.functions import FunctionRegistry
from repro.dsms.operators.aggregation import AggregationOperator
from repro.dsms.operators.selection import SelectionOperator
from repro.dsms.parser.analyzer import AnalyzedQuery
from repro.dsms.vectorized.batch import RecordBatch
from repro.dsms.vectorized.compiler import (
    BatchCompiler,
    Env,
    UnsupportedExpression,
    as_column,
)
from repro.streams.records import Record
from repro.streams.schema import StreamSchema


def _py(value: Any) -> Any:
    """Unbox a numpy scalar to the Python value the tuple path carries."""
    return value.item() if isinstance(value, np.generic) else value


class VectorizedSelectionOperator(SelectionOperator):
    """WHERE + SELECT evaluated one batch at a time."""

    execution_mode = "vectorized"

    def __init__(
        self,
        analyzed: AnalyzedQuery,
        output_schema: StreamSchema,
        scalars: FunctionRegistry,
        cost_model: CostModel = NULL_COST_MODEL,
        account: str = "selection",
    ) -> None:
        super().__init__(analyzed, output_schema, scalars, cost_model, account)
        compiler = BatchCompiler(scalars)
        where = analyzed.ast.where
        self._where_fn = compiler.compile_predicate(where) if where is not None else None
        self._select_fns = [compiler.compile(item.expr) for item in analyzed.ast.select]
        self._charge = lambda op, count: self._cost.charge(self._account, op, count)

    def process_batch(self, batch: RecordBatch) -> RecordBatch:
        n = len(batch)
        if n == 0:
            return RecordBatch.empty(self.output_schema)
        self._cost.charge(self._account, "tuple_read", n)
        self.m_in.inc(n)
        if self._where_fn is not None:
            self._cost.charge(self._account, "predicate_eval", n)
            mask = self._where_fn(Env(batch.column, n, self._charge))
            kept = int(np.count_nonzero(mask))
            if kept < n:
                self.m_filtered.inc(n - kept)
            if kept == 0:
                return RecordBatch.empty(self.output_schema)
            filtered = batch if kept == n else batch.take(mask)
        else:
            filtered = batch
            kept = n
        env = Env(filtered.column, kept, self._charge)
        columns = {
            attr.name: as_column(fn(env), kept)
            for attr, fn in zip(self.output_schema, self._select_fns)
        }
        self.m_rows_out.inc(kept)
        return RecordBatch(self.output_schema, columns=columns, length=kept)


# ---------------------------------------------------------------------------
# Group factorization
# ---------------------------------------------------------------------------


def _factorize(key_arrays: Sequence[Any], n: int) -> Tuple[Any, List[Tuple[Any, ...]]]:
    """Map each row to a dense group code, groups in first-seen order.

    Returns ``(codes, keys)`` where ``codes[i]`` indexes ``keys`` and
    ``keys`` holds Python-scalar tuples identical to the tuple path's
    group-table keys.  Multi-column keys are packed pairwise with
    ``np.unique`` recompression, which keeps intermediate codes below
    ``n**2`` (no overflow) regardless of column count.
    """
    if not key_arrays:
        return np.zeros(n, dtype=np.int64), [()]
    for col in key_arrays:
        if not isinstance(col, np.ndarray) or col.dtype == object:
            return _factorize_sequential(key_arrays, n)
        if col.dtype.kind == "f" and np.isnan(col).any():
            # np.unique collapses NaNs; dict keys do not.  Keep the
            # tuple path's (degenerate) semantics via the dict.
            return _factorize_sequential(key_arrays, n)
    combined: Optional[Any] = None
    for col in key_arrays:
        uniques, inverse = np.unique(col, return_inverse=True)
        inverse = inverse.reshape(-1)
        if combined is None:
            combined = inverse
        else:
            combined = combined * len(uniques) + inverse
            _, combined = np.unique(combined, return_inverse=True)
            combined = combined.reshape(-1)
    assert combined is not None
    _, first_idx, inverse = np.unique(
        combined, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1)
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(len(first_idx), dtype=np.int64)
    rank[order] = np.arange(len(first_idx), dtype=np.int64)
    codes = rank[inverse]
    first_rows = first_idx[order]
    key_lists = [col[first_rows].tolist() for col in key_arrays]
    keys = list(zip(*key_lists))
    return codes, keys


def _factorize_sequential(
    key_arrays: Sequence[Any], n: int
) -> Tuple[Any, List[Tuple[Any, ...]]]:
    columns = [
        col.tolist() if isinstance(col, np.ndarray) else list(col)
        for col in key_arrays
    ]
    table: Dict[Tuple[Any, ...], int] = {}
    keys: List[Tuple[Any, ...]] = []
    codes = np.empty(n, dtype=np.int64)
    for i, key in enumerate(zip(*columns)):
        code = table.get(key)
        if code is None:
            code = len(keys)
            table[key] = code
            keys.append(key)
        codes[i] = code
    return codes, keys


# ---------------------------------------------------------------------------
# Per-group aggregate folds
# ---------------------------------------------------------------------------
#
# Each fold applies one batch of (code, value) updates to the per-group
# Aggregate instances.  Values handed to an Aggregate are always Python
# scalars, so finalized values (and checkpoints) are indistinguishable
# from the tuple path's.  Count and Avg reach into the accumulator
# fields directly — their update() signatures cannot express a batched
# delta — which is safe here because the instances are the sibling
# classes defined in repro.dsms.aggregates.


def _sequential(groups: List[List[Aggregate]], slot: int, codes: Any, values: Any) -> None:
    code_list = codes.tolist()
    if isinstance(values, np.ndarray):
        value_list = values.tolist()
    elif isinstance(values, (list, tuple)):
        value_list = list(values)
    else:
        value_list = [values] * len(code_list)
    for code, value in zip(code_list, value_list):
        groups[code][slot].update(value)


def _int_values(values: Any) -> Optional[Any]:
    """values as an exact int64 array, or None if that could lie."""
    if not isinstance(values, np.ndarray):
        return None
    if values.dtype.kind in "iu":
        return values
    if values.dtype == np.bool_:
        return values.astype(np.int64)
    return None


def _fold_sum(groups, slot, codes, values, n_groups):
    ints = _int_values(values)
    if ints is None:
        if isinstance(values, (int,)) and not isinstance(values, bool):
            counts = np.bincount(codes, minlength=n_groups)
            for g, count in enumerate(counts.tolist()):
                groups[g][slot].update(values * count)
            return
        _sequential(groups, slot, codes, values)  # float order / objects
        return
    part = np.zeros(n_groups, dtype=np.int64)
    np.add.at(part, codes, ints)
    for g, delta in enumerate(part.tolist()):
        groups[g][slot].update(delta)


def _fold_count(groups, slot, codes, values, n_groups):
    counts = np.bincount(codes, minlength=n_groups)
    for g, count in enumerate(counts.tolist()):
        groups[g][slot]._count += int(count)


def _fold_avg(groups, slot, codes, values, n_groups):
    counts = np.bincount(codes, minlength=n_groups)
    ints = _int_values(values)
    if ints is None:
        _sequential(groups, slot, codes, values)
        return
    part = np.zeros(n_groups, dtype=np.int64)
    np.add.at(part, codes, ints)
    for g, (delta, count) in enumerate(zip(part.tolist(), counts.tolist())):
        agg = groups[g][slot]
        agg._total += delta
        agg._count += int(count)


def _fold_extreme(ufunc_at, sentinel_for):
    def fold(groups, slot, codes, values, n_groups):
        if not isinstance(values, np.ndarray):
            for g in range(n_groups):
                groups[g][slot].update(values)
            return
        if values.dtype.kind not in "iuf" or (
            values.dtype.kind == "f" and np.isnan(values).any()
        ):
            # Python's comparison chain keeps the first NaN it saw;
            # numpy's min/max propagate NaN differently.  Stay exact.
            _sequential(groups, slot, codes, values)
            return
        part = np.full(n_groups, sentinel_for(values.dtype), dtype=values.dtype)
        ufunc_at(part, codes, values)
        for g, extreme in enumerate(part.tolist()):
            groups[g][slot].update(extreme)

    return fold


def _min_sentinel(dtype):
    return np.inf if dtype.kind == "f" else np.iinfo(dtype).max


def _max_sentinel(dtype):
    return -np.inf if dtype.kind == "f" else np.iinfo(dtype).min


_fold_min = _fold_extreme(np.minimum.at, _min_sentinel)
_fold_max = _fold_extreme(np.maximum.at, _max_sentinel)


def _fold_first(groups, slot, codes, values, n_groups):
    present, first_idx = np.unique(codes, return_index=True)
    if isinstance(values, np.ndarray):
        for g, idx in zip(present.tolist(), first_idx.tolist()):
            groups[g][slot].update(_py(values[idx]))
    else:
        for g in present.tolist():
            groups[g][slot].update(values)


def _fold_last(groups, slot, codes, values, n_groups):
    present, rev_idx = np.unique(codes[::-1], return_index=True)
    last_idx = len(codes) - 1 - rev_idx
    if isinstance(values, np.ndarray):
        for g, idx in zip(present.tolist(), last_idx.tolist()):
            groups[g][slot].update(_py(values[idx]))
    else:
        for g in present.tolist():
            groups[g][slot].update(values)


def _fold_count_distinct(groups, slot, codes, values, n_groups):
    if not isinstance(values, np.ndarray):
        for g in np.unique(codes).tolist():
            groups[g][slot].update(values)
        return
    if values.dtype == object or (
        values.dtype.kind == "f" and np.isnan(values).any()
    ):
        # Sets distinguish NaN objects; np.unique would merge them.
        _sequential(groups, slot, codes, values)
        return
    uniques, value_codes = np.unique(values, return_inverse=True)
    value_codes = value_codes.reshape(-1)
    pairs = np.unique(codes * len(uniques) + value_codes)
    unique_values = uniques.tolist()
    width = len(uniques)
    for pair in pairs.tolist():
        groups[pair // width][slot].update(unique_values[pair % width])


#: Aggregate classes with a batched fold.  Registrations resolving to
#: any other class force the whole operator back to the tuple path.
FOLDS: Dict[type, Callable[..., None]] = {
    SumAggregate: _fold_sum,
    CountAggregate: _fold_count,
    AvgAggregate: _fold_avg,
    MinAggregate: _fold_min,
    MaxAggregate: _fold_max,
    FirstAggregate: _fold_first,
    LastAggregate: _fold_last,
    CountDistinctAggregate: _fold_count_distinct,
}


def _group_column(values: List[Any]) -> Any:
    """A column over the group table, typed only when provably exact.

    Strict ``type(v) is`` checks (bool subclasses int, so ``isinstance``
    would lie) guarantee ``tolist`` round-trips every value unchanged;
    anything mixed, int64-overflowing or non-numeric stays an object
    array and takes the compiler's element-wise exact path.
    """
    if values:
        t = type(values[0])
        if t is int and all(type(v) is int for v in values):
            try:
                return np.asarray(values, dtype=np.int64)
            except OverflowError:
                pass
        elif t is float and all(type(v) is float for v in values):
            return np.asarray(values, dtype=np.float64)
        elif t is bool and all(type(v) is bool for v in values):
            return np.asarray(values, dtype=np.bool_)
    arr = np.empty(len(values), dtype=object)
    arr[:] = values
    return arr


class VectorizedAggregationOperator(AggregationOperator):
    """Windowed GROUP BY evaluated one batch at a time.

    A batch is first segmented at window boundaries (any change in the
    ordered group-by values, computed pre-WHERE, closes the window —
    identical to the tuple path's per-record check), then each segment
    is filtered, factorized into group codes, and folded into the group
    table.  Window close is also columnar: HAVING and SELECT evaluate
    once over the whole group table (key columns + finalized aggregate
    columns) instead of once per group, with the same charges, metrics
    and trace events as the tuple path's ``_emit_window``.
    """

    execution_mode = "vectorized"

    def __init__(
        self,
        analyzed: AnalyzedQuery,
        output_schema: StreamSchema,
        scalars: FunctionRegistry,
        aggregates: AggregateRegistry,
        cost_model: CostModel = NULL_COST_MODEL,
        account: str = "aggregation",
    ) -> None:
        super().__init__(
            analyzed, output_schema, scalars, aggregates, cost_model, account
        )
        compiler = BatchCompiler(scalars)
        self._gb_fns = [compiler.compile(item.expr) for item in analyzed.group_by]
        where = analyzed.ast.where
        self._where_fn = compiler.compile_predicate(where) if where is not None else None
        self._arg_fns: List[Optional[Callable[[Env], Any]]] = []
        self._folds: List[Callable[..., None]] = []
        for node in analyzed.aggregates:
            probe = aggregates.create(node.name)
            fold = FOLDS.get(type(probe))
            if fold is None:
                raise UnsupportedExpression(
                    f"aggregate {node.name!r} resolves to"
                    f" {type(probe).__name__}, which has no batched fold"
                )
            self._folds.append(fold)
            arg = node.args[0] if node.args else None
            self._arg_fns.append(compiler.compile(arg) if arg is not None else None)
        # HAVING/SELECT run columnar over the group table at window
        # close (compiling here also means unsupported trees fall back
        # at build time, not at the first window close).
        having = analyzed.ast.having
        self._having_fn = (
            compiler.compile_predicate(having, allow_aggregates=True)
            if having is not None
            else None
        )
        self._select_fns = [
            compiler.compile(item.expr, allow_aggregates=True)
            for item in analyzed.ast.select
        ]
        self._charge = lambda op, count: self._cost.charge(self._account, op, count)

    # -- batch path ----------------------------------------------------------

    def _row_env(self, batch: RecordBatch, gb_arrays: List[Any], length: int) -> Env:
        """Row env where group-by names shadow stream columns, exactly
        like the tuple path's _AggTupleContext."""
        gb_index = self._gb_index

        def column(name: str) -> Any:
            idx = gb_index.get(name)
            if idx is not None:
                return gb_arrays[idx]
            return batch.column(name)

        return Env(column, length, self._charge)

    def process_batch(self, batch: RecordBatch) -> RecordBatch:
        n = len(batch)
        if n == 0:
            return RecordBatch.from_records(self.output_schema, [])
        env = Env(batch.column, n, self._charge)
        gb_arrays = [as_column(fn(env), n) for fn in self._gb_fns]
        window_arrays = [gb_arrays[i] for i in self._ordered_indices]

        # WHERE evaluates once over the whole batch (group-by names
        # shadowing included); segments slice the mask.
        mask = None
        if self._where_fn is not None:
            self._cost.charge(self._account, "predicate_eval", n)
            mask = self._where_fn(self._row_env(batch, gb_arrays, n))

        self._cost.charge(self._account, "tuple_read", n)
        self._cost.charge(self._account, "hash_probe", n)
        self.m_in.inc(n)

        # Window segmentation happens pre-WHERE: any tuple whose ordered
        # group-by values differ from the previous tuple's closes the
        # window, whether or not WHERE admits it.
        if window_arrays and n > 1:
            change = np.zeros(n, dtype=np.bool_)
            for col in window_arrays:
                change[1:] |= np.asarray(col[1:] != col[:-1], dtype=np.bool_)
            bounds = [0] + np.flatnonzero(change).tolist() + [n]
        else:
            bounds = [0, n]

        outputs: List[Record] = []
        for start, stop in zip(bounds, bounds[1:]):
            window = tuple(_py(col[start]) for col in window_arrays)
            if self._current_window is None:
                self._current_window = window
                self.obs_trace.emit(
                    "window_open", query=self.obs_query, window=list(window)
                )
            elif window != self._current_window:
                outputs.extend(self._emit_window())
                self._current_window = window
                self.obs_trace.emit(
                    "window_open", query=self.obs_query, window=list(window)
                )
            self._process_segment(batch, gb_arrays, mask, start, stop)
        return RecordBatch.from_records(self.output_schema, outputs)

    def _process_segment(
        self,
        batch: RecordBatch,
        gb_arrays: List[Any],
        mask: Optional[Any],
        start: int,
        stop: int,
    ) -> None:
        seg_n = stop - start
        if mask is not None:
            seg_mask = mask[start:stop]
            admitted = int(np.count_nonzero(seg_mask))
            if admitted < seg_n:
                self.m_filtered.inc(seg_n - admitted)
            if admitted == 0:
                return
        else:
            seg_mask = None
            admitted = seg_n
        self.m_admitted.inc(admitted)

        # Aggregate arguments see the admitted rows of this segment as
        # lazy views over the parent batch's columns (group-by names
        # shadow stream columns, as everywhere) — no segment batch, no
        # records-backing copy.
        if seg_mask is None or admitted == seg_n:
            seg_gb = [col[start:stop] for col in gb_arrays]

            def base_column(name: str) -> Any:
                return batch.column(name)[start:stop]

        else:
            seg_gb = [col[start:stop][seg_mask] for col in gb_arrays]

            def base_column(name: str) -> Any:
                return batch.column(name)[start:stop][seg_mask]

        codes, keys = _factorize(seg_gb, admitted)
        groups: List[List[Aggregate]] = []
        for key in keys:
            group = self._groups.get(key)
            if group is None:
                group = [
                    self._registry.create(node.name)
                    for node in self.analyzed.aggregates
                ]
                self._groups[key] = group
                self._cost.charge(self._account, "hash_insert")
                self.m_groups_created.inc()
            groups.append(group)

        if self.analyzed.aggregates:
            gb_index = self._gb_index

            def column(name: str) -> Any:
                idx = gb_index.get(name)
                if idx is not None:
                    return seg_gb[idx]
                return base_column(name)

            env = Env(column, admitted, self._charge)
            for slot, (arg_fn, fold) in enumerate(zip(self._arg_fns, self._folds)):
                values = arg_fn(env) if arg_fn is not None else 1
                fold(groups, slot, codes, values, len(keys))
            self._cost.charge(
                self._account,
                "aggregate_update",
                admitted * len(self.analyzed.aggregates),
            )

    # -- window close --------------------------------------------------------

    def _emit_window(self) -> List[Record]:
        """Columnar window close with exact tuple-path accounting parity:
        one window_flush, predicate_eval per group, function_call per
        group per scalar call site (HAVING sees all groups, SELECT only
        survivors), output_tuple per surviving group."""
        self._cost.charge(self._account, "window_flush")
        n_groups = len(self._groups)
        outputs: List[Record] = []
        if n_groups:
            keys = list(self._groups.keys())
            tables = list(self._groups.values())
            gb_index = self._gb_index
            key_cache: Dict[int, Any] = {}
            agg_cache: Dict[int, Any] = {}

            def column(name: str) -> Any:
                idx = gb_index.get(name)
                if idx is None:
                    raise ExecutionError(
                        f"column {name!r} is not a group-by variable"
                    )
                col = key_cache.get(idx)
                if col is None:
                    col = _group_column([key[idx] for key in keys])
                    key_cache[idx] = col
                return col

            def aggregate(slot: int) -> Any:
                col = agg_cache.get(slot)
                if col is None:
                    col = _group_column([aggs[slot].value() for aggs in tables])
                    agg_cache[slot] = col
                return col

            env = Env(column, n_groups, self._charge, aggregate)
            if self._having_fn is not None:
                self._cost.charge(self._account, "predicate_eval", n_groups)
                hmask = self._having_fn(env)
                kept = int(np.count_nonzero(hmask))
                if kept < n_groups:
                    self.m_having_rejected.inc(n_groups - kept)
            else:
                hmask = None
                kept = n_groups
            if kept:
                if hmask is not None and kept < n_groups:
                    sel_env = Env(
                        lambda name: column(name)[hmask],
                        kept,
                        self._charge,
                        lambda slot: aggregate(slot)[hmask],
                    )
                else:
                    sel_env = env
                col_lists = [
                    as_column(fn(sel_env), kept).tolist()
                    for fn in self._select_fns
                ]
                outputs = [
                    Record(self.output_schema, list(row))
                    for row in zip(*col_lists)
                ]
                self._cost.charge(self._account, "output_tuple", kept)
        self.m_windows.inc()
        self.m_rows_out.inc(len(outputs))
        self.obs_trace.emit(
            "window_close",
            query=self.obs_query,
            window=list(self._current_window or ()),
            rows_out=len(outputs),
        )
        self._groups.clear()
        return outputs
