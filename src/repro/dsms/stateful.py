"""STATE / SFUN framework — stateful functions (paper §6.2).

A *state* is a named structure shared by a family of functions; the
sampling operator allocates one instance per supergroup and passes it
implicitly to every SFUN call.  The paper declares these in a C-like IDL::

    STATE char[50] subsetsum_sampling_state;
    SFUN int subsetsum_sampling_state ssample(int, CONST int);

and gives each state an initialisation hook receiving the equivalent state
from the *previous* time window (or NULL)::

    void _sfun_state_init_<state>(void *new, void *old);

Here a state is a Python class registered with :class:`StatefulLibrary`;
the window-carryover hook is the classmethod ``initial(old)``, and the
window-close signal (``final_init`` in paper §6.4) is the optional method
``on_window_final()``.

SFUNs are plain callables whose first parameter is the state instance.
The analyzer classifies a parsed function call as stateful when its name
is registered in the library, and records which state it touches; the
planner then knows which states each supergroup must allocate.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, ClassVar, Dict, List, Optional, Sequence, Type

from repro.errors import RegistryError, StatefulFunctionError


class StatefulState:
    """Base class for SFUN state structures.

    Subclasses override :meth:`initial` to implement window-to-window
    carryover and may override :meth:`on_window_final` to react to the end
    of a window (paper §6.4 calls ``final_init()`` on every state at the
    window border, before HAVING runs).
    """

    #: Whether instances can be snapshotted by :meth:`checkpoint` and
    #: rebuilt by :meth:`restore`.  A state holding unsnapshottable
    #: resources (live sockets, ffi handles, external cursors) sets this
    #: to False; the durable runner then refuses the query up front, and
    #: the static analyzer reports the same refusal at lint time (SA305).
    checkpointable: ClassVar[bool] = True

    @classmethod
    def initial(cls, old: Optional["StatefulState"]) -> "StatefulState":
        """Create the state for a new supergroup.

        ``old`` is the state of the supergroup with the same non-ordered
        key in the *previous* window, or ``None`` for a brand-new
        supergroup.  The default ignores history.
        """
        return cls()

    def on_window_final(self) -> None:
        """Called once when the window containing this state closes."""

    # -- crash-recovery checkpoints ---------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """A picklable snapshot of this state's fields.

        State *classes* are often closure-local (the ``*_library``
        factories define them inside the factory so they close over the
        pack configuration), which makes the instances themselves
        unpicklable by class reference.  The field dict, by contrast, is
        plain data (numbers, lists, ``random.Random`` instances), so the
        supervisor checkpoints states as ``(state name, field dict)`` and
        rebuilds the instance from the library on restore.  Subclasses
        holding unsnapshottable resources override this pair.
        """
        return copy.deepcopy(self.__dict__)

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Reinstate the fields captured by :meth:`checkpoint`."""
        self.__dict__.clear()
        self.__dict__.update(copy.deepcopy(snapshot))


SFun = Callable[..., Any]


class StatefulLibrary:
    """Registry of STATE types and the SFUNs bound to them."""

    def __init__(self) -> None:
        self._states: Dict[str, Type[StatefulState]] = {}
        self._sfuns: Dict[str, str] = {}  # function name -> state name
        self._callables: Dict[str, SFun] = {}

    # -- registration (usable as decorators) ---------------------------------

    def state(self, name: str) -> Callable[[Type[StatefulState]], Type[StatefulState]]:
        """Class decorator: register a STATE type under ``name``."""

        def register(cls: Type[StatefulState]) -> Type[StatefulState]:
            if name in self._states:
                raise RegistryError(f"state {name!r} already registered")
            if not issubclass(cls, StatefulState):
                raise RegistryError(
                    f"state {name!r} must subclass StatefulState, got {cls.__name__}"
                )
            self._states[name] = cls
            return cls

        return register

    def sfun(self, name: str, state: str) -> Callable[[SFun], SFun]:
        """Function decorator: register an SFUN bound to state ``state``."""

        def register(fn: SFun) -> SFun:
            if name in self._sfuns:
                raise RegistryError(f"stateful function {name!r} already registered")
            self._sfuns[name] = state
            self._callables[name] = fn
            return fn

        return register

    def add_state(self, name: str, cls: Type[StatefulState]) -> None:
        self.state(name)(cls)

    def add_sfun(self, name: str, state: str, fn: SFun) -> None:
        self.sfun(name, state)(fn)

    # -- lookups ---------------------------------------------------------------

    def __contains__(self, fn_name: str) -> bool:
        return fn_name in self._sfuns

    def state_of(self, fn_name: str) -> str:
        try:
            return self._sfuns[fn_name]
        except KeyError:
            raise RegistryError(f"unknown stateful function {fn_name!r}") from None

    def state_class(self, state_name: str) -> Type[StatefulState]:
        try:
            return self._states[state_name]
        except KeyError:
            raise RegistryError(f"unknown state {state_name!r}") from None

    def callable_of(self, fn_name: str) -> SFun:
        try:
            return self._callables[fn_name]
        except KeyError:
            raise RegistryError(f"unknown stateful function {fn_name!r}") from None

    def checkpointable(self, state_name: str) -> bool:
        """Static capability check: can this state ride a checkpoint?

        Reads the state class's :attr:`StatefulState.checkpointable`
        declaration without instantiating anything — the analyzer
        (rule SA305) and :class:`~repro.dsms.durability.DurableRunner`
        both decide from this before any tuple flows.
        """
        return bool(getattr(self.state_class(state_name), "checkpointable", True))

    def state_names(self) -> List[str]:
        return sorted(self._states)

    def sfun_names(self) -> List[str]:
        return sorted(self._sfuns)

    # -- composition -------------------------------------------------------------

    def merge(self, other: "StatefulLibrary") -> "StatefulLibrary":
        """A new library containing both registries (collisions raise)."""
        merged = StatefulLibrary()
        for lib in (self, other):
            for state_name, cls in lib._states.items():
                if state_name in merged._states:
                    raise RegistryError(f"state {state_name!r} registered twice in merge")
                merged._states[state_name] = cls
            for fn_name, state_name in lib._sfuns.items():
                if fn_name in merged._sfuns:
                    raise RegistryError(
                        f"stateful function {fn_name!r} registered twice in merge"
                    )
                merged._sfuns[fn_name] = state_name
                merged._callables[fn_name] = lib._callables[fn_name]
        return merged

    # -- runtime -------------------------------------------------------------------

    def instantiate_states(
        self,
        state_names: Sequence[str],
        old_states: Optional[Dict[str, StatefulState]] = None,
    ) -> Dict[str, StatefulState]:
        """Allocate fresh state instances for a new supergroup.

        Mirrors the paper's superaggregate-structure initialisation: each
        state's ``initial`` receives the equivalent old-window state or
        ``None``.
        """
        states: Dict[str, StatefulState] = {}
        for name in state_names:
            cls = self.state_class(name)
            old = old_states.get(name) if old_states else None
            states[name] = cls.initial(old)
        return states

    def checkpoint_states(
        self, states: Dict[str, StatefulState]
    ) -> Dict[str, Dict[str, Any]]:
        """Picklable snapshot of a supergroup's state set, keyed by state
        name (instances cannot pickle directly — see
        :meth:`StatefulState.checkpoint`)."""
        return {name: state.checkpoint() for name, state in states.items()}

    def restore_states(
        self, snapshot: Dict[str, Dict[str, Any]]
    ) -> Dict[str, StatefulState]:
        """Rebuild live state instances from a :meth:`checkpoint_states`
        snapshot, resolving each state name against this library."""
        states: Dict[str, StatefulState] = {}
        for name, fields in snapshot.items():
            cls = self.state_class(name)
            state = cls.__new__(cls)
            state.restore(fields)
            states[name] = state
        return states

    def invoke(
        self,
        fn_name: str,
        states: Dict[str, StatefulState],
        args: Sequence[Any],
    ) -> Any:
        """Call an SFUN against the supergroup's state set."""
        state_name = self.state_of(fn_name)
        try:
            state = states[state_name]
        except KeyError:
            raise StatefulFunctionError(
                f"state {state_name!r} for SFUN {fn_name!r} was not allocated;"
                " this usually means the call appears outside a sampling query"
            ) from None
        return self.callable_of(fn_name)(state, *args)
