"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.  The
sub-hierarchy mirrors the package layout: schema/stream errors, query
language errors (lex/parse/semantic), and runtime errors raised while a
query plan is executing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A stream schema is malformed or a record does not match its schema."""


class StreamError(ReproError):
    """A stream source failed (exhausted ring buffer, bad generator config)."""


class TraceCorruptError(StreamError):
    """A persisted trace (or journal) file is truncated or garbled.

    Carries the byte ``offset`` at which decoding failed and the
    ``record_index`` of the first undecodable record (``-1`` when the
    failure is in the header, before any record), so callers — the
    resilient file-tail source in particular — can resync on the record
    framing instead of giving up on the whole file.
    """

    def __init__(self, message: str, offset: int = 0, record_index: int = -1) -> None:
        super().__init__(
            f"{message} (byte offset {offset}, record index {record_index})"
        )
        self.offset = offset
        self.record_index = record_index


class SourceError(StreamError):
    """A resilient source exhausted its retry budget (carries the history)."""

    def __init__(self, message: str, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class QueryError(ReproError):
    """Base class for errors in the query language front end."""


class LexError(QueryError):
    """The tokenizer encountered an unrecognised character sequence."""

    def __init__(self, message: str, position: int, line: int) -> None:
        super().__init__(f"{message} (line {line}, offset {position})")
        self.position = position
        self.line = line


class ParseError(QueryError):
    """The parser could not derive a query from the token stream.

    ``line``/``col`` locate the offending token when known (both 0 for
    errors raised without position context, e.g. programmatic rewrites).
    """

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        super().__init__(message)
        self.line = line
        self.col = col


class AnalysisError(QueryError):
    """The query is syntactically valid but semantically ill-formed.

    Examples: SUPERGROUP variables that are not GROUP BY variables, a
    CLEANING BY clause without CLEANING WHEN, reference to an unknown
    column or function.
    """


class PlanningError(QueryError):
    """The analyzer output could not be converted into an operator plan."""


class ExecutionError(ReproError):
    """An operator failed while processing tuples.

    ``span`` locates the expression that failed when the evaluator knows
    it (type errors in WHERE/SELECT arithmetic carry the offending
    operator's source span); the message then ends with ``at line L,
    col C`` so CLI users can find the clause without a traceback.
    """

    def __init__(self, message: str, span=None) -> None:
        if span is not None:
            message = f"{message} (at line {span.line}, col {span.col})"
        super().__init__(message)
        self.span = span


class RegistryError(ReproError):
    """A function, aggregate, or state was registered twice or not found."""


class StatefulFunctionError(ExecutionError):
    """A stateful function was invoked outside a sampling-operator context
    or with an incompatible state."""


class CostModelError(ReproError):
    """The CPU cost model was configured or charged inconsistently."""
