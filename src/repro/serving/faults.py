"""Per-query fault isolation for the serving layer (docs/SERVING.md).

A standing-query server multiplexes many independently owned queries
over one feed; one tenant's buggy scalar must never take the feed loop
down for everyone else.  The isolation discipline mirrors what the
sharded runtime already does for workers (PR 3's supervisor) and the
ingest edge does for malformed records (PR 5's quarantine), applied per
*query*:

* :class:`CircuitBreaker` — the per-query fault budget.  Purely
  batch-count-driven (no clocks), so breaker decisions are a
  deterministic function of the data and replay byte-identically on
  ``--resume``: CLOSED → OPEN after ``failure_threshold`` consecutive
  batch failures → after ``cooldown_batches`` skipped batches,
  HALF_OPEN admits one probe batch → success re-CLOSES, failure
  re-OPENs.

* :class:`DeadLetterLog` — the bounded quarantine record.  Every batch
  a query failed on (exception, record-offset span, batch size, breaker
  verdict) is retained for inspection and JSONL export, exactly like
  the ingest-edge :class:`~repro.streams.sources.QuarantineStream` —
  counted, capped, never the unbounded buffer that sinks the process it
  protects.

Both carry ``checkpoint()``/``restore()`` so quarantine state rides the
serving journal's commits and a resumed serve skips the same batches
the original would have.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: breaker states, in escalation order
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: numeric encoding for the ``serving_breaker_state`` gauge
#: (0 = closed, 1 = half-open probe, 2 = open).
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


@dataclass(frozen=True)
class BreakerConfig:
    """The per-query error budget.

    ``failure_threshold`` consecutive batch failures open the breaker;
    while open, ``cooldown_batches`` offered batches are skipped (and
    accounted — see ``serve_poison_skipped_total``) before one probe
    batch is admitted half-open.
    """

    failure_threshold: int = 3
    cooldown_batches: int = 8

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_batches < 1:
            raise ValueError("cooldown_batches must be >= 1")


@dataclass
class CircuitBreaker:
    """One query's fault boundary, driven by batch outcomes.

    The engine calls :meth:`admits` once per offered batch (its answer
    decides feed vs. skip), then exactly one of :meth:`record_success`
    / :meth:`record_failure` for admitted batches.  All transitions are
    counted so ``/metrics`` can expose them.
    """

    config: BreakerConfig = field(default_factory=BreakerConfig)
    state: str = CLOSED
    consecutive_failures: int = 0
    cooldown_left: int = 0
    failures_total: int = 0
    skipped_batches: int = 0
    opens_total: int = 0
    last_error: Optional[str] = None

    def admits(self) -> bool:
        """Whether the next batch should be fed to this query.

        While OPEN, burns one cooldown credit per offered batch; when
        the cooldown is exhausted the breaker moves to HALF_OPEN and the
        batch is admitted as the probe.
        """
        if self.state == OPEN:
            self.cooldown_left -= 1
            if self.cooldown_left > 0:
                self.skipped_batches += 1
                return False
            self.state = HALF_OPEN
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state == HALF_OPEN:
            self.state = CLOSED
            self.last_error = None

    def record_failure(self, error: str) -> None:
        self.failures_total += 1
        self.consecutive_failures += 1
        self.last_error = error
        if (
            self.state == HALF_OPEN
            or self.consecutive_failures >= self.config.failure_threshold
        ):
            if self.state != OPEN:
                self.opens_total += 1
            self.state = OPEN
            self.cooldown_left = self.config.cooldown_batches

    @property
    def quarantined(self) -> bool:
        """Open or probing: the query is not trusted with leadership."""
        return self.state != CLOSED

    def state_code(self) -> int:
        return STATE_CODES[self.state]

    def checkpoint(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "cooldown_left": self.cooldown_left,
            "failures_total": self.failures_total,
            "skipped_batches": self.skipped_batches,
            "opens_total": self.opens_total,
            "last_error": self.last_error,
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        self.state = snapshot["state"]
        self.consecutive_failures = snapshot["consecutive_failures"]
        self.cooldown_left = snapshot["cooldown_left"]
        self.failures_total = snapshot["failures_total"]
        self.skipped_batches = snapshot["skipped_batches"]
        self.opens_total = snapshot["opens_total"]
        self.last_error = snapshot.get("last_error")

    def describe(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failures_total": self.failures_total,
            "skipped_batches": self.skipped_batches,
            "opens_total": self.opens_total,
            "last_error": self.last_error,
        }


@dataclass(frozen=True)
class DeadLetter:
    """One poisoned batch: who failed, where, and why."""

    qid: str
    tenant: str
    role: str  # "leader" | "follower" | "direct"
    offset: int  # records consumed *before* this batch
    batch_size: int
    error_type: str
    error: str
    breaker_state: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "qid": self.qid,
            "tenant": self.tenant,
            "role": self.role,
            "offset": self.offset,
            "batch_size": self.batch_size,
            "error_type": self.error_type,
            "error": self.error,
            "breaker_state": self.breaker_state,
        }


class DeadLetterLog:
    """Bounded, inspectable log of quarantined batch failures.

    Keeps the most recent ``capacity`` entries (older ones are evicted
    and only counted), a running total, and per-query counts.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("dead-letter capacity must be >= 1")
        self.capacity = capacity
        self._entries: deque = deque(maxlen=capacity)
        self.total = 0
        self.evicted = 0
        self._by_query: Dict[str, int] = {}

    def put(self, entry: DeadLetter) -> DeadLetter:
        if len(self._entries) == self.capacity:
            self.evicted += 1
        self._entries.append(entry)
        self.total += 1
        self._by_query[entry.qid] = self._by_query.get(entry.qid, 0) + 1
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[DeadLetter]:
        return list(self._entries)

    def counts_by_query(self) -> Dict[str, int]:
        return dict(self._by_query)

    def write_jsonl(self, path: str) -> int:
        """Dump the retained entries as JSONL; returns the entry count."""
        with open(path, "w", encoding="utf-8") as fh:
            for entry in self._entries:
                fh.write(json.dumps(entry.as_dict(), default=repr))
                fh.write("\n")
        return len(self._entries)

    def checkpoint(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "total": self.total,
            "evicted": self.evicted,
            "by_query": dict(self._by_query),
            "entries": [entry.as_dict() for entry in self._entries],
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        self.total = snapshot["total"]
        self.evicted = snapshot["evicted"]
        self._by_query = dict(snapshot["by_query"])
        self._entries.clear()
        for raw in snapshot["entries"]:
            self._entries.append(DeadLetter(**raw))
