"""Durable standing registrations: the serving journal (docs/SERVING.md).

Standing queries ride the same fsync'd, CRC-framed, torn-tail-tolerant
:class:`~repro.dsms.durability.ResultJournal` the durable runner uses,
with serving-specific entry kinds:

* ``register`` / ``unregister`` — one entry per registry mutation, with
  the record ``offset`` (records consumed so far) at which it took
  effect; replaying the event log at the same offsets reproduces the
  exact standing-query set at every point of the stream;
* ``commit`` / ``final`` — periodic durable snapshots: ``consumed``
  plus every served query's full instance checkpoint
  (:meth:`~repro.dsms.runtime.Gigascope.checkpoint` — operator state,
  results, metrics, cost balances) and the per-tenant quota ledger.

:func:`repro.serving.server.resume_serving` rebuilds the query set from
the event log, restores the last commit's checkpoints, skips the
committed input prefix, and replays the remainder (re-applying any
events the journal recorded *after* the last commit at their original
offsets) — byte-identical to an uninterrupted serve, by the same
batch-boundary-drain argument the durable runner rests on.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.dsms.durability import ResultJournal

#: serving journal entry format version
SERVING_JOURNAL_VERSION = 1


class ServingJournal:
    """Append-only log of registry events and engine commits."""

    def __init__(self, path: str, fresh: bool = False) -> None:
        self.path = path
        self._journal = ResultJournal(path, fresh=fresh)

    def append(self, kind: str, **fields: Any) -> None:
        self._journal.append({
            "serving_version": SERVING_JOURNAL_VERSION,
            "kind": kind,
            **fields,
        })

    def close(self) -> None:
        self._journal.close()

    # -- reading -----------------------------------------------------------

    @staticmethod
    def read(path: str) -> List[Dict[str, Any]]:
        """All complete serving entries, oldest first, version-checked."""
        entries = []
        for entry in ResultJournal.read(path):
            version = entry.get("serving_version")
            if version != SERVING_JOURNAL_VERSION:
                raise ValueError(
                    f"serving journal entry version {version!r} is not"
                    f" supported (expected {SERVING_JOURNAL_VERSION})"
                )
            entries.append(entry)
        return entries


def split_log(
    entries: List[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], Optional[Dict[str, Any]], List[Dict[str, Any]]]:
    """Split a journal into ``(replayed events, last commit, pending events)``.

    ``replayed`` are register/unregister events already reflected in the
    last commit's checkpoints; ``pending`` are events appended after it,
    which a resume must re-apply at their recorded offsets.  A resume
    may append duplicates of pending events (they are re-journalled as
    the replay re-applies them), so events are deduplicated by
    ``(kind, qid)`` keeping the first occurrence.
    """
    last_commit: Optional[Dict[str, Any]] = None
    last_commit_index = -1
    for index, entry in enumerate(entries):
        if entry["kind"] in ("commit", "final"):
            last_commit = entry
            last_commit_index = index
    seen: set = set()
    replayed: List[Dict[str, Any]] = []
    pending: List[Dict[str, Any]] = []
    for index, entry in enumerate(entries):
        if entry["kind"] not in ("register", "unregister"):
            continue
        key = (entry["kind"], entry["qid"])
        if key in seen:
            continue
        seen.add(key)
        (replayed if index < last_commit_index else pending).append(entry)
    return replayed, last_commit, pending
