"""Multi-query continuous serving (docs/SERVING.md).

A :class:`~repro.serving.server.StandingQueryEngine` multiplexes many
standing queries over shared source streams with hot register/unregister,
common-subexpression sharing at the split edge, per-tenant cost quotas,
and journalled registrations for durable resume;
:class:`~repro.serving.server.QueryServer` wraps it in an asyncio ingest
loop with an HTTP control/metrics plane.
"""

from repro.serving.server import (
    QueryServer,
    ServedQuery,
    StandingQueryEngine,
    TenantQuota,
    drive,
    resume_serving,
)
from repro.serving.sharing import ShareSignature, share_signature

__all__ = [
    "QueryServer",
    "ServedQuery",
    "ShareSignature",
    "StandingQueryEngine",
    "TenantQuota",
    "drive",
    "resume_serving",
    "share_signature",
]
