"""Multi-query continuous serving (docs/SERVING.md).

A :class:`~repro.serving.server.StandingQueryEngine` multiplexes many
standing queries over shared source streams with hot register/unregister,
common-subexpression sharing at the split edge, per-tenant cost quotas,
per-query fault isolation (circuit breakers + a dead-letter log, see
:mod:`repro.serving.faults`), and journalled registrations for durable
resume; :class:`~repro.serving.server.QueryServer` wraps it in an
asyncio ingest loop with a hardened HTTP control/metrics plane and
graceful drain.
"""

from repro.serving.faults import (
    BreakerConfig,
    CircuitBreaker,
    DeadLetter,
    DeadLetterLog,
)
from repro.serving.server import (
    DRAIN_EXIT_CODE,
    HttpLimits,
    QueryServer,
    ServedQuery,
    ServingUnavailableError,
    StandingQueryEngine,
    TenantQuota,
    UnknownQueryError,
    drive,
    resume_serving,
)
from repro.serving.sharing import ShareSignature, share_signature

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "DRAIN_EXIT_CODE",
    "DeadLetter",
    "DeadLetterLog",
    "HttpLimits",
    "QueryServer",
    "ServedQuery",
    "ServingUnavailableError",
    "ShareSignature",
    "StandingQueryEngine",
    "TenantQuota",
    "UnknownQueryError",
    "drive",
    "resume_serving",
    "share_signature",
]
