"""The standing-query serving engine and its asyncio server.

Two layers (docs/SERVING.md):

* :class:`StandingQueryEngine` — the deterministic core.  Every
  registered standing query owns a private, solo-shaped
  :class:`~repro.dsms.runtime.Gigascope` (its own operators, results,
  metrics registry and cost accounts), so each query's outputs are
  byte-identical to a solo serial run *by construction*.  What is shared
  is the **work**: queries whose plans carry equal
  :class:`~repro.serving.sharing.ShareSignature` s form a group whose
  low-level prefix runs once per batch on the canonical member, with the
  captured effects replayed into the rest (see
  :mod:`repro.serving.sharing`).  Per-tenant cost quotas shed whole
  batches for over-budget tenants — counted, charged (``quota_shed``)
  and folded into the conservation identity, never silent.  With a
  :class:`~repro.serving.journal.ServingJournal` attached, every
  register/unregister event and periodic checkpoint is durable and
  :func:`resume_serving` rebuilds the full standing set after a crash.

* :class:`QueryServer` — the asyncio wrapper: an ingest coroutine
  drives batches through the engine while a dependency-free HTTP
  endpoint serves the Prometheus exposition
  (:func:`repro.obs.export.render_prometheus` over per-query/per-tenant
  labelled series) plus a small JSON control plane (register,
  unregister, results).  Registry mutations land between batches, so
  HTTP-registered queries take effect at batch boundaries — the same
  granularity the journal records.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from itertools import islice
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ExecutionError
from repro.dsms.parser import compile_query
from repro.dsms.runtime import Gigascope
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.serving.journal import ServingJournal, split_log
from repro.serving.sharing import (
    BatchCapture,
    ShareSignature,
    capture_feed,
    replay_feed,
    share_signature,
)
from repro.streams.records import Record


@dataclass(frozen=True)
class TenantQuota:
    """A per-tenant cost budget, in cycles per offered record.

    A tenant's standing queries may spend, in total, up to
    ``cycles_per_record`` × (records offered to the tenant so far).
    The ledger is data-deterministic — spend comes from the instances'
    cost accounts, allowance from the record count — so quota decisions
    replay identically on resume.
    """

    cycles_per_record: float


@dataclass
class ServedQuery:
    """One standing query: its private instance plus serving metadata."""

    qid: str
    name: str
    text: str
    tenant: str
    instance: Gigascope
    stream: str
    low_name: Optional[str]
    high_name: Optional[str]
    signature: Optional[ShareSignature]
    share_reason: Optional[str]
    registered_at: int
    unregistered_at: Optional[int] = None

    @property
    def active(self) -> bool:
        return self.unregistered_at is None

    @property
    def results(self) -> List[Record]:
        return self.instance.query(self.name).results

    def describe(self) -> Dict[str, Any]:
        return {
            "id": self.qid,
            "name": self.name,
            "tenant": self.tenant,
            "active": self.active,
            "registered_at": self.registered_at,
            "unregistered_at": self.unregistered_at,
            "shared": self.signature is not None,
            "signature": (
                self.signature.describe() if self.signature else None
            ),
            "share_reason": self.share_reason,
            "rows": len(self.results),
        }


def _batches(records: Iterable[Record], size: int) -> Iterator[List[Record]]:
    iterator = iter(records)
    while True:
        batch = list(islice(iterator, size))
        if not batch:
            return
        yield batch


class StandingQueryEngine:
    """Multiplexes standing queries over shared feeds, deterministically.

    ``instance_factory`` builds one fresh, fully configured (streams +
    SFUN packs) serial :class:`Gigascope` per registered query; each
    call must return a *new* instance with a private cost model and
    metrics registry.  ``quotas`` maps tenant names to
    :class:`TenantQuota` (or bare cycles-per-record numbers).
    ``on_commit(consumed, kind)`` fires after each journal commit is
    durable — the chaos tests' kill point.
    """

    def __init__(
        self,
        instance_factory: Callable[[], Gigascope],
        *,
        share: bool = True,
        quotas: Optional[Dict[str, Any]] = None,
        journal: Optional[ServingJournal] = None,
        on_commit: Optional[Callable[[int, str], None]] = None,
    ) -> None:
        self._factory = instance_factory
        self.share = share
        self.quotas: Dict[str, TenantQuota] = {
            tenant: (
                quota if isinstance(quota, TenantQuota)
                else TenantQuota(float(quota))
            )
            for tenant, quota in (quotas or {}).items()
        }
        self.journal = journal
        self.on_commit = on_commit
        self.consumed = 0
        self.metrics = MetricsRegistry()
        self._queries: Dict[str, ServedQuery] = {}  # by qid, insertion order
        self._groups: Dict[ShareSignature, List[str]] = {}
        self._direct: List[str] = []
        self._offered: Dict[str, int] = {}  # records offered, per tenant
        self._next_id = 0
        self._closed = False
        self._muted = False  # journal muting during restore

    # -- registry ----------------------------------------------------------

    def register(
        self,
        text: str,
        name: str = "q",
        tenant: str = "default",
        qid: Optional[str] = None,
    ) -> ServedQuery:
        """Register one standing query; takes effect at the next batch.

        Compilation errors (unknown stream, lint refusals under a strict
        factory...) propagate — a rejected query never joins the set.
        """
        if self._closed:
            raise ExecutionError("the serving engine is closed")
        if qid is None:
            self._next_id += 1
            qid = f"sq{self._next_id}"
        elif qid in self._queries:
            raise ExecutionError(f"standing query id {qid!r} already in use")
        gs = self._factory()
        if not isinstance(gs, Gigascope):
            raise ExecutionError(
                "the serving engine drives serial Gigascope instances;"
                f" the factory returned {type(gs).__name__}"
            )
        handle = gs.add_query(text, name=name)
        feeder = f"{name}__lowsel"
        if (
            handle.level == "high"
            and handle.source == feeder
            and feeder in gs._queries
        ):
            low_name: Optional[str] = feeder
            high_name: Optional[str] = name
        elif handle.level == "low":
            low_name, high_name = name, None
        else:
            low_name = high_name = None  # reads another registered query

        signature: Optional[ShareSignature] = None
        reason: Optional[str]
        if not self.share:
            reason = "sharing is disabled for this server"
        elif gs.vectorize:
            reason = "vectorized instances execute whole batches locally"
        elif gs.shed_threshold is not None:
            reason = "overload shedding decisions are instance-local"
        elif gs.validate_admission:
            reason = "admission validation quarantines per instance"
        elif low_name is None:
            reason = "the query reads from another registered query"
        else:
            plan = compile_query(text, gs.registries, query_name=name)
            signature, reason = share_signature(plan, gs.registries)

        node = handle
        while node.source in gs._queries:
            node = gs._queries[node.source]
        stream = node.source

        gs.start()
        sq = ServedQuery(
            qid=qid,
            name=name,
            text=text,
            tenant=tenant,
            instance=gs,
            stream=stream,
            low_name=low_name,
            high_name=high_name,
            signature=signature,
            share_reason=reason,
            registered_at=self.consumed,
        )
        self._queries[qid] = sq
        if signature is not None:
            self._groups.setdefault(signature, []).append(qid)
        else:
            self._direct.append(qid)
        self._journal_event(
            "register",
            qid=qid,
            name=name,
            text=text,
            tenant=tenant,
            offset=self.consumed,
        )
        self.metrics.counter(
            "serving_registered_total",
            help="standing queries registered",
            tenant=tenant,
        ).inc()
        self._sync_gauges()
        return sq

    def unregister(self, qid: str) -> ServedQuery:
        """Retire one standing query: flush trailing windows, keep results."""
        sq = self.lookup(qid)
        if not sq.active:
            raise ExecutionError(f"standing query {qid!r} is already retired")
        sq.instance.finish()
        sq.unregistered_at = self.consumed
        if sq.signature is not None:
            members = self._groups[sq.signature]
            members.remove(qid)
            if not members:
                del self._groups[sq.signature]
        else:
            self._direct.remove(qid)
        self._journal_event("unregister", qid=qid, offset=self.consumed)
        self.metrics.counter(
            "serving_unregistered_total",
            help="standing queries retired",
            tenant=sq.tenant,
        ).inc()
        self._sync_gauges()
        return sq

    def lookup(self, qid: str) -> ServedQuery:
        try:
            return self._queries[qid]
        except KeyError:
            raise ExecutionError(f"unknown standing query {qid!r}") from None

    def queries(self) -> List[ServedQuery]:
        """Every served query (active and retired), registration order."""
        return list(self._queries.values())

    def active_queries(self) -> List[ServedQuery]:
        return [sq for sq in self._queries.values() if sq.active]

    # -- execution ---------------------------------------------------------

    def feed(self, batch: List[Record]) -> int:
        """Push one batch through every active standing query."""
        if self._closed:
            raise ExecutionError("the serving engine is closed")
        batch = list(batch)
        if not batch:
            return 0
        n = len(batch)
        self.consumed += n
        shed_tenants = self._quota_decisions(n)
        for members in list(self._groups.values()):
            live = [self._queries[qid] for qid in members]
            fed = [sq for sq in live if sq.tenant not in shed_tenants]
            for sq in live:
                if sq.tenant in shed_tenants:
                    sq.instance.quota_shed(sq.stream, n)
            if not fed:
                continue
            leader = fed[0]
            capture: BatchCapture = capture_feed(
                leader.instance, leader.low_name, leader.high_name, batch
            )
            for sq in fed[1:]:
                replay_feed(sq.instance, sq.low_name, sq.high_name, capture)
            if len(fed) > 1:
                self.metrics.counter(
                    "serving_shared_replays_total",
                    help="follower feeds satisfied by shared-prefix replay",
                ).inc(len(fed) - 1)
        for qid in list(self._direct):
            sq = self._queries[qid]
            if sq.tenant in shed_tenants:
                sq.instance.quota_shed(sq.stream, n)
            else:
                sq.instance.feed(batch)
        self.metrics.counter(
            "serving_records_total",
            help="records offered to the serving engine",
        ).inc(n)
        return n

    def _quota_decisions(self, n: int) -> set:
        """Which tenants shed this batch (and advance their ledgers)."""
        shed: set = set()
        for tenant, quota in self.quotas.items():
            actives = [
                sq for sq in self._queries.values()
                if sq.active and sq.tenant == tenant
            ]
            if not actives:
                continue
            self._offered[tenant] = self._offered.get(tenant, 0) + n
            spent = sum(sq.instance.cost.total_cycles() for sq in actives)
            if spent > quota.cycles_per_record * self._offered[tenant]:
                shed.add(tenant)
                self.metrics.counter(
                    "serving_quota_shed_total",
                    help="records refused because the tenant was over quota",
                    tenant=tenant,
                ).inc(n)
        return shed

    def close(self) -> None:
        """End the serve: flush every active query, commit final state."""
        if self._closed:
            return
        for sq in self.active_queries():
            sq.instance.finish()
        self._closed = True
        self.commit(kind="final")
        if self.journal is not None:
            self.journal.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- durability --------------------------------------------------------

    def _journal_event(self, kind: str, **fields: Any) -> None:
        if self.journal is not None and not self._muted:
            self.journal.append(kind, **fields)

    def commit(self, kind: str = "commit") -> None:
        """Append one durable checkpoint of every served query."""
        if self.journal is None:
            return
        self.journal.append(
            kind,
            consumed=self.consumed,
            offered=dict(self._offered),
            next_id=self._next_id,
            queries={
                qid: {
                    "snapshot": sq.instance.checkpoint(),
                    "active": sq.active,
                }
                for qid, sq in self._queries.items()
            },
        )
        if self.on_commit is not None:
            self.on_commit(self.consumed, kind)

    def _restore(
        self,
        replayed: List[Dict[str, Any]],
        commit: Dict[str, Any],
    ) -> None:
        """Rebuild the standing set from the event log + last commit."""
        self._muted = True
        try:
            for event in replayed:
                if event["kind"] == "register":
                    sq = self.register(
                        event["text"],
                        name=event["name"],
                        tenant=event["tenant"],
                        qid=event["qid"],
                    )
                    sq.registered_at = event["offset"]
                else:
                    sq = self.unregister(event["qid"])
                    sq.unregistered_at = event["offset"]
        finally:
            self._muted = False
        for qid, entry in commit["queries"].items():
            self._queries[qid].instance.restore(
                entry["snapshot"], restore_cost=True
            )
        self.consumed = commit["consumed"]
        self._offered = dict(commit["offered"])
        self._next_id = max(self._next_id, commit["next_id"])
        if commit["kind"] == "final":
            for sq in self.active_queries():
                sq.instance._session = None
            self._closed = True
            if self.journal is not None:
                self.journal.close()

    # -- reporting ---------------------------------------------------------

    def export_metrics(self) -> MetricsRegistry:
        """One registry over the whole serve, per-query/per-tenant labelled.

        Every served query's private registry is folded in stamped with
        ``serve_id`` and ``tenant`` labels (the instance's own ``query``
        and ``stream`` labels survive), alongside the engine's
        ``serving_*`` series — the document the HTTP ``/metrics``
        endpoint renders.
        """
        out = MetricsRegistry()
        out.absorb(self.metrics.checkpoint())
        for sq in self._queries.values():
            out.absorb(
                sq.instance.metrics.checkpoint(),
                extra_labels={"serve_id": sq.qid, "tenant": sq.tenant},
            )
        return out

    def report(self) -> Dict[str, Any]:
        """JSON summary: queries, sharing groups, quota ledgers."""
        groups = [
            {
                "signature": signature.describe(),
                "split_keys": list(signature.split_keys),
                "members": list(members),
            }
            for signature, members in self._groups.items()
        ]
        return {
            "consumed": self.consumed,
            "closed": self._closed,
            "queries": [sq.describe() for sq in self._queries.values()],
            "shared_groups": groups,
            "tenants": {
                tenant: {
                    "offered": self._offered.get(tenant, 0),
                    "cycles_per_record": quota.cycles_per_record,
                    "spent_cycles": sum(
                        sq.instance.cost.total_cycles()
                        for sq in self._queries.values()
                        if sq.active and sq.tenant == tenant
                    ),
                }
                for tenant, quota in self.quotas.items()
            },
        }

    def _sync_gauges(self) -> None:
        self.metrics.gauge(
            "serving_active_queries",
            help="currently registered standing queries",
        ).set(len(self.active_queries()))
        self.metrics.gauge(
            "serving_shared_groups",
            help="distinct shared low-level prefixes",
        ).set(len(self._groups))


# -- synchronous drivers ----------------------------------------------------


def drive(
    engine: StandingQueryEngine,
    records: Iterable[Record],
    schedule: Iterable[Dict[str, Any]] = (),
    *,
    batch_size: int = 512,
    commit_interval: int = 4,
    close: bool = True,
) -> int:
    """Feed a record stream, applying scheduled registry events at their
    record offsets and committing every ``commit_interval`` batches.

    ``schedule`` entries are journal-event-shaped dicts:
    ``{"kind": "register", "offset": N, "text": ..., "name": ...,
    "tenant": ..., "qid": ...}`` or
    ``{"kind": "unregister", "offset": N, "qid": ...}``.  Batches are
    split at event offsets, so an event at offset N takes effect after
    exactly N records — deterministically, which is what lets the
    journal replay a schedule byte-identically on resume.
    """
    events = sorted(schedule, key=lambda event: event["offset"])
    index = 0

    def apply_due() -> None:
        nonlocal index
        while index < len(events) and events[index]["offset"] <= engine.consumed:
            event = events[index]
            index += 1
            if event["kind"] == "register":
                engine.register(
                    event["text"],
                    name=event.get("name", "q"),
                    tenant=event.get("tenant", "default"),
                    qid=event.get("qid"),
                )
            else:
                engine.unregister(event["qid"])

    apply_due()
    iterator = iter(records)
    since_commit = 0
    while True:
        limit = batch_size
        if index < len(events):
            limit = min(limit, events[index]["offset"] - engine.consumed)
        batch = list(islice(iterator, limit))
        if not batch:
            break
        engine.feed(batch)
        since_commit += 1
        if since_commit >= commit_interval:
            engine.commit()
            since_commit = 0
        apply_due()
    # Events scheduled past the end of the input apply at stream end.
    while index < len(events):
        event = events[index]
        index += 1
        if event["kind"] == "register":
            engine.register(
                event["text"],
                name=event.get("name", "q"),
                tenant=event.get("tenant", "default"),
                qid=event.get("qid"),
            )
        else:
            engine.unregister(event["qid"])
    if close:
        engine.close()
    return engine.consumed


def _skip(records: Iterable[Record], n: int) -> Iterator[Record]:
    iterator = iter(records)
    skipped = sum(1 for _ in islice(iterator, n))
    if skipped < n:
        raise ExecutionError(
            f"resume input is shorter than the committed prefix"
            f" ({skipped} < {n} records): the input must be the same"
            " replayable stream the original serve consumed"
        )
    return iterator


def resume_serving(
    instance_factory: Callable[[], Gigascope],
    journal_path: str,
    records: Iterable[Record],
    *,
    share: bool = True,
    quotas: Optional[Dict[str, Any]] = None,
    batch_size: int = 512,
    commit_interval: int = 4,
    on_commit: Optional[Callable[[int, str], None]] = None,
) -> StandingQueryEngine:
    """Resume a journalled serve after a crash.

    Rebuilds every standing registration from the event log, restores
    the last commit's instance checkpoints, skips the committed input
    prefix and replays the remainder — re-applying any events recorded
    after the last commit at their original offsets.  ``records`` must
    be the same replayable stream the original serve consumed.  Returns
    the closed engine (results, metrics and cost accounts byte-identical
    to an uninterrupted serve).
    """
    entries = ServingJournal.read(journal_path)
    replayed, last_commit, pending = split_log(entries)
    if last_commit is None:
        # Died before anything durable: degenerate to a fresh serve with
        # the recorded events as the schedule.
        engine = StandingQueryEngine(
            instance_factory,
            share=share,
            quotas=quotas,
            journal=ServingJournal(journal_path, fresh=True),
            on_commit=on_commit,
        )
        drive(
            engine,
            records,
            schedule=pending,
            batch_size=batch_size,
            commit_interval=commit_interval,
        )
        return engine
    engine = StandingQueryEngine(
        instance_factory,
        share=share,
        quotas=quotas,
        journal=ServingJournal(journal_path, fresh=False),
        on_commit=on_commit,
    )
    engine._restore(replayed, last_commit)
    if engine.closed:
        return engine
    drive(
        engine,
        _skip(records, last_commit["consumed"]),
        schedule=pending,
        batch_size=batch_size,
        commit_interval=commit_interval,
    )
    return engine


# -- the asyncio server ------------------------------------------------------


class QueryServer:
    """Asyncio façade: standing ingest plus an HTTP control/metrics plane.

    The ingest coroutine feeds batches through the engine, yielding to
    the event loop between batches so HTTP requests (scrapes, hot
    register/unregister) interleave at batch boundaries.  The HTTP
    plane is dependency-free (``asyncio.start_server`` + hand-rolled
    HTTP/1.1), serving:

    * ``GET /metrics`` — Prometheus exposition with per-query
      (``serve_id``) and per-tenant labels;
    * ``GET /healthz`` — liveness + records consumed;
    * ``GET /queries`` — the standing set and sharing report;
    * ``POST /queries`` — register (JSON ``{"query": ..., "name": ...,
      "tenant": ...}``);
    * ``DELETE /queries/<id>`` — unregister;
    * ``GET /queries/<id>/results`` — rows emitted so far
      (``?limit=N`` truncates).
    """

    def __init__(
        self,
        engine: StandingQueryEngine,
        *,
        batch_size: int = 512,
        commit_interval: int = 4,
        pace: float = 0.0,
    ) -> None:
        self.engine = engine
        self.batch_size = batch_size
        self.commit_interval = commit_interval
        self.pace = pace
        self._http: Optional[asyncio.AbstractServer] = None

    # -- ingest ------------------------------------------------------------

    async def ingest(self, records: Iterable[Record], close: bool = True) -> int:
        """Drive the whole record stream through the engine."""
        since_commit = 0
        for batch in _batches(records, self.batch_size):
            self.engine.feed(batch)
            since_commit += 1
            if since_commit >= self.commit_interval:
                self.engine.commit()
                since_commit = 0
            await asyncio.sleep(self.pace)
        if close:
            self.engine.close()
        return self.engine.consumed

    # -- HTTP plane --------------------------------------------------------

    async def start_http(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Start the endpoint; returns the bound (host, port)."""
        self._http = await asyncio.start_server(self._handle, host, port)
        sockname = self._http.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def stop_http(self) -> None:
        if self._http is not None:
            self._http.close()
            await self._http.wait_closed()
            self._http = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("ascii", "replace").split()
            if len(parts) < 2:
                return
            method, path = parts[0], parts[1]
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                key, _, value = line.decode("ascii", "replace").partition(":")
                headers[key.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", "0") or 0)
            if length:
                body = await reader.readexactly(length)
            status, ctype, payload = self._route(method, path, body)
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("ascii") + payload)
            await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[str, str, bytes]:
        path, _, query_string = path.partition("?")
        try:
            if method == "GET" and path == "/metrics":
                text = render_prometheus(self.engine.export_metrics())
                return "200 OK", "text/plain; version=0.0.4", text.encode()
            if method == "GET" and path == "/healthz":
                return self._json("200 OK", {
                    "status": "ok",
                    "consumed": self.engine.consumed,
                    "closed": self.engine.closed,
                })
            if method == "GET" and path == "/queries":
                return self._json("200 OK", self.engine.report())
            if method == "POST" and path == "/queries":
                request = json.loads(body.decode() or "{}")
                if "query" not in request:
                    return self._json(
                        "400 Bad Request", {"error": "missing 'query'"}
                    )
                sq = self.engine.register(
                    request["query"],
                    name=request.get("name", "q"),
                    tenant=request.get("tenant", "default"),
                )
                return self._json("201 Created", {
                    "id": sq.qid,
                    "offset": sq.registered_at,
                    "shared": sq.signature is not None,
                    "share_reason": sq.share_reason,
                })
            if path.startswith("/queries/"):
                rest = path[len("/queries/"):]
                if method == "DELETE" and "/" not in rest:
                    sq = self.engine.unregister(rest)
                    return self._json("200 OK", {
                        "id": sq.qid,
                        "rows": len(sq.results),
                        "unregistered_at": sq.unregistered_at,
                    })
                if method == "GET" and rest.endswith("/results"):
                    qid = rest[: -len("/results")].rstrip("/")
                    sq = self.engine.lookup(qid)
                    rows = [list(r.values) for r in sq.results]
                    for item in query_string.split("&"):
                        if item.startswith("limit="):
                            rows = rows[: int(item[len("limit="):])]
                    schema = sq.instance.query(sq.name).output_schema
                    return self._json("200 OK", {
                        "id": sq.qid,
                        "schema": list(schema.names),
                        "rows": rows,
                    })
            return self._json("404 Not Found", {"error": f"no route {path}"})
        except (ExecutionError, ValueError) as exc:
            return self._json("400 Bad Request", {"error": str(exc)})
        except Exception as exc:  # never kill the connection handler
            return self._json("500 Internal Server Error", {"error": str(exc)})

    @staticmethod
    def _json(status: str, payload: Dict[str, Any]) -> Tuple[str, str, bytes]:
        return status, "application/json", json.dumps(payload).encode()
