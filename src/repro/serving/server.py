"""The standing-query serving engine and its asyncio server.

Two layers (docs/SERVING.md):

* :class:`StandingQueryEngine` — the deterministic core.  Every
  registered standing query owns a private, solo-shaped
  :class:`~repro.dsms.runtime.Gigascope` (its own operators, results,
  metrics registry and cost accounts), so each query's outputs are
  byte-identical to a solo serial run *by construction*.  What is shared
  is the **work**: queries whose plans carry equal
  :class:`~repro.serving.sharing.ShareSignature` s form a group whose
  low-level prefix runs once per batch on the canonical member, with the
  captured effects replayed into the rest (see
  :mod:`repro.serving.sharing`).  Per-tenant cost quotas shed whole
  batches for over-budget tenants — counted, charged (``quota_shed``)
  and folded into the conservation identity, never silent.  Every
  query step runs inside a **fault boundary**: a failing query is
  quarantined behind a per-query :class:`~repro.serving.faults.CircuitBreaker`
  with its failures recorded to a :class:`~repro.serving.faults.DeadLetterLog`,
  while every other query keeps serving; a quarantined shared-group
  leader is replaced by the lowest-qid healthy follower *within the
  same batch*, so followers never observe a gap.  With a
  :class:`~repro.serving.journal.ServingJournal` attached, every
  register/unregister event and periodic checkpoint (including breaker
  and dead-letter state) is durable and :func:`resume_serving` rebuilds
  the full standing set after a crash.

* :class:`QueryServer` — the asyncio wrapper: an ingest coroutine
  drives batches through the engine while a dependency-free HTTP
  endpoint serves the Prometheus exposition
  (:func:`repro.obs.export.render_prometheus` over per-query/per-tenant
  labelled series) plus a small JSON control plane (register,
  unregister, results, drain).  Registry mutations land between
  batches, so HTTP-registered queries take effect at batch boundaries —
  the same granularity the journal records.  The HTTP plane is
  hardened (:class:`HttpLimits`): per-connection read/write deadlines,
  bounded header and body sizes, a connection cap with 503 overload
  shedding, and structured JSON error bodies — a slow-loris client or
  a mid-response disconnect can never stall the feed loop.  SIGTERM /
  SIGINT / ``POST /drain`` trigger a graceful drain: ``/readyz`` flips
  to 503, registrations and feed batches stop, open windows flush, a
  final journal commit lands, and the process exits with
  :data:`DRAIN_EXIT_CODE`.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ExecutionError, PlanningError
from repro.dsms.parser import compile_query
from repro.dsms.runtime import Gigascope
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACE, TraceSink
from repro.serving.faults import (
    BreakerConfig,
    CircuitBreaker,
    DeadLetter,
    DeadLetterLog,
)
from repro.serving.journal import ServingJournal, split_log
from repro.serving.sharing import (
    BatchCapture,
    ShareSignature,
    capture_feed,
    replay_feed,
    share_signature,
)
from repro.streams.records import Record

#: ``repro serve`` exit status when the serve was terminated early by a
#: graceful drain (SIGTERM / SIGINT / ``POST /drain``) rather than by
#: reaching the end of its input.
DRAIN_EXIT_CODE = 3


class UnknownQueryError(ExecutionError):
    """Lookup of a standing-query id that was never registered."""


class ServingUnavailableError(ExecutionError):
    """The engine is draining: no new registrations or feed batches."""


@dataclass(frozen=True)
class TenantQuota:
    """A per-tenant cost budget, in cycles per offered record.

    A tenant's standing queries may spend, in total, up to
    ``cycles_per_record`` × (records offered to the tenant so far).
    The ledger is data-deterministic — spend comes from the instances'
    cost accounts, allowance from the record count — so quota decisions
    replay identically on resume.
    """

    cycles_per_record: float


@dataclass
class ServedQuery:
    """One standing query: its private instance plus serving metadata."""

    qid: str
    name: str
    text: str
    tenant: str
    instance: Gigascope
    stream: str
    low_name: Optional[str]
    high_name: Optional[str]
    signature: Optional[ShareSignature]
    share_reason: Optional[str]
    registered_at: int
    unregistered_at: Optional[int] = None
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)

    @property
    def active(self) -> bool:
        return self.unregistered_at is None

    @property
    def quarantined(self) -> bool:
        """The circuit breaker is open (or probing): batches are skipped
        (or probed) instead of trusted."""
        return self.breaker.quarantined

    @property
    def results(self) -> List[Record]:
        return self.instance.query(self.name).results

    def describe(self) -> Dict[str, Any]:
        return {
            "id": self.qid,
            "name": self.name,
            "tenant": self.tenant,
            "active": self.active,
            "registered_at": self.registered_at,
            "unregistered_at": self.unregistered_at,
            "shared": self.signature is not None,
            "signature": (
                self.signature.describe() if self.signature else None
            ),
            "share_reason": self.share_reason,
            "rows": len(self.results),
            "quarantined": self.quarantined,
            "breaker": self.breaker.describe(),
        }


def _batches(records: Iterable[Record], size: int) -> Iterator[List[Record]]:
    iterator = iter(records)
    while True:
        batch = list(islice(iterator, size))
        if not batch:
            return
        yield batch


class StandingQueryEngine:
    """Multiplexes standing queries over shared feeds, deterministically.

    ``instance_factory`` builds one fresh, fully configured (streams +
    SFUN packs) serial :class:`Gigascope` per registered query; each
    call must return a *new* instance with a private cost model and
    metrics registry.  ``quotas`` maps tenant names to
    :class:`TenantQuota` (or bare cycles-per-record numbers).
    ``breaker`` configures the per-query circuit breakers (see
    :mod:`repro.serving.faults`); ``dead_letter_capacity`` bounds the
    poison-batch quarantine log.  ``on_commit(consumed, kind)`` fires
    after each journal commit is durable — the chaos tests' kill point.
    """

    def __init__(
        self,
        instance_factory: Callable[[], Gigascope],
        *,
        share: bool = True,
        quotas: Optional[Dict[str, Any]] = None,
        journal: Optional[ServingJournal] = None,
        on_commit: Optional[Callable[[int, str], None]] = None,
        breaker: Optional[BreakerConfig] = None,
        dead_letter_capacity: int = 1024,
        trace: Optional[TraceSink] = None,
    ) -> None:
        self._factory = instance_factory
        self.share = share
        self.quotas: Dict[str, TenantQuota] = {
            tenant: (
                quota if isinstance(quota, TenantQuota)
                else TenantQuota(float(quota))
            )
            for tenant, quota in (quotas or {}).items()
        }
        self.journal = journal
        self.on_commit = on_commit
        self.breaker_config = breaker or BreakerConfig()
        self.dead_letters = DeadLetterLog(capacity=dead_letter_capacity)
        self.trace = trace if trace is not None else NULL_TRACE
        self.consumed = 0
        self.metrics = MetricsRegistry()
        self._queries: Dict[str, ServedQuery] = {}  # by qid, insertion order
        self._groups: Dict[ShareSignature, List[str]] = {}
        self._direct: List[str] = []
        self._offered: Dict[str, int] = {}  # records offered, per tenant
        self._next_id = 0
        self._closed = False
        self._muted = False  # journal muting during restore
        self.draining = False  # graceful drain in progress

    # -- registry ----------------------------------------------------------

    def register(
        self,
        text: str,
        name: str = "q",
        tenant: str = "default",
        qid: Optional[str] = None,
    ) -> ServedQuery:
        """Register one standing query; takes effect at the next batch.

        Compilation errors (unknown stream, lint refusals under a strict
        factory...) propagate — a rejected query never joins the set.
        """
        if self._closed:
            raise ExecutionError("the serving engine is closed")
        if self.draining:
            raise ServingUnavailableError(
                "the serving engine is draining; no new registrations"
                " are admitted"
            )
        if qid is None:
            self._next_id += 1
            qid = f"sq{self._next_id}"
        elif qid in self._queries:
            raise ExecutionError(f"standing query id {qid!r} already in use")
        gs = self._factory()
        if not isinstance(gs, Gigascope):
            raise ExecutionError(
                "the serving engine drives serial Gigascope instances;"
                f" the factory returned {type(gs).__name__}"
            )
        handle = gs.add_query(text, name=name)
        feeder = f"{name}__lowsel"
        if (
            handle.level == "high"
            and handle.source == feeder
            and feeder in gs._queries
        ):
            low_name: Optional[str] = feeder
            high_name: Optional[str] = name
        elif handle.level == "low":
            low_name, high_name = name, None
        else:
            low_name = high_name = None  # reads another registered query

        signature: Optional[ShareSignature] = None
        reason: Optional[str]
        if not self.share:
            reason = "sharing is disabled for this server"
        elif gs.vectorize:
            reason = "vectorized instances execute whole batches locally"
        elif gs.shed_threshold is not None:
            reason = "overload shedding decisions are instance-local"
        elif gs.validate_admission:
            reason = "admission validation quarantines per instance"
        elif low_name is None:
            reason = "the query reads from another registered query"
        else:
            plan = compile_query(text, gs.registries, query_name=name)
            signature, reason = share_signature(plan, gs.registries)

        node = handle
        while node.source in gs._queries:
            node = gs._queries[node.source]
        stream = node.source

        gs.start()
        sq = ServedQuery(
            qid=qid,
            name=name,
            text=text,
            tenant=tenant,
            instance=gs,
            stream=stream,
            low_name=low_name,
            high_name=high_name,
            signature=signature,
            share_reason=reason,
            registered_at=self.consumed,
            breaker=CircuitBreaker(self.breaker_config),
        )
        self._queries[qid] = sq
        if signature is not None:
            self._groups.setdefault(signature, []).append(qid)
        else:
            self._direct.append(qid)
        self._journal_event(
            "register",
            qid=qid,
            name=name,
            text=text,
            tenant=tenant,
            offset=self.consumed,
        )
        self.metrics.counter(
            "serving_registered_total",
            help="standing queries registered",
            tenant=tenant,
        ).inc()
        self._sync_breaker_gauge(sq)
        self._sync_gauges()
        return sq

    def unregister(self, qid: str) -> ServedQuery:
        """Retire one standing query: flush trailing windows, keep results."""
        sq = self.lookup(qid)
        if not sq.active:
            raise ExecutionError(f"standing query {qid!r} is already retired")
        sq.instance.finish()
        sq.unregistered_at = self.consumed
        if sq.signature is not None:
            members = self._groups[sq.signature]
            members.remove(qid)
            if not members:
                del self._groups[sq.signature]
        else:
            self._direct.remove(qid)
        self._journal_event("unregister", qid=qid, offset=self.consumed)
        self.metrics.counter(
            "serving_unregistered_total",
            help="standing queries retired",
            tenant=sq.tenant,
        ).inc()
        self._sync_gauges()
        return sq

    def lookup(self, qid: str) -> ServedQuery:
        try:
            return self._queries[qid]
        except KeyError:
            raise UnknownQueryError(
                f"unknown standing query {qid!r}"
            ) from None

    def queries(self) -> List[ServedQuery]:
        """Every served query (active and retired), registration order."""
        return list(self._queries.values())

    def active_queries(self) -> List[ServedQuery]:
        return [sq for sq in self._queries.values() if sq.active]

    # -- execution ---------------------------------------------------------

    def feed(self, batch: List[Record]) -> int:
        """Push one batch through every active standing query.

        Each query's step runs inside a fault boundary: an exception
        from one instance quarantines *that query* (dead-lettered,
        breaker-counted) and never interrupts the others.  A failing
        shared-group leader is replaced by the next healthy member and
        the prefilter re-runs for the same batch, so followers never
        observe a gap.
        """
        if self._closed:
            raise ExecutionError("the serving engine is closed")
        if self.draining:
            raise ServingUnavailableError(
                "the serving engine is draining; no new batches are admitted"
            )
        batch = list(batch)
        if not batch:
            return 0
        n = len(batch)
        offset = self.consumed  # records consumed *before* this batch
        self.consumed += n
        shed_tenants = self._quota_decisions(n)
        for members in list(self._groups.values()):
            live = [self._queries[qid] for qid in members]
            fed: List[ServedQuery] = []
            for sq in live:
                if sq.tenant in shed_tenants:
                    sq.instance.quota_shed(sq.stream, n)
                elif sq.breaker.admits():
                    fed.append(sq)
                else:
                    self._poison_skip(sq, n)
            if not fed:
                continue
            # Leader failover: the lowest-qid member runs the shared
            # prefix; if it fails, promote the next healthy member and
            # re-run the prefilter for the same batch.
            capture: Optional[BatchCapture] = None
            index = 0
            while index < len(fed):
                leader = fed[index]
                try:
                    capture = capture_feed(
                        leader.instance, leader.low_name, leader.high_name,
                        batch,
                    )
                except Exception as exc:  # fault boundary, not a bug trap
                    self._record_failure(leader, exc, "leader", offset, n)
                    index += 1
                    if index < len(fed):
                        self._note_failover(leader, fed[index], offset)
                    continue
                self._record_success(leader)
                break
            if capture is None:
                continue  # every member failed; each is dead-lettered
            replayed = 0
            for sq in fed[index + 1:]:
                try:
                    replay_feed(sq.instance, sq.low_name, sq.high_name, capture)
                except Exception as exc:  # fault boundary, not a bug trap
                    self._record_failure(sq, exc, "follower", offset, n)
                else:
                    self._record_success(sq)
                    replayed += 1
            if replayed:
                self.metrics.counter(
                    "serving_shared_replays_total",
                    help="follower feeds satisfied by shared-prefix replay",
                ).inc(replayed)
        for qid in list(self._direct):
            sq = self._queries[qid]
            if sq.tenant in shed_tenants:
                sq.instance.quota_shed(sq.stream, n)
            elif not sq.breaker.admits():
                self._poison_skip(sq, n)
            else:
                try:
                    sq.instance.feed(batch)
                except Exception as exc:  # fault boundary, not a bug trap
                    self._record_failure(sq, exc, "direct", offset, n)
                else:
                    self._record_success(sq)
        self.metrics.counter(
            "serving_records_total",
            help="records offered to the serving engine",
        ).inc(n)
        return n

    def _quota_decisions(self, n: int) -> set:
        """Which tenants shed this batch (and advance their ledgers)."""
        shed: set = set()
        for tenant, quota in self.quotas.items():
            actives = [
                sq for sq in self._queries.values()
                if sq.active and sq.tenant == tenant
            ]
            if not actives:
                continue
            self._offered[tenant] = self._offered.get(tenant, 0) + n
            spent = sum(sq.instance.cost.total_cycles() for sq in actives)
            if spent > quota.cycles_per_record * self._offered[tenant]:
                shed.add(tenant)
                self.metrics.counter(
                    "serving_quota_shed_total",
                    help="records refused because the tenant was over quota",
                    tenant=tenant,
                ).inc(n)
        return shed

    # -- fault isolation ---------------------------------------------------

    def _poison_skip(self, sq: ServedQuery, n: int) -> None:
        """Skip one batch for a quarantined query, fully accounted."""
        sq.instance.poison_shed(sq.stream, n)
        self.metrics.counter(
            "serving_poison_skipped_total",
            help="records skipped because the query's breaker is open",
            serve_id=sq.qid,
            tenant=sq.tenant,
        ).inc(n)

    def _record_failure(
        self,
        sq: ServedQuery,
        exc: Exception,
        role: str,
        offset: int,
        batch_size: int,
    ) -> None:
        """One batch failed inside ``sq``'s fault boundary: dead-letter
        it, advance the breaker, and surface the state change."""
        was_open = sq.breaker.state
        sq.breaker.record_failure(f"{type(exc).__name__}: {exc}")
        self.dead_letters.put(DeadLetter(
            qid=sq.qid,
            tenant=sq.tenant,
            role=role,
            offset=offset,
            batch_size=batch_size,
            error_type=type(exc).__name__,
            error=str(exc),
            breaker_state=sq.breaker.state,
        ))
        self.metrics.counter(
            "serving_poison_batches_total",
            help="batches that raised inside a query's fault boundary",
            serve_id=sq.qid,
            tenant=sq.tenant,
        ).inc()
        self.metrics.counter(
            "serving_dead_letters_total",
            help="entries appended to the serving dead-letter log",
        ).inc()
        if sq.breaker.state != was_open and sq.breaker.state == "open":
            self.metrics.counter(
                "serving_breaker_opens_total",
                help="circuit-breaker open transitions",
                serve_id=sq.qid,
            ).inc()
            if self.trace.enabled:
                self.trace.emit(
                    "breaker_open",
                    qid=sq.qid,
                    offset=offset,
                    error=f"{type(exc).__name__}: {exc}",
                )
        if self.trace.enabled:
            self.trace.emit(
                "poison_batch",
                qid=sq.qid,
                role=role,
                offset=offset,
                batch_size=batch_size,
                error=f"{type(exc).__name__}: {exc}",
            )
        self._sync_breaker_gauge(sq)

    def _record_success(self, sq: ServedQuery) -> None:
        before = sq.breaker.state
        sq.breaker.record_success()
        if sq.breaker.state != before:
            if self.trace.enabled:
                self.trace.emit(
                    "breaker_close", qid=sq.qid, offset=self.consumed
                )
            self._sync_breaker_gauge(sq)

    def _note_failover(
        self, failed: ServedQuery, promoted: ServedQuery, offset: int
    ) -> None:
        self.metrics.counter(
            "serving_leader_failovers_total",
            help="shared-group leader promotions after a leader failure",
        ).inc()
        if self.trace.enabled:
            self.trace.emit(
                "leader_failover",
                failed=failed.qid,
                promoted=promoted.qid,
                offset=offset,
            )

    def _sync_breaker_gauge(self, sq: ServedQuery) -> None:
        self.metrics.gauge(
            "serving_breaker_state",
            help="per-query circuit breaker (0=closed 1=half-open 2=open)",
            serve_id=sq.qid,
        ).set(sq.breaker.state_code())

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """End the serve: flush every active query, commit final state.

        Flushing runs inside the same per-query fault boundary as
        feeding: one poisoned query raising during its trailing window
        flush cannot abort the drain for the others.
        """
        if self._closed:
            return
        for sq in self.active_queries():
            try:
                sq.instance.finish()
            except Exception as exc:  # fault boundary, not a bug trap
                self._record_failure(sq, exc, "flush", self.consumed, 0)
        self._closed = True
        self.commit(kind="final")
        if self.journal is not None:
            self.journal.close()

    def drain(self) -> None:
        """Graceful drain: stop admitting, flush, final-commit, close.

        Idempotent; after it returns, ``--resume`` from the journal
        restores the final state and reads no further input.
        """
        self.draining = True
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- durability --------------------------------------------------------

    def _journal_event(self, kind: str, **fields: Any) -> None:
        if self.journal is not None and not self._muted:
            self.journal.append(kind, **fields)

    def commit(self, kind: str = "commit") -> None:
        """Append one durable checkpoint of every served query."""
        if self.journal is None:
            return
        self.journal.append(
            kind,
            consumed=self.consumed,
            offered=dict(self._offered),
            next_id=self._next_id,
            queries={
                qid: {
                    "snapshot": sq.instance.checkpoint(),
                    "active": sq.active,
                }
                for qid, sq in self._queries.items()
            },
            breakers={
                qid: sq.breaker.checkpoint()
                for qid, sq in self._queries.items()
            },
            dead_letters=self.dead_letters.checkpoint(),
        )
        if self.on_commit is not None:
            self.on_commit(self.consumed, kind)

    def _restore(
        self,
        replayed: List[Dict[str, Any]],
        commit: Dict[str, Any],
    ) -> None:
        """Rebuild the standing set from the event log + last commit."""
        self._muted = True
        try:
            for event in replayed:
                if event["kind"] == "register":
                    sq = self.register(
                        event["text"],
                        name=event["name"],
                        tenant=event["tenant"],
                        qid=event["qid"],
                    )
                    sq.registered_at = event["offset"]
                else:
                    sq = self.unregister(event["qid"])
                    sq.unregistered_at = event["offset"]
        finally:
            self._muted = False
        for qid, entry in commit["queries"].items():
            self._queries[qid].instance.restore(
                entry["snapshot"], restore_cost=True
            )
        # Pre-isolation journals carry no breaker/dead-letter state;
        # breakers then start closed, exactly as the original run did.
        for qid, snapshot in commit.get("breakers", {}).items():
            sq = self._queries[qid]
            sq.breaker.restore(snapshot)
            self._sync_breaker_gauge(sq)
        if "dead_letters" in commit:
            self.dead_letters.restore(commit["dead_letters"])
        self.consumed = commit["consumed"]
        self._offered = dict(commit["offered"])
        self._next_id = max(self._next_id, commit["next_id"])
        if commit["kind"] == "final":
            for sq in self.active_queries():
                sq.instance._session = None
            self._closed = True
            if self.journal is not None:
                self.journal.close()

    # -- reporting ---------------------------------------------------------

    def export_metrics(self) -> MetricsRegistry:
        """One registry over the whole serve, per-query/per-tenant labelled.

        Every served query's private registry is folded in stamped with
        ``serve_id`` and ``tenant`` labels (the instance's own ``query``
        and ``stream`` labels survive), alongside the engine's
        ``serving_*`` series — the document the HTTP ``/metrics``
        endpoint renders.
        """
        out = MetricsRegistry()
        out.absorb(self.metrics.checkpoint())
        for sq in self._queries.values():
            out.absorb(
                sq.instance.metrics.checkpoint(),
                extra_labels={"serve_id": sq.qid, "tenant": sq.tenant},
            )
        return out

    def report(self) -> Dict[str, Any]:
        """JSON summary: queries, sharing groups, quotas, quarantine."""
        groups = [
            {
                "signature": signature.describe(),
                "split_keys": list(signature.split_keys),
                "members": list(members),
            }
            for signature, members in self._groups.items()
        ]
        return {
            "consumed": self.consumed,
            "closed": self._closed,
            "draining": self.draining,
            "queries": [sq.describe() for sq in self._queries.values()],
            "shared_groups": groups,
            "tenants": {
                tenant: {
                    "offered": self._offered.get(tenant, 0),
                    "cycles_per_record": quota.cycles_per_record,
                    "spent_cycles": sum(
                        sq.instance.cost.total_cycles()
                        for sq in self._queries.values()
                        if sq.active and sq.tenant == tenant
                    ),
                }
                for tenant, quota in self.quotas.items()
            },
            "dead_letters": {
                "total": self.dead_letters.total,
                "evicted": self.dead_letters.evicted,
                "by_query": self.dead_letters.counts_by_query(),
            },
        }

    def _sync_gauges(self) -> None:
        self.metrics.gauge(
            "serving_active_queries",
            help="currently registered standing queries",
        ).set(len(self.active_queries()))
        self.metrics.gauge(
            "serving_shared_groups",
            help="distinct shared low-level prefixes",
        ).set(len(self._groups))


# -- synchronous drivers ----------------------------------------------------


def drive(
    engine: StandingQueryEngine,
    records: Iterable[Record],
    schedule: Iterable[Dict[str, Any]] = (),
    *,
    batch_size: int = 512,
    commit_interval: int = 4,
    close: bool = True,
) -> int:
    """Feed a record stream, applying scheduled registry events at their
    record offsets and committing every ``commit_interval`` batches.

    ``schedule`` entries are journal-event-shaped dicts:
    ``{"kind": "register", "offset": N, "text": ..., "name": ...,
    "tenant": ..., "qid": ...}`` or
    ``{"kind": "unregister", "offset": N, "qid": ...}``.  Batches are
    split at event offsets, so an event at offset N takes effect after
    exactly N records — deterministically, which is what lets the
    journal replay a schedule byte-identically on resume.
    """
    events = sorted(schedule, key=lambda event: event["offset"])
    index = 0

    def apply_due() -> None:
        nonlocal index
        while index < len(events) and events[index]["offset"] <= engine.consumed:
            event = events[index]
            index += 1
            if event["kind"] == "register":
                engine.register(
                    event["text"],
                    name=event.get("name", "q"),
                    tenant=event.get("tenant", "default"),
                    qid=event.get("qid"),
                )
            else:
                engine.unregister(event["qid"])

    apply_due()
    iterator = iter(records)
    since_commit = 0
    while True:
        limit = batch_size
        if index < len(events):
            limit = min(limit, events[index]["offset"] - engine.consumed)
        batch = list(islice(iterator, limit))
        if not batch:
            break
        engine.feed(batch)
        since_commit += 1
        if since_commit >= commit_interval:
            engine.commit()
            since_commit = 0
        apply_due()
    # Events scheduled past the end of the input apply at stream end.
    while index < len(events):
        event = events[index]
        index += 1
        if event["kind"] == "register":
            engine.register(
                event["text"],
                name=event.get("name", "q"),
                tenant=event.get("tenant", "default"),
                qid=event.get("qid"),
            )
        else:
            engine.unregister(event["qid"])
    if close:
        engine.close()
    return engine.consumed


def _skip(records: Iterable[Record], n: int) -> Iterator[Record]:
    iterator = iter(records)
    skipped = sum(1 for _ in islice(iterator, n))
    if skipped < n:
        raise ExecutionError(
            f"resume input is shorter than the committed prefix"
            f" ({skipped} < {n} records): the input must be the same"
            " replayable stream the original serve consumed"
        )
    return iterator


def resume_serving(
    instance_factory: Callable[[], Gigascope],
    journal_path: str,
    records: Iterable[Record],
    *,
    share: bool = True,
    quotas: Optional[Dict[str, Any]] = None,
    batch_size: int = 512,
    commit_interval: int = 4,
    on_commit: Optional[Callable[[int, str], None]] = None,
    breaker: Optional[BreakerConfig] = None,
) -> StandingQueryEngine:
    """Resume a journalled serve after a crash.

    Rebuilds every standing registration from the event log, restores
    the last commit's instance checkpoints (including circuit-breaker
    and dead-letter state), skips the committed input prefix and replays
    the remainder — re-applying any events recorded after the last
    commit at their original offsets.  ``records`` must be the same
    replayable stream the original serve consumed, and ``breaker`` must
    match the original configuration so quarantine decisions replay at
    the same offsets.  Returns the closed engine (results, metrics and
    cost accounts byte-identical to an uninterrupted serve).
    """
    entries = ServingJournal.read(journal_path)
    replayed, last_commit, pending = split_log(entries)
    if last_commit is None:
        # Died before anything durable: degenerate to a fresh serve with
        # the recorded events as the schedule.
        engine = StandingQueryEngine(
            instance_factory,
            share=share,
            quotas=quotas,
            journal=ServingJournal(journal_path, fresh=True),
            on_commit=on_commit,
            breaker=breaker,
        )
        drive(
            engine,
            records,
            schedule=pending,
            batch_size=batch_size,
            commit_interval=commit_interval,
        )
        return engine
    engine = StandingQueryEngine(
        instance_factory,
        share=share,
        quotas=quotas,
        journal=ServingJournal(journal_path, fresh=False),
        on_commit=on_commit,
        breaker=breaker,
    )
    engine._restore(replayed, last_commit)
    if engine.closed:
        return engine
    drive(
        engine,
        _skip(records, last_commit["consumed"]),
        schedule=pending,
        batch_size=batch_size,
        commit_interval=commit_interval,
    )
    return engine


# -- the asyncio server ------------------------------------------------------


@dataclass(frozen=True)
class HttpLimits:
    """Hard bounds on the HTTP plane's exposure to misbehaving clients.

    ``read_timeout`` caps the whole request read (line + headers +
    body) per connection, so a slow-loris client is disconnected with
    408 instead of pinning a handler forever.  ``write_timeout`` caps
    each response drain, so a client that stops reading mid-response is
    aborted.  ``max_header_bytes`` bounds the request line and each
    header block; ``max_body_bytes`` bounds the declared body.
    ``max_connections`` caps concurrent handlers — beyond it new
    connections are shed with a structured 503, which is load shedding,
    not failure (the same graceful-degradation posture as ring-buffer
    shedding at the data plane).
    """

    read_timeout: float = 5.0
    write_timeout: float = 5.0
    max_body_bytes: int = 1 << 20
    max_header_bytes: int = 8192
    max_headers: int = 64
    max_connections: int = 64


class _RequestError(Exception):
    """A malformed/oversized request, mapped to a structured 4xx."""

    def __init__(self, status: str, reason: str, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.reason = reason
        self.detail = detail


class QueryServer:
    """Asyncio façade: standing ingest plus an HTTP control/metrics plane.

    The ingest coroutine feeds batches through the engine, yielding to
    the event loop between batches so HTTP requests (scrapes, hot
    register/unregister, drain) interleave at batch boundaries.  The
    HTTP plane is dependency-free (``asyncio.start_server`` +
    hand-rolled HTTP/1.1) and hardened by :class:`HttpLimits`, serving:

    * ``GET /metrics`` — Prometheus exposition with per-query
      (``serve_id``) and per-tenant labels;
    * ``GET /healthz`` — liveness + records consumed;
    * ``GET /readyz`` — readiness: 200 while serving, 503 once a drain
      begins or the engine closes;
    * ``GET /queries`` — the standing set, sharing and quarantine report;
    * ``POST /queries`` — register (JSON ``{"query": ..., "name": ...,
      "tenant": ...}``); 503 while draining;
    * ``DELETE /queries/<id>`` — unregister (404 for unknown ids);
    * ``GET /queries/<id>/results`` — rows emitted so far
      (``?limit=N`` truncates; 404 for unknown ids);
    * ``POST /drain`` — request a graceful drain (202).
    """

    def __init__(
        self,
        engine: StandingQueryEngine,
        *,
        batch_size: int = 512,
        commit_interval: int = 4,
        pace: float = 0.0,
        limits: Optional[HttpLimits] = None,
    ) -> None:
        self.engine = engine
        self.batch_size = batch_size
        self.commit_interval = commit_interval
        self.pace = pace
        self.limits = limits or HttpLimits()
        self.drained = False  # ingest terminated early by a drain
        self._http: Optional[asyncio.AbstractServer] = None
        self._drain_event = asyncio.Event()
        self._connections = 0

    # -- ingest ------------------------------------------------------------

    async def ingest(self, records: Iterable[Record], close: bool = True) -> int:
        """Drive the record stream through the engine.

        Stops early (and closes the engine, flushing windows and
        writing the final journal commit) when a drain is requested via
        :meth:`request_drain`, SIGTERM/SIGINT, or ``POST /drain``.
        """
        since_commit = 0
        for batch in _batches(records, self.batch_size):
            if self._drain_event.is_set():
                self.drained = True
                break
            self.engine.feed(batch)
            since_commit += 1
            if since_commit >= self.commit_interval:
                self.engine.commit()
                since_commit = 0
            await asyncio.sleep(self.pace)
        if (close or self.drained) and not self.engine.closed:
            self.engine.close()
        return self.engine.consumed

    # -- drain -------------------------------------------------------------

    def request_drain(self, reason: str = "request") -> None:
        """Begin a graceful drain: flip readiness, stop admissions.

        Safe to call from a signal handler (it only sets flags); the
        ingest loop notices at the next batch boundary, flushes open
        windows, writes the final journal commit and stops.  Idempotent.
        """
        if self._drain_event.is_set() or self.engine.closed:
            return
        self.engine.draining = True
        self._drain_event.set()
        self.engine.metrics.counter(
            "serving_drains_total",
            help="graceful drains requested",
            reason=reason,
        ).inc()
        if self.engine.trace.enabled:
            self.engine.trace.emit(
                "drain_requested", reason=reason,
                consumed=self.engine.consumed,
            )

    def install_signal_handlers(self) -> bool:
        """Map SIGTERM/SIGINT to :meth:`request_drain` on the running loop.

        Returns ``False`` (installing nothing) when this thread cannot
        own process signals — not the main thread, no running event
        loop, or a platform whose loop lacks ``add_signal_handler`` —
        so embedding the server in a worker thread stays safe.
        """
        if threading.current_thread() is not threading.main_thread():
            return False
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return False
        try:
            loop.add_signal_handler(
                signal.SIGTERM, self.request_drain, "SIGTERM"
            )
            loop.add_signal_handler(
                signal.SIGINT, self.request_drain, "SIGINT"
            )
        except (NotImplementedError, RuntimeError, ValueError):
            return False
        return True

    async def linger(self, seconds: float) -> None:
        """Keep the endpoint up for ``seconds``; cut short by a drain."""
        if seconds <= 0:
            return
        try:
            await asyncio.wait_for(self._drain_event.wait(), timeout=seconds)
        except asyncio.TimeoutError:
            pass

    @property
    def ready(self) -> bool:
        return not (
            self._drain_event.is_set()
            or self.engine.draining
            or self.engine.closed
        )

    # -- HTTP plane --------------------------------------------------------

    async def start_http(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Start the endpoint; returns the bound (host, port)."""
        self._http = await asyncio.start_server(
            self._handle, host, port,
            # StreamReader limit: a single header line longer than this
            # raises ValueError out of readline(), mapped to 431 below.
            limit=self.limits.max_header_bytes,
        )
        sockname = self._http.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def stop_http(self) -> None:
        if self._http is not None:
            self._http.close()
            await self._http.wait_closed()
            self._http = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        try:
            if self._connections > self.limits.max_connections:
                self.engine.metrics.counter(
                    "serving_http_overload_total",
                    help="connections shed at the HTTP connection cap",
                ).inc()
                await self._respond(writer, *self._error(
                    "503 Service Unavailable", "overloaded",
                    f"connection cap ({self.limits.max_connections})"
                    " reached; retry later",
                ))
                return
            try:
                request = await asyncio.wait_for(
                    self._read_request(reader), self.limits.read_timeout
                )
            except asyncio.TimeoutError:
                self.engine.metrics.counter(
                    "serving_http_timeouts_total",
                    help="connections dropped at an HTTP deadline",
                    phase="read",
                ).inc()
                await self._respond(writer, *self._error(
                    "408 Request Timeout", "read_deadline",
                    "request not received within"
                    f" {self.limits.read_timeout}s",
                ))
                return
            except _RequestError as exc:
                await self._respond(
                    writer,
                    *self._error(exc.status, exc.reason, exc.detail),
                )
                return
            if request is None:
                return  # torn request: peer vanished mid-line
            method, path, body = request
            status, ctype, payload = self._route(method, path, body)
            await self._respond(writer, status, ctype, payload)
        except asyncio.CancelledError:
            # Server stopping while this request is in flight: abort the
            # transport quietly and keep the cancellation propagating —
            # no spurious tracebacks from half-written responses.
            writer.transport.abort()
            raise
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            self._connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        """Read one bounded HTTP/1.1 request; ``None`` if the peer tore
        the connection before completing the request line or headers."""
        too_large = _RequestError(
            "431 Request Header Fields Too Large", "headers_too_large",
            f"request line/headers exceed {self.limits.max_header_bytes}"
            f" bytes or {self.limits.max_headers} fields",
        )
        try:
            request_line = await reader.readline()
        except ValueError:
            raise too_large from None
        if not request_line:
            return None
        if not request_line.endswith(b"\n"):
            return None  # EOF mid-request-line: nothing to answer
        parts = request_line.decode("ascii", "replace").split()
        if len(parts) < 2:
            raise _RequestError(
                "400 Bad Request", "malformed_request_line",
                "expected 'METHOD /path HTTP/1.1'",
            )
        method, path = parts[0], parts[1]
        headers: Dict[str, str] = {}
        header_bytes = 0
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                raise too_large from None
            if line in (b"\r\n", b"\n"):
                break
            if not line.endswith(b"\n"):
                return None  # EOF mid-headers
            header_bytes += len(line)
            if (
                header_bytes > self.limits.max_header_bytes
                or len(headers) >= self.limits.max_headers
            ):
                raise too_large
            key, _, value = line.decode("ascii", "replace").partition(":")
            headers[key.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _RequestError(
                "400 Bad Request", "bad_content_length",
                f"Content-Length {raw_length!r} is not an integer",
            ) from None
        if length < 0:
            raise _RequestError(
                "400 Bad Request", "bad_content_length",
                "Content-Length must be non-negative",
            )
        if length > self.limits.max_body_bytes:
            raise _RequestError(
                "413 Content Too Large", "body_too_large",
                f"declared body of {length} bytes exceeds the"
                f" {self.limits.max_body_bytes} byte cap",
            )
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: str,
        ctype: str,
        payload: bytes,
    ) -> None:
        self.engine.metrics.counter(
            "serving_http_requests_total",
            help="HTTP responses by status code",
            code=status.split()[0],
        ).inc()
        head = (
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("ascii") + payload)
        try:
            await asyncio.wait_for(
                writer.drain(), self.limits.write_timeout
            )
        except asyncio.TimeoutError:
            # The peer stopped reading mid-response: abort rather than
            # letting backpressure pin this handler.
            self.engine.metrics.counter(
                "serving_http_timeouts_total",
                help="connections dropped at an HTTP deadline",
                phase="write",
            ).inc()
            writer.transport.abort()
        except ConnectionError:
            pass

    def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[str, str, bytes]:
        path, _, query_string = path.partition("?")
        try:
            if method == "GET" and path == "/metrics":
                text = render_prometheus(self.engine.export_metrics())
                return (
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    text.encode(),
                )
            if method == "GET" and path == "/healthz":
                return self._json("200 OK", {
                    "status": "ok",
                    "consumed": self.engine.consumed,
                    "closed": self.engine.closed,
                    "draining": self.engine.draining,
                })
            if method == "GET" and path == "/readyz":
                if self.ready:
                    return self._json("200 OK", {
                        "status": "ready",
                        "consumed": self.engine.consumed,
                    })
                return self._error(
                    "503 Service Unavailable", "draining",
                    "the server is draining or closed; not accepting work",
                )
            if method == "POST" and path == "/drain":
                self.request_drain("http")
                return self._json("202 Accepted", {
                    "status": "draining",
                    "consumed": self.engine.consumed,
                })
            if method == "GET" and path == "/queries":
                return self._json("200 OK", self.engine.report())
            if method == "POST" and path == "/queries":
                try:
                    request = json.loads(body.decode() or "{}")
                except json.JSONDecodeError as exc:
                    return self._error(
                        "400 Bad Request", "bad_json", str(exc)
                    )
                if "query" not in request:
                    return self._error(
                        "400 Bad Request", "missing_field",
                        "missing 'query'",
                    )
                sq = self.engine.register(
                    request["query"],
                    name=request.get("name", "q"),
                    tenant=request.get("tenant", "default"),
                )
                return self._json("201 Created", {
                    "id": sq.qid,
                    "offset": sq.registered_at,
                    "shared": sq.signature is not None,
                    "share_reason": sq.share_reason,
                })
            if path.startswith("/queries/"):
                rest = path[len("/queries/"):]
                if method == "DELETE" and "/" not in rest:
                    sq = self.engine.unregister(rest)
                    return self._json("200 OK", {
                        "id": sq.qid,
                        "rows": len(sq.results),
                        "unregistered_at": sq.unregistered_at,
                    })
                if method == "GET" and rest.endswith("/results"):
                    qid = rest[: -len("/results")].rstrip("/")
                    sq = self.engine.lookup(qid)
                    rows = [list(r.values) for r in sq.results]
                    for item in query_string.split("&"):
                        if item.startswith("limit="):
                            rows = rows[: int(item[len("limit="):])]
                    schema = sq.instance.query(sq.name).output_schema
                    return self._json("200 OK", {
                        "id": sq.qid,
                        "schema": list(schema.names),
                        "rows": rows,
                    })
            return self._error(
                "404 Not Found", "no_route", f"no route {path}"
            )
        except UnknownQueryError as exc:
            return self._error("404 Not Found", "unknown_query", str(exc))
        except ServingUnavailableError as exc:
            return self._error("503 Service Unavailable", "draining", str(exc))
        except (ExecutionError, PlanningError, ValueError) as exc:
            return self._error("400 Bad Request", "rejected", str(exc))
        except Exception as exc:  # never kill the connection handler
            return self._error(
                "500 Internal Server Error", type(exc).__name__, str(exc)
            )

    @staticmethod
    def _json(status: str, payload: Dict[str, Any]) -> Tuple[str, str, bytes]:
        return status, "application/json", json.dumps(payload).encode()

    @staticmethod
    def _error(status: str, reason: str, detail: str) -> Tuple[str, str, bytes]:
        """A structured error body: machine-readable status/reason/detail."""
        payload = {
            "error": {
                "status": int(status.split()[0]),
                "reason": reason,
                "detail": detail,
            }
        }
        return status, "application/json", json.dumps(payload).encode()
