"""Common-subexpression sharing at the split edge (docs/SERVING.md).

Gigascope's deployment model is many standing queries over a few heavy
feeds (paper §1): almost all of the per-tuple work is the *low-level*
prefix — reading the ring buffer, evaluating the shared prefilter, and
copying survivors up the SPLIT edge.  When two standing queries compile
to the same low-level prefix, the serving layer runs that prefix **once**
and replays its effects into every other subscriber:

* :func:`share_signature` decides whether a compiled plan *has* a
  shareable prefix and what it is, by walking the operator-phase DAG
  from :func:`repro.analysis.dataflow.build_plan_graph` — the same graph
  the SA2xx/SA3xx dataflow lints analyze, and the graph the SA401
  serving lint reports against;
* :func:`capture_feed` feeds a batch to the *canonical* (first
  registered) instance of a signature group normally, capturing the
  low-level node's emitted records plus the exact metric-counter and
  cost-account deltas the shared prefix produced;
* :func:`replay_feed` applies those deltas — relabelled to the
  follower's node names — to every other member, then re-enacts the
  SPLIT-edge copy (``tuple_copy`` charge, ``query_forwarded_total``,
  results retention) per follower and injects the captured records into
  the follower's own high-level operator.

The replay is *exact*, not approximate: every counter an instance would
have produced running solo is either regenerated natively (everything
downstream of the split edge) or transplanted as a delta (everything on
the shared prefix), so a shared run is byte-identical to a solo run —
the property ``tests/serving/test_equivalence.py`` enforces for every
pair and triple of example queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.dataflow import build_plan_graph
from repro.dsms.expr import ScalarCall, find_nodes
from repro.dsms.parser.planner import QueryPlan, partition_info
from repro.streams.records import Record

#: (metric name, sorted label items, counter delta)
MetricDelta = Tuple[str, Tuple[Tuple[str, str], ...], int]


@dataclass(frozen=True)
class ShareSignature:
    """Identity of one shareable low-level prefix.

    Two standing queries may share one physical low-level node iff their
    signatures compare equal: same source stream, same canonical SELECT
    list, same canonical WHERE.  An auto-inserted pass-through feeder
    (``SELECT <all columns> FROM stream``) canonicalises to the same
    signature as an explicit user selection of the whole stream, so the
    two shapes share naturally.

    ``split_keys`` records which source columns would keep the SPLIT
    edge hash-compatible across the group under sharded serving
    (derived from :func:`~repro.dsms.parser.planner.partition_info`);
    it is informational metadata, deliberately excluded from equality so
    differing GROUP BYs do not defeat prefilter sharing.
    """

    stream: str
    select: Tuple[str, ...]
    where: str
    split_keys: Tuple[str, ...] = field(default=(), compare=False, hash=False)

    def describe(self) -> str:
        where = f" WHERE {self.where}" if self.where else ""
        return f"{self.stream}: SELECT {', '.join(self.select)}{where}"


def share_signature(
    plan: QueryPlan, registries: Any
) -> Tuple[Optional[ShareSignature], Optional[str]]:
    """The shareable-prefix signature of one compiled plan, or a reason.

    Returns ``(signature, None)`` when the query can share its served
    feed, ``(None, reason)`` when it cannot.  The reasons mirror the
    runtime's sharing refusals 1:1 and are what lint rule SA401 reports.
    """
    analyzed = plan.analyzed
    source = analyzed.ast.from_stream
    if source not in registries.schemas:
        return None, f"unknown source {source!r}"
    schema = registries.schemas[source]

    if plan.kind == "stateful_selection":
        return None, (
            "a stateful selection holds one global SFUN state set, so its"
            " low-level node cannot be shared with other queries"
        )

    if plan.kind in ("sampling", "aggregation"):
        # The runtime interposes a pass-through low-level feeder for
        # these (paper §7.2); the feeder is the shareable node.  Its
        # canonical shape: project every stream column, no predicate.
        split = partition_info(plan)
        return (
            ShareSignature(
                stream=source,
                select=tuple(schema.names),
                where="",
                split_keys=tuple(split.candidates or ()),
            ),
            None,
        )

    # A plain selection *is* the low-level node.  Its shareable prefix
    # is the whole plan: walk the phase DAG and canonicalise the WHERE
    # and SELECT expressions via their rendered form.
    graph = build_plan_graph(plan)
    where_parts: List[str] = []
    select_parts: List[str] = []
    for node in graph.topological():
        for clause, expr in node.exprs:
            rendered = str(expr)
            if node.kind == "where":
                where_parts.append(rendered)
            elif node.kind == "select":
                select_parts.append(rendered)
            for call in find_nodes(expr, ScalarCall):
                if not registries.scalars.is_deterministic(call.name):
                    return None, (
                        f"nondeterministic scalar {call.name}() in the"
                        f" {clause} clause: replaying its outputs to other"
                        " subscribers would freeze one random draw"
                    )
    split = partition_info(plan)
    return (
        ShareSignature(
            stream=source,
            select=tuple(select_parts),
            where=" AND ".join(where_parts),
            split_keys=tuple(split.candidates or ()),
        ),
        None,
    )


@dataclass
class BatchCapture:
    """Everything one canonical feed produced on the shared prefix."""

    low_name: str
    high_name: Optional[str]
    outputs: List[Record]
    forwarded: int
    metric_deltas: List[MetricDelta]
    helps: Dict[str, str]
    cost_deltas: Dict[str, int]


def _counter_values(metrics: Any) -> Dict[Tuple[str, tuple], int]:
    out: Dict[Tuple[str, tuple], int] = {}
    for series in metrics.series():
        if series.kind == "counter":
            out[(series.name, series.labels)] = series.value
    return out


def capture_feed(
    gs: Any, low_name: str, high_name: Optional[str], batch: List[Record]
) -> BatchCapture:
    """Feed ``batch`` to the canonical instance, capturing prefix effects.

    The low-level node's ``process`` is shimmed for the duration of the
    feed to collect its emitted records; metric and cost deltas are
    taken by snapshot difference.  Deltas attributable to the canonical
    query's own *high-level* operator are excluded (each follower
    regenerates those natively via :func:`replay_feed`), as is the
    SPLIT-edge copy accounting (``query_forwarded_total`` and its
    ``tuple_copy`` cycles), which is re-enacted per follower because
    followers differ in whether a downstream operator exists.
    """
    low = gs.query(low_name)
    metrics_before = _counter_values(gs.metrics)
    cost_before = gs.cost.accounts() if gs.cost.enabled else {}
    forwarded_before = low.forwarded

    outputs: List[Record] = []
    original = low.operator.process

    def capturing(record: Record) -> List[Record]:
        outs = original(record)
        if outs:
            outputs.extend(outs)
        return outs

    low.operator.process = capturing
    try:
        gs.feed(batch)
    finally:
        del low.operator.process

    forwarded = low.forwarded - forwarded_before
    metric_deltas: List[MetricDelta] = []
    helps: Dict[str, str] = {}
    for key, value in _counter_values(gs.metrics).items():
        delta = value - metrics_before.get(key, 0)
        if not delta:
            continue
        name, labels = key
        have = dict(labels)
        if high_name is not None and have.get("query") == high_name:
            continue
        if name == "query_forwarded_total" and have.get("query") == low_name:
            continue
        metric_deltas.append((name, labels, delta))
        help_text = gs.metrics.help_text(name)
        if help_text is not None:
            helps[name] = help_text

    cost_deltas: Dict[str, int] = {}
    if gs.cost.enabled:
        for account, cycles in gs.cost.accounts().items():
            delta = cycles - cost_before.get(account, 0)
            if account == high_name:
                continue
            if account == low_name:
                delta -= gs.cost.book.tuple_copy * forwarded
            if delta:
                cost_deltas[account] = delta

    return BatchCapture(
        low_name=low_name,
        high_name=high_name,
        outputs=outputs,
        forwarded=forwarded,
        metric_deltas=metric_deltas,
        helps=helps,
        cost_deltas=cost_deltas,
    )


def replay_feed(
    gs: Any, low_name: str, high_name: Optional[str], capture: BatchCapture
) -> None:
    """Re-enact one captured feed on a follower instance.

    Transplants the shared-prefix deltas (relabelled from the canonical
    node's name to the follower's), then performs the follower's own
    SPLIT-edge copy and dispatches the captured records into its
    high-level operator — the exact work :meth:`Gigascope._propagate`
    would have done had the follower's low-level node produced them.
    """
    for name, labels, delta in capture.metric_deltas:
        relabelled = {
            key: (low_name if key == "query" and value == capture.low_name
                  else value)
            for key, value in labels
        }
        gs.metrics.counter(
            name, help=capture.helps.get(name), **relabelled
        ).inc(delta)
    if gs.cost.enabled and capture.cost_deltas:
        gs.cost.absorb({
            (low_name if account == capture.low_name else account): cycles
            for account, cycles in capture.cost_deltas.items()
        })

    outputs = capture.outputs
    low = gs.query(low_name)
    if high_name is not None:
        if outputs:
            if low.keep_results:
                low.results.extend(outputs)
            low.forwarded += len(outputs)
            gs.cost.charge(low_name, "tuple_copy", len(outputs))
            gs.metrics.counter(
                "query_forwarded_total",
                help="tuples pushed to downstream queries",
                query=low_name,
            ).inc(len(outputs))
            gs.inject(high_name, outputs, from_source=low_name)
    elif outputs and low.keep_results:
        low.results.extend(outputs)
