"""Test-support utilities (deterministic fault injection)."""

from repro.testing.faults import Fault, FaultPlan, PoisonPill

__all__ = ["Fault", "FaultPlan", "PoisonPill"]
