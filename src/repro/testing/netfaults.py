"""Misbehaving HTTP clients, for hardening the serving control plane.

The standing-query server's HTTP endpoint shares an event loop with the
feed loop, so a client that ties up a connection handler is an attack on
the *data plane*: every batch the loop cannot schedule is a batch no
standing query sees.  :class:`~repro.serving.server.HttpLimits` is the
defence; this module is the offence — small asyncio clients that do,
deterministically, what broken or hostile peers do in production:

* :func:`slow_loris` — open a connection and dribble one byte of the
  request at a time, never finishing.  Exercises the per-connection
  read deadline (408 or drop, never a pinned handler).
* :func:`disconnect_mid_response` — send a complete request, read a few
  bytes of the response, and vanish.  Exercises the write deadline /
  broken-pipe path (the handler must not leak or log a traceback storm).
* :func:`torn_request` — send half a request line and close.  Exercises
  the torn-read path (the server answers nothing and moves on).
* :func:`oversized_body` — declare a Content-Length beyond the body cap.
  The server must refuse with 413 *before* reading the body, so the
  client never gets to ship its gigabyte.
* :func:`oversized_headers` — exceed the header-size cap (431).
* :func:`flood` — open more concurrent connections than the cap; the
  excess must be shed with a structured 503, not queued forever.

Every helper returns what the *client* observed (status line, bytes
read, or ``None`` for a silent close) so tests can assert both sides of
the contract: the client was refused *and* the server stayed live.

These are test instruments for this repo's own server — they hold one
connection each and fire against a caller-supplied host/port.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Tuple


async def _open(host: str, port: int) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    return await asyncio.open_connection(host, port)


async def _read_status(reader: asyncio.StreamReader) -> Optional[int]:
    """The status code of the response head, or ``None`` on silent close."""
    try:
        head = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not head.startswith(b"HTTP/"):
        return None
    parts = head.split()
    return int(parts[1]) if len(parts) >= 2 else None


async def slow_loris(
    host: str,
    port: int,
    *,
    byte_interval: float = 0.05,
    give_up_after: float = 30.0,
) -> Optional[int]:
    """Dribble a request one byte at a time, waiting to be cut off.

    Returns the status the server eventually answered with (408 under
    :class:`~repro.serving.server.HttpLimits`), or ``None`` if the
    server just dropped the connection.  Never completes the request.
    """
    reader, writer = await _open(host, port)
    request = b"GET /metrics HTTP/1.1\r\nHost: crawl\r\n"
    try:
        deadline = asyncio.get_running_loop().time() + give_up_after
        for i in range(len(request)):
            writer.write(request[i : i + 1])
            try:
                await writer.drain()
            except ConnectionError:
                break  # server cut us off mid-dribble
            if asyncio.get_running_loop().time() > deadline:
                break
            await asyncio.sleep(byte_interval)
        # Never send the terminating blank line; wait for the verdict.
        return await _read_status(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def disconnect_mid_response(
    host: str, port: int, *, path: str = "/metrics", read_bytes: int = 64
) -> int:
    """Request ``path``, read ``read_bytes`` of the response, vanish.

    Returns how many bytes were actually read before aborting.  The
    server is left holding a half-written response on a dead socket —
    its write path must absorb that without stalling the feed loop.
    """
    reader, writer = await _open(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\n\r\n".encode())
    await writer.drain()
    got = await reader.read(read_bytes)
    # Abort the transport (RST) rather than close (FIN): the rudest exit.
    writer.transport.abort()
    return len(got)


async def torn_request(host: str, port: int) -> bytes:
    """Send half a request line and close; returns whatever came back.

    A correct server answers nothing (there is no request to answer)
    and the connection just ends — so the expected return is ``b""``.
    """
    reader, writer = await _open(host, port)
    try:
        writer.write(b"GET /quer")  # no newline, never completed
        await writer.drain()
        writer.write_eof()
        return await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def oversized_body(
    host: str, port: int, *, declared: int = 1 << 30
) -> Optional[int]:
    """Declare an absurd Content-Length; return the server's verdict.

    The refusal (413) must arrive *without* the body being sent — the
    bound is enforced on the declaration, not after a gigabyte of reads.
    """
    reader, writer = await _open(host, port)
    try:
        writer.write(
            b"POST /queries HTTP/1.1\r\n"
            + f"Content-Length: {declared}\r\n\r\n".encode()
        )
        await writer.drain()
        return await _read_status(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def oversized_headers(
    host: str, port: int, *, header_bytes: int = 1 << 16
) -> Optional[int]:
    """Send a header block past the cap; return the verdict (431)."""
    reader, writer = await _open(host, port)
    try:
        writer.write(b"GET /healthz HTTP/1.1\r\n")
        filler = b"X-Padding: " + b"a" * header_bytes + b"\r\n"
        try:
            writer.write(filler)
            await writer.drain()
            writer.write(b"\r\n")
            await writer.drain()
        except ConnectionError:
            pass  # server may cut the connection as soon as the cap trips
        return await _read_status(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def flood(
    host: str, port: int, *, connections: int, hold: float = 0.5
) -> List[Optional[int]]:
    """Open ``connections`` idle connections at once, then one probe.

    Holds every connection open (no request sent) for ``hold`` seconds
    while a final well-formed request is made; returns the list of
    statuses observed — the probe's verdict is the last element.  With
    the cap exceeded, late connections see a structured 503 while the
    server itself stays live.
    """
    writers: List[asyncio.StreamWriter] = []
    statuses: List[Optional[int]] = []
    try:
        for _ in range(connections):
            try:
                _, writer = await _open(host, port)
            except ConnectionError:
                statuses.append(None)
                continue
            writers.append(writer)
        await asyncio.sleep(hold)
        try:
            reader, writer = await _open(host, port)
            writers.append(writer)
            writer.write(b"GET /healthz HTTP/1.1\r\n\r\n")
            await writer.drain()
            statuses.append(await _read_status(reader))
        except ConnectionError:
            statuses.append(None)
        return statuses
    finally:
        for writer in writers:
            writer.close()
        for writer in writers:
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
