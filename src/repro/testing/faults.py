"""Deterministic fault injection for the sharded runtime.

Crash-recovery code is only trustworthy if its failure paths are
*exercised*, and real worker crashes are timing-dependent.  This module
gives tests a way to make a specific shard worker fail at a specific,
repeatable point:

* ``kill`` — hard-exit the worker (``os._exit(1)``) just before it
  processes its Nth batch, simulating a segfaulting UDF or an OOM kill.
* ``delay`` — sleep inside the worker before batch N, simulating a stall
  (slow disk, GC pause); with a short supervisor heartbeat timeout this
  exercises the stalled-worker detection path.
* ``corrupt`` — emit a :class:`PoisonPill` on the result queue (its
  unpickling raises in the parent) and then hard-exit, simulating a
  truncated/garbled IPC message from a dying worker.
* ``drop_result`` — exit cleanly *instead of* sending the final result,
  simulating a worker that dies between finishing work and reporting it.

A :class:`Fault` fires once per matching batch position.  By default it
fires only in the worker's first incarnation (``every_epoch=False``), so
a supervised restart of the same shard succeeds — which is exactly the
recovery scenario the tests assert.  Set ``every_epoch=True`` to make
the failure permanent and exercise the restarts-exhausted path.

Faults are injected *inside the worker process*: the plan is captured by
``fork``, so no fault state needs to pickle.

The module also injects failures at the **ingest edge** (PR 5):

* :class:`SourceFault` / :class:`FaultySource` — deterministic stream
  damage for exercising :class:`repro.streams.sources.ResilientSource`
  and the dead-letter quarantine: ``drop``, ``duplicate``, ``reorder``
  and ``corrupt`` mutate the record sequence itself, ``fail`` raises a
  transient read error once (the reconnect path), ``stall`` sleeps once
  (the read-timeout watchdog path).
* :func:`exit_after_commits` — an ``on_commit`` hook for
  :class:`repro.dsms.durability.DurableRunner` that hard-exits the
  *whole process* after the Nth durable commit: the chaos tests'
  kill-parent-at-window-N switch.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence

_ACTIONS = ("kill", "delay", "corrupt", "drop_result")


def _raise_poison() -> None:
    raise RuntimeError("poisoned pickle from fault injection")


class PoisonPill:
    """An object whose *unpickling* raises, corrupting the result queue.

    ``__reduce__`` hands the unpickler a callable that raises, so the
    parent's ``Queue.get`` — not the worker's ``put`` — blows up, exactly
    like a garbled message from a crashing process.
    """

    def __reduce__(self):
        return (_raise_poison, ())


@dataclass(frozen=True)
class Fault:
    """One deterministic failure: *shard* misbehaves at batch *at_batch*.

    ``at_batch`` counts data batches the worker has accepted, starting at
    1; the fault fires just before the worker processes that batch (for
    ``drop_result``, at finish time and ``at_batch`` is ignored).
    ``seconds`` is the stall length for ``delay``.  ``every_epoch=False``
    restricts the fault to the worker's first incarnation (epoch 0) so a
    supervised restart runs clean.
    """

    shard: int
    action: str
    at_batch: int = 1
    seconds: float = 0.0
    every_epoch: bool = False

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {_ACTIONS}"
            )


class FaultPlan:
    """The full set of faults for one run, evaluated inside each worker."""

    def __init__(self, faults: Sequence[Fault] = ()) -> None:
        self.faults: List[Fault] = list(faults)

    def add(self, fault: Fault) -> "FaultPlan":
        self.faults.append(fault)
        return self

    def _matches(self, shard: int, epoch: int, action: str) -> List[Fault]:
        return [
            f
            for f in self.faults
            if f.shard == shard and f.action == action and (f.every_epoch or epoch == 0)
        ]

    def fire_batch(self, shard: int, epoch: int, batch_no: int, out_queue=None) -> None:
        """Called by the worker before processing data batch ``batch_no``.

        May sleep, poison ``out_queue``, or never return (hard exit).
        """
        for fault in self._matches(shard, epoch, "delay"):
            if fault.at_batch == batch_no:
                time.sleep(fault.seconds)
        for fault in self._matches(shard, epoch, "corrupt"):
            if fault.at_batch == batch_no and out_queue is not None:
                out_queue.put(PoisonPill())
                # Flush the feeder thread so the poison actually reaches
                # the pipe, then die: a corrupt message in practice means
                # the sender is broken, and exiting lets the parent's
                # liveness check attribute the poison to this shard.
                out_queue.close()
                out_queue.join_thread()
                os._exit(1)
        for fault in self._matches(shard, epoch, "kill"):
            if fault.at_batch == batch_no:
                os._exit(1)

    def drops_result(self, shard: int, epoch: int) -> bool:
        """Called by the worker at finish: die silently instead of reporting?"""
        return bool(self._matches(shard, epoch, "drop_result"))


# --------------------------------------------------------------------------
# Ingest-edge faults
# --------------------------------------------------------------------------

_SOURCE_ACTIONS = ("drop", "duplicate", "reorder", "corrupt", "fail", "stall", "hot_key")


@dataclass(frozen=True)
class SourceFault:
    """One deterministic ingest failure at record position ``at_record``.

    ``at_record`` is the 1-based index of the record in the *undamaged*
    input stream.  Stream-damage actions rewrite the sequence itself:

    * ``drop`` — the record never arrives.
    * ``duplicate`` — the record arrives twice.
    * ``reorder`` — the record swaps places with its successor.
    * ``corrupt`` — the record's value at ``attribute`` (default: the
      schema's first ordered attribute) is replaced with ``value``
      (default NaN, which schema coercion rejects), so admission-time
      validation quarantines it.
    * ``hot_key`` — adversarial skew: starting at ``at_record``, rewrite
      ``fraction`` of the records so their ``attribute`` (the partition
      key) carries the single hot ``value``.  The selection is evenly
      spaced and purely count-driven (the same accumulator rule the
      hot-key curation uses), so the damaged stream is identical across
      reruns, resumes and shard counts — a reproducible DDoS victim key
      for rebalance and chaos tests.

    Read-failure actions fire while the damaged stream is being *read*,
    once per :class:`FaultySource` (so a reconnect sees a clean source):

    * ``fail`` — raise ``IOError`` just before yielding the record.
    * ``stall`` — sleep ``seconds`` just before yielding the record.
    """

    action: str
    at_record: int
    seconds: float = 0.0
    attribute: Optional[str] = None
    value: Any = float("nan")
    fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.action not in _SOURCE_ACTIONS:
            raise ValueError(
                f"unknown source fault action {self.action!r}; "
                f"expected one of {_SOURCE_ACTIONS}"
            )
        if self.at_record < 1:
            raise ValueError("at_record is 1-based and must be >= 1")
        if self.action == "hot_key":
            if self.attribute is None:
                raise ValueError("hot_key needs attribute= (the partition key)")
            if not (0.0 < self.fraction <= 1.0):
                raise ValueError("hot_key fraction must be in (0, 1]")


def _corrupt_record(record: Any, fault: SourceFault) -> Any:
    """Return a damaged copy of *record* that fails schema coercion."""
    schema = getattr(record, "schema", None)
    if schema is None:  # raw payload (dict/bytes): hand back junk instead
        return {"__corrupt__": fault.value}
    name = fault.attribute
    if name is None:
        from repro.streams.schema import Ordering

        ordered = [
            a.name for a in schema.attributes if a.ordering is not Ordering.NONE
        ]
        name = ordered[0] if ordered else schema.attributes[0].name
    values = dict(zip(schema.names, record.values))
    values[name] = fault.value
    return type(record)(schema, tuple(values[n] for n in schema.names))


def _rekey_record(record: Any, attribute: str, value: Any) -> Any:
    """Return a copy of *record* whose partition key is the hot *value*."""
    schema = getattr(record, "schema", None)
    if schema is None:  # raw payload: nothing to rekey
        return record
    values = dict(zip(schema.names, record.values))
    values[attribute] = value
    return type(record)(schema, tuple(values[n] for n in schema.names))


def hot_key_stream(
    records: Sequence[Any],
    attribute: str,
    value: Any,
    fraction: float = 0.8,
    start: int = 1,
) -> List[Any]:
    """Concentrate *fraction* of the traffic from position *start* on one key.

    Record ``k`` (1-based, counted from *start*) is rewritten exactly when
    ``int(k*fraction) > int((k-1)*fraction)`` — the same deterministic
    accumulator the rebalancer's curation uses — so the hot records are
    evenly interleaved with the cold tail and the damaged sequence is a
    pure function of the input, independent of timing or shard count.
    """
    if not (0.0 < fraction <= 1.0):
        raise ValueError("fraction must be in (0, 1]")
    out: List[Any] = []
    for index, record in enumerate(records):
        position = index + 1
        if position < start:
            out.append(record)
            continue
        k = position - start + 1
        if int(k * fraction) > int((k - 1) * fraction):
            out.append(_rekey_record(record, attribute, value))
        else:
            out.append(record)
    return out


class FaultySource:
    """A replayable, damage-applying source factory for ResilientSource.

    Stream-damage faults (drop/duplicate/reorder/corrupt) are applied
    *once*, eagerly, producing a deterministic damaged sequence; calling
    the factory with ``skip=N`` then yields the damaged sequence from
    logical position N — exactly the contract
    :class:`repro.streams.sources.ResilientSource` expects after a
    reconnect.  Read faults (fail/stall) fire at their absolute logical
    position the *first* time it is read, then never again, so the
    post-reconnect pass over the same position succeeds.
    """

    def __init__(self, records: Sequence[Any], faults: Sequence[SourceFault] = ()):
        self.faults: List[SourceFault] = list(faults)
        self.damaged: List[Any] = self._apply_damage(list(records))
        self._fired: set = set()

    def _apply_damage(self, records: List[Any]) -> List[Any]:
        for fault in self.faults:
            if fault.action == "hot_key":
                records = hot_key_stream(
                    records,
                    fault.attribute,
                    fault.value,
                    fraction=fault.fraction,
                    start=fault.at_record,
                )
        out: List[Any] = []
        index = 0
        while index < len(records):
            position = index + 1  # 1-based
            matches = [
                f
                for f in self.faults
                if f.at_record == position and f.action in ("drop", "duplicate", "reorder", "corrupt")
            ]
            record = records[index]
            actions = {f.action: f for f in matches}
            if "corrupt" in actions:
                record = _corrupt_record(record, actions["corrupt"])
            if "drop" in actions:
                index += 1
                continue
            if "reorder" in actions and index + 1 < len(records):
                out.append(records[index + 1])
                out.append(record)
                index += 2
                continue
            out.append(record)
            if "duplicate" in actions:
                out.append(record)
            index += 1
        return out

    def __call__(self, skip: int = 0) -> Iterator[Any]:
        return self._iterate(skip)

    def _iterate(self, skip: int) -> Iterator[Any]:
        for index in range(skip, len(self.damaged)):
            position = index + 1  # 1-based logical position
            for n, fault in enumerate(self.faults):
                if fault.at_record != position or (n, position) in self._fired:
                    continue
                if fault.action == "stall":
                    self._fired.add((n, position))
                    time.sleep(fault.seconds)
                elif fault.action == "fail":
                    self._fired.add((n, position))
                    raise IOError(
                        f"injected transient read failure at record {position}"
                    )
            yield self.damaged[index]


def exit_after_commits(n: int, exit_code: int = 1):
    """An ``on_commit`` hook that hard-exits the process after commit N.

    Wire it into :class:`repro.dsms.durability.DurableRunner` to simulate
    killing the whole pipeline mid-run: the journal retains the first N
    commits, and a fresh process can ``resume()`` from them.  Uses
    ``os._exit`` so no cleanup (atexit, finally, multiprocessing
    shutdown) runs — as close to ``kill -9`` as a test can get while
    still choosing the crash point deterministically.
    """

    seen = {"commits": 0}

    def hook(consumed: int, kind: str) -> None:
        seen["commits"] += 1
        if seen["commits"] >= n:
            os._exit(exit_code)

    return hook
