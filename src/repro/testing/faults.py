"""Deterministic fault injection for the sharded runtime.

Crash-recovery code is only trustworthy if its failure paths are
*exercised*, and real worker crashes are timing-dependent.  This module
gives tests a way to make a specific shard worker fail at a specific,
repeatable point:

* ``kill`` — hard-exit the worker (``os._exit(1)``) just before it
  processes its Nth batch, simulating a segfaulting UDF or an OOM kill.
* ``delay`` — sleep inside the worker before batch N, simulating a stall
  (slow disk, GC pause); with a short supervisor heartbeat timeout this
  exercises the stalled-worker detection path.
* ``corrupt`` — emit a :class:`PoisonPill` on the result queue (its
  unpickling raises in the parent) and then hard-exit, simulating a
  truncated/garbled IPC message from a dying worker.
* ``drop_result`` — exit cleanly *instead of* sending the final result,
  simulating a worker that dies between finishing work and reporting it.

A :class:`Fault` fires once per matching batch position.  By default it
fires only in the worker's first incarnation (``every_epoch=False``), so
a supervised restart of the same shard succeeds — which is exactly the
recovery scenario the tests assert.  Set ``every_epoch=True`` to make
the failure permanent and exercise the restarts-exhausted path.

Faults are injected *inside the worker process*: the plan is captured by
``fork``, so no fault state needs to pickle.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

_ACTIONS = ("kill", "delay", "corrupt", "drop_result")


def _raise_poison() -> None:
    raise RuntimeError("poisoned pickle from fault injection")


class PoisonPill:
    """An object whose *unpickling* raises, corrupting the result queue.

    ``__reduce__`` hands the unpickler a callable that raises, so the
    parent's ``Queue.get`` — not the worker's ``put`` — blows up, exactly
    like a garbled message from a crashing process.
    """

    def __reduce__(self):
        return (_raise_poison, ())


@dataclass(frozen=True)
class Fault:
    """One deterministic failure: *shard* misbehaves at batch *at_batch*.

    ``at_batch`` counts data batches the worker has accepted, starting at
    1; the fault fires just before the worker processes that batch (for
    ``drop_result``, at finish time and ``at_batch`` is ignored).
    ``seconds`` is the stall length for ``delay``.  ``every_epoch=False``
    restricts the fault to the worker's first incarnation (epoch 0) so a
    supervised restart runs clean.
    """

    shard: int
    action: str
    at_batch: int = 1
    seconds: float = 0.0
    every_epoch: bool = False

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {_ACTIONS}"
            )


class FaultPlan:
    """The full set of faults for one run, evaluated inside each worker."""

    def __init__(self, faults: Sequence[Fault] = ()) -> None:
        self.faults: List[Fault] = list(faults)

    def add(self, fault: Fault) -> "FaultPlan":
        self.faults.append(fault)
        return self

    def _matches(self, shard: int, epoch: int, action: str) -> List[Fault]:
        return [
            f
            for f in self.faults
            if f.shard == shard and f.action == action and (f.every_epoch or epoch == 0)
        ]

    def fire_batch(self, shard: int, epoch: int, batch_no: int, out_queue=None) -> None:
        """Called by the worker before processing data batch ``batch_no``.

        May sleep, poison ``out_queue``, or never return (hard exit).
        """
        for fault in self._matches(shard, epoch, "delay"):
            if fault.at_batch == batch_no:
                time.sleep(fault.seconds)
        for fault in self._matches(shard, epoch, "corrupt"):
            if fault.at_batch == batch_no and out_queue is not None:
                out_queue.put(PoisonPill())
                # Flush the feeder thread so the poison actually reaches
                # the pipe, then die: a corrupt message in practice means
                # the sender is broken, and exiting lets the parent's
                # liveness check attribute the poison to this shard.
                out_queue.close()
                out_queue.join_thread()
                os._exit(1)
        for fault in self._matches(shard, epoch, "kill"):
            if fault.at_batch == batch_no:
                os._exit(1)

    def drops_result(self, shard: int, epoch: int) -> bool:
        """Called by the worker at finish: die silently instead of reporting?"""
        return bool(self._matches(shard, epoch, "drop_result"))
