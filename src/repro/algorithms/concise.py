"""Concise and counting sampling (Gibbons & Matias, SIGMOD 1998).

Uniform sampling wastes space on skewed data: a hot value occupies many
sample slots that a single ``(value, count)`` pair could represent.
*Concise sampling* stores the sample as value/count pairs under an
adaptive inclusion threshold ``τ``: each arrival enters the sample with
probability ``1/τ``; when the footprint (counting singletons as 1 and
pairs as 2) exceeds the capacity, ``τ`` is raised and every retained
*sample point* is kept with probability ``τ_old / τ_new`` — precisely the
admit/clean structure of the paper's sampling operator, which is why it
belongs in this library.

The retained multiset is distributed as a Bernoulli(1/τ) sample of the
stream, so ``count * τ`` estimates a value's true frequency.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.errors import ReproError


class ConciseSampler:
    """Adaptive-threshold Bernoulli sample stored as (value, count) pairs."""

    def __init__(
        self,
        capacity: int = 100,
        tau: float = 1.0,
        tau_growth: float = 2.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if capacity <= 1:
            raise ReproError("capacity must exceed 1")
        if tau < 1.0:
            raise ReproError("initial tau must be >= 1")
        if tau_growth <= 1.0:
            raise ReproError("tau growth factor must exceed 1")
        self.capacity = capacity
        self.tau = tau
        self.tau_growth = tau_growth
        self._rng = rng or random.Random(0xC0C1)
        self._counts: Dict[Hashable, int] = {}
        self.offered = 0
        self.cleanings = 0

    # -- stream path -------------------------------------------------------------

    def offer(self, value: Hashable) -> bool:
        """Process one element; True if a sample point was added for it."""
        self.offered += 1
        if self.tau > 1.0 and self._rng.random() >= 1.0 / self.tau:
            return False
        self._counts[value] = self._counts.get(value, 0) + 1
        if self.footprint > self.capacity:
            self._clean()
        return value in self._counts

    def extend(self, values: Iterable[Hashable]) -> None:
        for value in values:
            self.offer(value)

    def _clean(self) -> None:
        """Raise tau; keep each retained sample point w.p. tau_old/tau_new."""
        while self.footprint > self.capacity:
            self.cleanings += 1
            keep_probability = 1.0 / self.tau_growth
            self.tau *= self.tau_growth
            thinned: Dict[Hashable, int] = {}
            for value, count in self._counts.items():
                kept = sum(
                    1 for _ in range(count) if self._rng.random() < keep_probability
                )
                if kept:
                    thinned[value] = kept
            self._counts = thinned
            if not self._counts:
                return

    # -- results ---------------------------------------------------------------------

    @property
    def footprint(self) -> int:
        """Storage units used: 1 per singleton, 2 per (value, count) pair."""
        return sum(1 if count == 1 else 2 for count in self._counts.values())

    def sample_points(self) -> int:
        """Total retained sample points (with multiplicity)."""
        return sum(self._counts.values())

    def values(self) -> List[Hashable]:
        return list(self._counts)

    def estimated_frequency(self, value: Hashable) -> float:
        """Estimated stream frequency of a value: count * tau."""
        return self._counts.get(value, 0) * self.tau

    def frequent_values(self, min_estimated: float) -> List[Tuple[Hashable, float]]:
        """Values with estimated frequency above a threshold, descending."""
        result = [
            (value, count * self.tau)
            for value, count in self._counts.items()
            if count * self.tau >= min_estimated
        ]
        result.sort(key=lambda pair: pair[1], reverse=True)
        return result
