"""Reservoir sampling (paper §4.1; Vitter, TOMS 1985).

Three variants:

* :class:`ReservoirSampler` — Vitter's Algorithm R: the textbook
  replace-at-random reservoir.  Exactly uniform; O(1) per record.
* :class:`SkipReservoirSampler` — Algorithm X: instead of flipping a coin
  per record, generate the *skip* Φ(n, t) (how many records to pass over
  before the next replacement) by sequential search over its exact
  distribution.  Produces samples distributed identically to Algorithm R
  while touching far fewer records — the property that makes reservoir
  sampling viable at line speed.
* :class:`BufferedReservoirSampler` — the paper's operator-friendly
  variant (§4.1): candidates accumulate in a buffer of capacity ``T*n``
  (10 < T < 40); when the buffer fills, a cleaning phase randomly keeps
  ``n``.  This is the shape the generic sampling operator evaluates
  (admission predicate + cleaning), at the cost of a small deviation from
  exact uniformity between cleanings.
"""

from __future__ import annotations

import math
import random
from typing import Any, Generic, List, Optional, Sequence, TypeVar

from repro.errors import ReproError

T = TypeVar("T")


class ReservoirSampler(Generic[T]):
    """Vitter's Algorithm R: uniform fixed-size sample, unknown N."""

    def __init__(self, n: int, rng: Optional[random.Random] = None) -> None:
        if n <= 0:
            raise ReproError("reservoir size n must be positive")
        self.n = n
        self._rng = rng or random.Random()
        self._reservoir: List[T] = []
        self._seen = 0

    def offer(self, item: T) -> bool:
        """Present one stream item; returns True if it entered the reservoir."""
        self._seen += 1
        if len(self._reservoir) < self.n:
            self._reservoir.append(item)
            return True
        slot = self._rng.randrange(self._seen)
        if slot < self.n:
            self._reservoir[slot] = item
            return True
        return False

    def extend(self, items: Sequence[T]) -> None:
        for item in items:
            self.offer(item)

    @property
    def seen(self) -> int:
        return self._seen

    def sample(self) -> List[T]:
        """The current sample (a copy)."""
        return list(self._reservoir)


class SkipReservoirSampler(Generic[T]):
    """Vitter's Algorithm X: skip-count generation by sequential search.

    After the reservoir is full at time t, the number of records to skip,
    Φ, satisfies  P(Φ >= s) = prod_{i=1..s} (t - n + i) / (t + i); Φ is
    found by walking that product until it drops below a uniform draw.
    Expected work per *selected* record is O(t/n), giving total expected
    time O(n (1 + log(N/n))) — the optimal bound quoted in the paper.
    """

    def __init__(self, n: int, rng: Optional[random.Random] = None) -> None:
        if n <= 0:
            raise ReproError("reservoir size n must be positive")
        self.n = n
        self._rng = rng or random.Random()
        self._reservoir: List[T] = []
        self._seen = 0
        self._skip = 0  # records still to pass over before next candidate

    def _draw_skip(self) -> int:
        # Sequential search: find smallest s with cumulative product < u.
        t = self._seen
        n = self.n
        u = self._rng.random()
        s = 0
        quotient = 1.0
        numerator = t - n + 1
        denominator = t + 1
        while True:
            quotient *= numerator / denominator
            if quotient <= u:
                return s
            s += 1
            numerator += 1
            denominator += 1

    def offer(self, item: T) -> bool:
        self._seen += 1
        if len(self._reservoir) < self.n:
            self._reservoir.append(item)
            if len(self._reservoir) == self.n:
                self._skip = self._draw_skip()
            return True
        if self._skip > 0:
            self._skip -= 1
            return False
        slot = self._rng.randrange(self.n)
        self._reservoir[slot] = item
        self._skip = self._draw_skip()
        return True

    @property
    def seen(self) -> int:
        return self._seen

    def sample(self) -> List[T]:
        return list(self._reservoir)


class ConstantTimeSkipReservoirSampler(Generic[T]):
    """Constant-expected-time skip generation (Li's Algorithm L).

    Paper §4.1 highlights that "the fastest version of the algorithm
    generates Φ in constant time, on the average, by a modification of
    von Neumann's rejection-acceptance method" (Vitter's Algorithm Z),
    achieving the optimal O(n(1 + log(N/n))) total time.  This class
    provides that operating point via Li's Algorithm L (1994), the
    closed-form successor of Algorithm Z: instead of rejection sampling
    the skip distribution, it maintains ``W`` — the distribution of the
    reservoir's smallest "key" under the exponential-jumps formulation —
    and draws each skip directly as ``floor(log U / log(1 - W))``.  The
    output distribution is exactly uniform (same as Algorithms R/X/Z)
    with O(1) work per *selected* record.
    """

    def __init__(self, n: int, rng: Optional[random.Random] = None) -> None:
        if n <= 0:
            raise ReproError("reservoir size n must be positive")
        self.n = n
        self._rng = rng or random.Random()
        self._reservoir: List[T] = []
        self._seen = 0
        self._skip = 0
        self._w = math.exp(math.log(self._rng.random() or 1e-300) / n)

    def _draw_skip(self) -> int:
        u = self._rng.random() or 1e-300
        skip = math.floor(math.log(u) / math.log(1.0 - self._w))
        self._w *= math.exp(math.log(self._rng.random() or 1e-300) / self.n)
        return skip

    def offer(self, item: T) -> bool:
        self._seen += 1
        if len(self._reservoir) < self.n:
            self._reservoir.append(item)
            if len(self._reservoir) == self.n:
                self._skip = self._draw_skip()
            return True
        if self._skip > 0:
            self._skip -= 1
            return False
        self._reservoir[self._rng.randrange(self.n)] = item
        self._skip = self._draw_skip()
        return True

    @property
    def seen(self) -> int:
        return self._seen

    def sample(self) -> List[T]:
        return list(self._reservoir)


class WeightedReservoirSampler(Generic[T]):
    """Weighted reservoir sampling (Efraimidis–Spirakis A-Res).

    Each item with weight ``w`` draws a key ``u^(1/w)`` for ``u ~ U(0,1)``
    and the reservoir keeps the ``n`` largest keys; the result is a
    without-replacement sample where inclusion probabilities follow the
    successive weighted draws.  One pass, O(log n) per item, unknown N —
    the weighted counterpart of Algorithm R, included because weighted
    admission predicates slot straight into the sampling operator's WHERE
    clause.
    """

    def __init__(self, n: int, rng: Optional[random.Random] = None) -> None:
        if n <= 0:
            raise ReproError("reservoir size n must be positive")
        self.n = n
        self._rng = rng or random.Random()
        # min-heap of (key, counter, item)
        self._heap: List[tuple] = []
        self._counter = 0
        self._seen = 0

    def offer(self, item: T, weight: float) -> bool:
        """Present one weighted item; True if it entered the reservoir."""
        if weight <= 0:
            raise ReproError("weights must be positive")
        self._seen += 1
        u = self._rng.random() or 1e-300
        key = u ** (1.0 / weight)
        entry = (key, self._counter, item)
        self._counter += 1
        import heapq

        if len(self._heap) < self.n:
            heapq.heappush(self._heap, entry)
            return True
        if key > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    @property
    def seen(self) -> int:
        return self._seen

    def sample(self) -> List[T]:
        return [item for _key, _counter, item in self._heap]


class BufferedReservoirSampler(Generic[T]):
    """The paper's §4.1 buffered variant, as the sampling operator runs it.

    * admission: the first ``n`` records enter unconditionally; afterwards
      record t is admitted with probability ``n / t`` (the skip-generation
      admission rate);
    * cleaning: when the candidate buffer exceeds ``T * n``, the buffered
      candidates are *replayed* as deferred reservoir replacements — each
      candidate beyond the first ``n`` overwrites a uniformly random slot
      ("the index of the record being replaced is n*random()", §4.1) —
      and only the ``n`` slot occupants survive;
    * finalisation: the same replay runs once more at the end of the
      window if more than ``n`` candidates remain.

    Because cleaning replays the exact replacement process Algorithm X
    performs eagerly, the final sample is distributed identically to a
    textbook reservoir sample (exactly uniform); the tolerance ``T`` only
    trades buffer memory against cleaning frequency, which is why the
    paper bounds it to 10 < T < 40.
    """

    def __init__(
        self, n: int, tolerance: int = 20, rng: Optional[random.Random] = None
    ) -> None:
        if n <= 0:
            raise ReproError("reservoir size n must be positive")
        if tolerance <= 1:
            raise ReproError("tolerance T must exceed 1 (paper: 10 < T < 40)")
        self.n = n
        self.tolerance = tolerance
        self._rng = rng or random.Random()
        self._candidates: List[T] = []
        self._seen = 0
        self.cleanings = 0

    @property
    def capacity(self) -> int:
        return self.tolerance * self.n

    def offer(self, item: T) -> bool:
        self._seen += 1
        if self._seen <= self.n:
            self._candidates.append(item)
            return True
        if self._rng.random() < self.n / self._seen:
            self._candidates.append(item)
            if len(self._candidates) > self.capacity:
                self._clean()
            return True
        return False

    def _replay(self, candidates: List[T]) -> List[T]:
        """Apply the deferred replacements: candidate i > n overwrites a
        uniformly random slot, exactly as Algorithm X would have done at
        admission time."""
        slots = list(candidates[: self.n])
        for candidate in candidates[self.n:]:
            slots[self._rng.randrange(self.n)] = candidate
        return slots

    def _clean(self) -> None:
        self.cleanings += 1
        self._candidates = self._replay(self._candidates)

    @property
    def seen(self) -> int:
        return self._seen

    @property
    def candidate_count(self) -> int:
        return len(self._candidates)

    def sample(self) -> List[T]:
        """Final sample of (at most) n records."""
        if len(self._candidates) <= self.n:
            return list(self._candidates)
        return self._replay(self._candidates)
