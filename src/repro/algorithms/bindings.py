"""SFUN packs: the stateful-function families of the §6.6 example queries.

Each ``*_library`` factory returns a fresh
:class:`~repro.dsms.stateful.StatefulLibrary` whose state classes close
over the pack's configuration (γ, relaxation factor, tolerance, seeds...),
exactly as the paper's C implementations close over compiled-in constants.
Merge a pack into a :class:`~repro.dsms.runtime.Gigascope` with
``gs.use_stateful_library(...)`` and the corresponding query template
below runs unmodified.

Cleaning-pass protocol: the sampling operator calls ``*do_clean`` once
(the trigger), then ``*clean_with`` once per group of the supergroup.
The states exploit that contract: the trigger snapshots the live
population, and the per-group calls run a *sequential* subsampling walk
(credit-based for subset-sum, selection-sampling for reservoir) that
completes exactly when every group has been visited.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.dsms.stateful import StatefulLibrary, StatefulState
from repro.errors import ReproError
from repro.algorithms.subset_sum import adjust_threshold, solve_threshold


# ---------------------------------------------------------------------------
# Subset-sum sampling (paper §6.1, §6.5)
# ---------------------------------------------------------------------------


def subset_sum_library(
    z_init: float = 1.0,
    gamma: float = 2.0,
    relax_factor: float = 1.0,
    adjust_at_close: bool = True,
    adjustment: str = "solve",
    state_name: str = "subsetsum_sampling_state",
) -> StatefulLibrary:
    """SFUNs ``ssample``/``ssdo_clean``/``ssclean_with``/``ssfinal_clean``/
    ``ssthreshold`` sharing ``subsetsum_sampling_state``.

    ``relax_factor=1`` is the non-relaxed dynamic algorithm; the paper's
    relaxed fix uses ``relax_factor=10`` (§7.1).  ``adjust_at_close``
    reproduces the end-of-window threshold re-estimation whose interaction
    with output-time ``ssthreshold()`` evaluation causes the non-relaxed
    under-estimation (see DESIGN.md §4); disable it to ablate.
    ``adjustment`` picks the cleaning-phase re-threshold rule: "solve"
    (exact, the paper's stated goal) or "aggressive" (the paper's
    closed-form rule, which can overshoot when B ≈ M — see
    :func:`repro.algorithms.subset_sum.solve_threshold`).
    """
    if adjustment not in ("solve", "aggressive"):
        raise ReproError("adjustment must be 'solve' or 'aggressive'")
    library = StatefulLibrary()

    class SubsetSumState(StatefulState):
        """Threshold, credit counter, and live-sample bookkeeping."""

        def __init__(self, z: float = z_init) -> None:
            self.z = z
            self.z_prev = z
            self.target: Optional[int] = None
            self.credit = 0.0
            self.admitted = 0
            self.cleanings = 0
            #: Measures of currently live samples (one group per sample in
            #: the subset-sum query, thanks to the uts grouping).
            self.sizes: List[float] = []
            # cleaning-pass walk state
            self._expected = 0
            self._visited = 0
            self._survivors: Optional[List[float]] = None
            self._clean_credit = 0.0
            self._final_active = False

        @classmethod
        def initial(cls, old: Optional[StatefulState]) -> "SubsetSumState":
            if old is None:
                return cls()
            assert isinstance(old, SubsetSumState)
            # Window carryover: non-relaxed carries the adapted threshold;
            # relaxed assumes next-window load may be 1/f of the current.
            state = cls(max(old.z / relax_factor, 1e-9))
            state.target = old.target
            return state

        # -- helpers ---------------------------------------------------------

        def big_count(self) -> int:
            z = self.z
            return sum(1 for size in self.sizes if size > z)

        def rethreshold(self, live: int, goal: int) -> float:
            """New (never lower) threshold for a cleaning pass."""
            if adjustment == "solve":
                weights = [max(size, self.z) for size in self.sizes]
                return max(solve_threshold(weights, goal), self.z)
            return adjust_threshold(self.z, live, goal, self.big_count())

        def start_pass(self) -> None:
            self._expected = len(self.sizes)
            self._visited = 0
            self._survivors = []
            self._clean_credit = 0.0

        def walk(self, measure: float) -> bool:
            """One step of the sequential re-threshold subsample."""
            self._visited += 1
            weight = max(measure, self.z_prev)
            keep = False
            if weight > self.z:
                keep = True
            else:
                self._clean_credit += weight
                if self._clean_credit > self.z:
                    self._clean_credit -= self.z
                    keep = True
            if keep and self._survivors is not None:
                self._survivors.append(measure)
            if self._visited >= self._expected and self._survivors is not None:
                self.sizes = self._survivors
                self._survivors = None
            return keep

        def on_window_final(self) -> None:
            if self.target is None:
                return
            live = len(self.sizes)
            if live > self.target:
                # Final subsample: adjust z and resample via ssfinal_clean.
                self.z_prev = self.z
                self.z = self.rethreshold(live, self.target)
                self.start_pass()
                self._final_active = True
            else:
                self._final_active = False
                if adjust_at_close and live < self.target:
                    # Re-estimate z for the anticipated next window *before*
                    # output (ssthreshold() is evaluated last — paper §6.4).
                    self.z_prev = self.z
                    self.z = adjust_threshold(
                        self.z, live, self.target, self.big_count()
                    )

    @library.state(state_name)
    class _State(SubsetSumState):
        pass

    @library.sfun("ssample", state=state_name)
    def ssample(state: SubsetSumState, measure: float, target: int) -> bool:
        """Basic subset-sum admission with the current threshold."""
        if state.target is None:
            state.target = int(target)
        admitted = False
        if measure > state.z:
            admitted = True
        else:
            state.credit += measure
            if state.credit > state.z:
                state.credit -= state.z
                admitted = True
        if admitted:
            state.sizes.append(measure)
            state.admitted += 1
        return admitted

    @library.sfun("ssdo_clean", state=state_name)
    def ssdo_clean(state: SubsetSumState, live_groups: int) -> bool:
        """Trigger a cleaning phase when the live sample exceeds γ·N."""
        if state.target is None or live_groups <= gamma * state.target:
            return False
        state.z_prev = state.z
        state.z = state.rethreshold(live_groups, state.target)
        state.cleanings += 1
        state.start_pass()
        return True

    @library.sfun("ssclean_with", state=state_name)
    def ssclean_with(state: SubsetSumState, measure: float) -> bool:
        """Per-group resample under the adjusted threshold (keep = TRUE)."""
        return state.walk(measure)

    @library.sfun("ssfinal_clean", state=state_name)
    def ssfinal_clean(state: SubsetSumState, measure: float, live_groups: int) -> bool:
        """HAVING-time final subsample down to the target size."""
        if not state._final_active:
            return True
        return state.walk(measure)

    @library.sfun("ssthreshold", state=state_name)
    def ssthreshold(state: SubsetSumState) -> float:
        """The current threshold: each sample's adjusted weight floor."""
        return state.z

    return library


#: The paper's dynamic subset-sum query (§6.1), parameterised by window
#: length (seconds) and target sample count.
SUBSET_SUM_QUERY = """
SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
FROM TCP
WHERE ssample(len, {target}) = TRUE
GROUP BY time/{window} as tb, srcIP, destIP, uts
HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
CLEANING BY ssclean_with(sum(len)) = TRUE
"""


def subset_sum_query(window: int = 20, target: int = 1000, stream: str = "TCP") -> str:
    """The §6.1 dynamic subset-sum query against an arbitrary stream.

    ``stream`` may be a raw source or the name of a low-level prefilter
    query (the Fig 6 configuration).
    """
    return SUBSET_SUM_QUERY.format(window=window, target=target).replace(
        "FROM TCP", f"FROM {stream}"
    )


# ---------------------------------------------------------------------------
# Basic subset-sum sampling as a selection UDF (paper §7.2 baseline, Fig 6
# low-level prefilter)
# ---------------------------------------------------------------------------


def basic_subset_sum_library(
    state_name: str = "basic_subsetsum_state",
) -> StatefulLibrary:
    """A single SFUN ``ssbasic(x, z)`` running fixed-threshold subset-sum
    sampling inside a (stateful) selection operator.

    This is the paper's comparison point in Fig 5 ("basic subset-sum
    sampling using a user-defined function in a selection operator") and,
    with ``z`` set to a tenth of the dynamic query's threshold, the
    low-level prefilter of Fig 6.
    """
    library = StatefulLibrary()

    class BasicState(StatefulState):
        def __init__(self) -> None:
            self.credit = 0.0
            self.sampled = 0
            self.offered = 0

    @library.state(state_name)
    class _State(BasicState):
        pass

    @library.sfun("ssbasic", state=state_name)
    def ssbasic(state: BasicState, measure: float, z: float) -> bool:
        state.offered += 1
        if measure > z:
            state.sampled += 1
            return True
        state.credit += measure
        if state.credit > z:
            state.credit -= z
            state.sampled += 1
            return True
        return False

    return library


#: Basic subset-sum sampling as a plain selection (paper §7.2 baseline).
BASIC_SUBSET_SUM_QUERY = """
SELECT time, uts, srcIP, destIP, len, srcPort, destPort, protocol
FROM TCP
WHERE ssbasic(len, {z}) = TRUE
"""


#: Low-level basic-subset-sum prefilter (Fig 6): forwards sampled packets
#: with their lengths floored to the prefilter threshold, so a dynamic
#: subset-sum query stacked on top keeps an unbiased estimator (the
#: composed inclusion probability is min(1, len/z_dynamic)).
PREFILTER_QUERY = """
SELECT time, uts, srcIP, destIP, UMAX(len, {z}) as len,
       srcPort, destPort, protocol
FROM TCP
WHERE ssbasic(len, {z}) = TRUE
"""


# ---------------------------------------------------------------------------
# Reservoir sampling (paper §4.1, §6.6)
# ---------------------------------------------------------------------------


def reservoir_library(
    tolerance: int = 20,
    seed: int = 0xA5A5,
    state_name: str = "reservoir_sampling_state",
) -> StatefulLibrary:
    """SFUNs ``rsample``/``rsdo_clean``/``rsclean_with``/``rsfinal_clean``.

    Admission uses Vitter's skip generation (each record admitted with
    marginal probability n/t).  A cleaning pass *replays* the buffered
    candidates as the deferred reservoir replacements Algorithm X would
    have performed eagerly — candidate i > n overwrites a uniformly
    random slot — so the surviving n groups are an exactly uniform
    reservoir sample.  The operator visits groups in insertion (arrival)
    order, which is what makes the replay valid.
    """
    library = StatefulLibrary()

    class ReservoirState(StatefulState):
        def __init__(self) -> None:
            self.n: Optional[int] = None
            self.t = 0
            self.skip = 0
            self.candidates = 0
            self.cleanings = 0
            self.rng = random.Random(seed)
            # replay-walk state
            self._keep_indices: set = set()
            self._visit = 0
            self._final_active = False

        def draw_skip(self) -> int:
            """Sequential-search skip draw (Vitter's Algorithm X)."""
            assert self.n is not None
            t, n = self.t, self.n
            u = self.rng.random()
            s = 0
            quotient = 1.0
            numerator = t - n + 1
            denominator = t + 1
            while True:
                quotient *= numerator / denominator
                if quotient <= u:
                    return s
                s += 1
                numerator += 1
                denominator += 1

        def start_pass(self, keep: int) -> None:
            """Precompute which arrival indices survive the replay."""
            total = self.candidates
            keep = min(keep, total)
            slots = list(range(keep))
            for index in range(keep, total):
                slots[self.rng.randrange(keep)] = index
            self._keep_indices = set(slots)
            self._visit = 0

        def walk(self) -> bool:
            keep = self._visit in self._keep_indices
            self._visit += 1
            if not keep:
                self.candidates -= 1
            return keep

        def on_window_final(self) -> None:
            if self.n is not None and self.candidates > self.n:
                self.start_pass(self.n)
                self._final_active = True
            else:
                self._final_active = False
            # Windows are independent for reservoir sampling.
            self.t = 0
            self.skip = 0

    @library.state(state_name)
    class _State(ReservoirState):
        pass

    @library.sfun("rsample", state=state_name)
    def rsample(state: ReservoirState, n: int) -> bool:
        if state.n is None:
            state.n = int(n)
        state.t += 1
        if state.t <= state.n:
            state.candidates += 1
            if state.t == state.n:
                state.skip = state.draw_skip()
            return True
        if state.skip > 0:
            state.skip -= 1
            return False
        state.candidates += 1
        state.skip = state.draw_skip()
        return True

    @library.sfun("rsdo_clean", state=state_name)
    def rsdo_clean(state: ReservoirState, live_groups: int) -> bool:
        if state.n is None or live_groups <= tolerance * state.n:
            return False
        state.cleanings += 1
        state.candidates = live_groups
        state.start_pass(state.n)
        return True

    @library.sfun("rsclean_with", state=state_name)
    def rsclean_with(state: ReservoirState) -> bool:
        return state.walk()

    @library.sfun("rsfinal_clean", state=state_name)
    def rsfinal_clean(state: ReservoirState) -> bool:
        if not state._final_active:
            return True
        return state.walk()

    return library


#: The paper's reservoir query (§6.6): {target} random samples per window.
RESERVOIR_QUERY = """
SELECT tb, srcIP, destIP
FROM TCP
WHERE rsample({target}) = TRUE
GROUP BY time/{window} as tb, srcIP, destIP, uts
HAVING rsfinal_clean() = TRUE
CLEANING WHEN rsdo_clean(count_distinct$()) = TRUE
CLEANING BY rsclean_with() = TRUE
"""


# ---------------------------------------------------------------------------
# Heavy hitters (paper §4.2, §6.6)
# ---------------------------------------------------------------------------


def heavy_hitters_library(
    bucket_width: int = 100,
    state_name: str = "heavy_hitters_state",
) -> StatefulLibrary:
    """SFUNs ``local_count`` and ``current_bucket`` for the Manku–Motwani
    query.  ``local_count(N)`` counts tuples and fires every N-th call;
    ``current_bucket()`` reads the current bucket id without counting."""
    library = StatefulLibrary()

    class HeavyHitterState(StatefulState):
        def __init__(self) -> None:
            self.tuples = 0
            self.width = bucket_width

    @library.state(state_name)
    class _State(HeavyHitterState):
        pass

    @library.sfun("local_count", state=state_name)
    def local_count(state: HeavyHitterState, every: int) -> bool:
        state.tuples += 1
        return state.tuples % int(every) == 0

    @library.sfun("current_bucket", state=state_name)
    def current_bucket(state: HeavyHitterState) -> int:
        return state.tuples // state.width + 1

    return library


#: The paper's heavy-hitters query (§6.6).  Deviation: the paper prints
#: the CLEANING BY comparison as ``<``, which under §5 semantics (FALSE =
#: evict) would evict every frequent group; we use ``>=`` so that frequent
#: groups are the ones kept.  See DESIGN.md §4.
HEAVY_HITTERS_QUERY = """
SELECT tb, srcIP, sum(len), count(*)
FROM TCP
GROUP BY time/{window} as tb, srcIP
CLEANING WHEN local_count({bucket}) = TRUE
CLEANING BY count(*) >= current_bucket() - first(current_bucket())
"""


# ---------------------------------------------------------------------------
# Distinct sampling (Gibbons; the paper's reference [19]) — an extension
# demonstrating the operator hosting one more published algorithm.
# ---------------------------------------------------------------------------


def distinct_sampling_library(
    state_name: str = "distinct_sampling_state",
) -> StatefulLibrary:
    """SFUNs ``dsample``/``dsdo_clean``/``dsclean_with``/``dslevel``.

    Level-based distinct sampling: a value is admitted while its unit-
    interval hash is below ``2^-level``; the cleaning phase increments the
    level and re-applies the threshold to every group.  The group-by list
    must carry the hash as a variable (``HU(srcIP) as HXU``) so CLEANING BY
    can re-test it.
    """
    library = StatefulLibrary()

    class DistinctState(StatefulState):
        def __init__(self) -> None:
            self.level = 0
            self.cleanings = 0

        @property
        def threshold(self) -> float:
            return 2.0 ** (-self.level)

    @library.state(state_name)
    class _State(DistinctState):
        pass

    @library.sfun("dsample", state=state_name)
    def dsample(state: DistinctState, unit_hash: float) -> bool:
        return unit_hash < state.threshold

    @library.sfun("dsdo_clean", state=state_name)
    def dsdo_clean(state: DistinctState, live_groups: int, capacity: int) -> bool:
        if live_groups <= capacity:
            return False
        state.level += 1
        state.cleanings += 1
        return True

    @library.sfun("dsclean_with", state=state_name)
    def dsclean_with(state: DistinctState, unit_hash: float) -> bool:
        return unit_hash < state.threshold

    @library.sfun("dslevel", state=state_name)
    def dslevel(state: DistinctState) -> int:
        return state.level

    return library


#: Distinct sampling as an operator query: a uniform sample of the
#: distinct source addresses per window, with per-value multiplicities
#: (count(*)) and the final level for the 2^level scale-up.
DISTINCT_SAMPLING_QUERY = """
SELECT tb, srcIP, count(*), dslevel()
FROM TCP
WHERE dsample(HXU) = TRUE
GROUP BY time/{window} as tb, srcIP, HU(srcIP) as HXU
CLEANING WHEN dsdo_clean(count_distinct$(*), {capacity}) = TRUE
CLEANING BY dsclean_with(HXU) = TRUE
"""


#: The paper's min-hash query (§6.6): {k} min-hash values of destIP per
#: srcIP per window.  Uses no stateful functions — only the
#: ``Kth_smallest_value$`` and ``count_distinct$`` superaggregates.
MIN_HASH_QUERY = """
SELECT tb, srcIP, HX
FROM TCP
WHERE HX <= Kth_smallest_value$(HX, {k})
GROUP BY time/{window} as tb, srcIP, H(destIP) as HX
SUPERGROUP BY tb, srcIP
HAVING HX <= Kth_smallest_value$(HX, {k})
CLEANING WHEN count_distinct$(*) >= {k}
CLEANING BY HX <= Kth_smallest_value$(HX, {k})
"""
