"""Stream sampling algorithms (paper §4) and their operator bindings.

Each algorithm exists in two forms:

* a **standalone** library class, usable without the DSMS — these are the
  reference implementations the property tests exercise directly;
* an **SFUN pack** in :mod:`repro.algorithms.bindings` — a
  :class:`~repro.dsms.stateful.StatefulLibrary` exposing the stateful
  functions (``ssample``, ``rsample``, ``local_count``...) that the §6.6
  example queries call, so the same algorithm runs inside the generic
  sampling operator.
"""

from repro.algorithms.reservoir import (
    ReservoirSampler,
    SkipReservoirSampler,
    ConstantTimeSkipReservoirSampler,
    BufferedReservoirSampler,
    WeightedReservoirSampler,
)
from repro.algorithms.uniform import BernoulliSampler, DropSampler, EveryKthSampler
from repro.algorithms.priority import PrioritySample, PrioritySampler
from repro.algorithms.concise import ConciseSampler
from repro.algorithms.sticky import StickySampling
from repro.algorithms.estimators import (
    EstimatorReport,
    replicate,
    threshold_variance_bound,
    bernoulli_variance,
    subset_sum_variance_gap,
)
from repro.algorithms.heavy_hitters import LossyCounting, HeavyHitter
from repro.algorithms.minhash import MinHashSignature, KMVSketch, estimate_resemblance
from repro.algorithms.subset_sum import (
    ThresholdSampler,
    DynamicSubsetSumSampler,
    adjust_threshold,
    solve_threshold,
    estimate_sum,
)
from repro.algorithms.quantiles import GKQuantileSummary
from repro.algorithms.flow_sampling import (
    FlowEntry,
    NaiveFlowAggregator,
    SampledFlowAggregator,
    flow_key,
)
from repro.algorithms.distinct import DistinctSampler
from repro.algorithms.sample_hold import HeldFlow, SampleAndHold
from repro.algorithms.bindings import (
    subset_sum_library,
    basic_subset_sum_library,
    reservoir_library,
    heavy_hitters_library,
    distinct_sampling_library,
    subset_sum_query,
    SUBSET_SUM_QUERY,
    BASIC_SUBSET_SUM_QUERY,
    PREFILTER_QUERY,
    RESERVOIR_QUERY,
    HEAVY_HITTERS_QUERY,
    MIN_HASH_QUERY,
    DISTINCT_SAMPLING_QUERY,
)

__all__ = [
    "ReservoirSampler",
    "SkipReservoirSampler",
    "ConstantTimeSkipReservoirSampler",
    "BufferedReservoirSampler",
    "WeightedReservoirSampler",
    "BernoulliSampler",
    "DropSampler",
    "EveryKthSampler",
    "PrioritySample",
    "PrioritySampler",
    "ConciseSampler",
    "StickySampling",
    "EstimatorReport",
    "replicate",
    "threshold_variance_bound",
    "bernoulli_variance",
    "subset_sum_variance_gap",
    "LossyCounting",
    "HeavyHitter",
    "MinHashSignature",
    "KMVSketch",
    "estimate_resemblance",
    "ThresholdSampler",
    "DynamicSubsetSumSampler",
    "adjust_threshold",
    "solve_threshold",
    "estimate_sum",
    "GKQuantileSummary",
    "FlowEntry",
    "NaiveFlowAggregator",
    "SampledFlowAggregator",
    "flow_key",
    "DistinctSampler",
    "HeldFlow",
    "SampleAndHold",
    "distinct_sampling_library",
    "DISTINCT_SAMPLING_QUERY",
    "subset_sum_library",
    "basic_subset_sum_library",
    "reservoir_library",
    "heavy_hitters_library",
    "subset_sum_query",
    "SUBSET_SUM_QUERY",
    "BASIC_SUBSET_SUM_QUERY",
    "PREFILTER_QUERY",
    "RESERVOIR_QUERY",
    "HEAVY_HITTERS_QUERY",
    "MIN_HASH_QUERY",
]
