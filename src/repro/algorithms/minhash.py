"""Min-hash signatures and KMV sketches (paper §4.3; Broder 1997,
Datar–Muthukrishnan 2002).

Two equivalent constructions:

* :class:`MinHashSignature` — the minimum of ``n`` independent hash
  functions.  Resemblance ρ(A,B) = |A∩B| / |A∪B| is estimated as the
  fraction of matching signature positions.
* :class:`KMVSketch` — the ``k`` minimum values of a *single* hash
  function ("a substitute for the minimum of N hash functions is the N
  minimum values of a single hash function", paper §4.3).  This is the
  form the sampling operator evaluates via ``Kth_smallest_value$``:
  admit a hash value iff it is within the k smallest seen so far.  A KMV
  sketch doubles as a uniform sample of the *distinct* elements, which
  yields the rarity estimator of [Datar–Muthukrishnan].

Both use the deterministic 32-bit mixer from
:mod:`repro.dsms.functions`, so sketches built in different processes
agree.
"""

from __future__ import annotations

import bisect
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.dsms.functions import hash32

_MAX32 = 4294967295.0


class MinHashSignature:
    """Signature = elementwise minimum of n seeded hash functions."""

    def __init__(self, n: int = 100, base_seed: int = 0) -> None:
        if n <= 0:
            raise ReproError("signature length n must be positive")
        self.n = n
        self.base_seed = base_seed
        self._mins: List[int] = [2**32] * n

    def offer(self, element: int) -> None:
        base_seed = self.base_seed
        mins = self._mins
        for i in range(self.n):
            h = hash32(element, base_seed + i)
            if h < mins[i]:
                mins[i] = h

    def extend(self, elements: Iterable[int]) -> None:
        for element in elements:
            self.offer(element)

    def signature(self) -> Tuple[int, ...]:
        return tuple(self._mins)

    def resemblance(self, other: "MinHashSignature") -> float:
        """Estimated Jaccard resemblance against another signature."""
        if self.n != other.n or self.base_seed != other.base_seed:
            raise ReproError("signatures must share length and seed family")
        matches = sum(
            1 for a, b in zip(self._mins, other._mins) if a == b and a < 2**32
        )
        return matches / self.n


def estimate_resemblance(a: MinHashSignature, b: MinHashSignature) -> float:
    """Module-level convenience mirroring the paper's ρ̂(A,B) formula."""
    return a.resemblance(b)


class KMVSketch:
    """The k minimum hash values of a single hash function.

    Maintains a sorted list of the k smallest *distinct* hash values.
    Supports distinct-count estimation, resemblance estimation between two
    sketches, and rarity estimation (fraction of distinct elements that
    appear exactly once), for which per-value multiplicities are tracked.
    """

    def __init__(self, k: int = 100, seed: int = 0) -> None:
        if k <= 0:
            raise ReproError("k must be positive")
        self.k = k
        self.seed = seed
        self._values: List[int] = []  # sorted, at most k
        self._counts: Dict[int, int] = {}  # hash value -> multiplicity

    def offer(self, element: int) -> bool:
        """Process one element; True if its hash is (now) in the sketch."""
        h = hash32(element, self.seed)
        if h in self._counts:
            self._counts[h] += 1
            return True
        if len(self._values) < self.k:
            bisect.insort(self._values, h)
            self._counts[h] = 1
            return True
        if h >= self._values[-1]:
            return False
        evicted = self._values.pop()
        del self._counts[evicted]
        bisect.insort(self._values, h)
        self._counts[h] = 1
        return True

    def extend(self, elements: Iterable[int]) -> None:
        for element in elements:
            self.offer(element)

    @property
    def values(self) -> Tuple[int, ...]:
        return tuple(self._values)

    @property
    def kth_value(self) -> Optional[int]:
        """The current threshold (None until k distinct values are held)."""
        if len(self._values) < self.k:
            return None
        return self._values[-1]

    def distinct_estimate(self) -> float:
        """(k - 1) / v_k scaled to the hash range; exact count if under k."""
        if len(self._values) < self.k:
            return float(len(self._values))
        kth = self._values[-1]
        if kth == 0:
            return float(self.k)
        return (self.k - 1) * _MAX32 / kth

    def rarity_estimate(self) -> float:
        """Fraction of distinct elements appearing exactly once.

        The k minimum values are a uniform sample of the distinct
        elements, so the sample's singleton fraction estimates the
        population's (Datar–Muthukrishnan).
        """
        if not self._values:
            return 0.0
        singletons = sum(1 for h in self._values if self._counts[h] == 1)
        return singletons / len(self._values)

    def resemblance(self, other: "KMVSketch") -> float:
        """Estimated Jaccard resemblance from two single-hash sketches.

        Uses the standard k-minimum-values estimator: take the k smallest
        values of the union of the two sketches; the fraction of those
        present in both sketches estimates ρ.
        """
        if self.seed != other.seed:
            raise ReproError("KMV sketches must share the hash seed")
        k = min(self.k, other.k)
        union = sorted(set(self._values) | set(other._values))[:k]
        if not union:
            return 0.0
        mine, theirs = set(self._values), set(other._values)
        both = sum(1 for h in union if h in mine and h in theirs)
        return both / len(union)
