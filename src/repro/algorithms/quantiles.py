"""Greenwald–Khanna quantile summary (paper §8's contrast case).

The paper's conclusion singles out GK as the kind of *holistic* algorithm
the sampling operator deliberately does not cover: its COMPRESS phase
merges *adjacent* summary entries, i.e. samples communicate with each
other, while the sampling operator only supports communication between
individual samples and a shared summary state.  We implement GK as a
standalone class (usable as a UDAF) both to make that architectural
boundary concrete and because quantile queries appear throughout the
motivating workloads.

Guarantee: after n observations, ``query(q)`` returns a value whose rank
is within ``ε·n`` of ``q·n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional

from repro.errors import ReproError


@dataclass
class _Entry:
    """One summary tuple (v, g, Δ): g = rank gap, Δ = max rank error."""

    value: float
    g: int
    delta: int


class GKQuantileSummary:
    """ε-approximate online quantiles in O((1/ε) log(εn)) space."""

    def __init__(self, epsilon: float = 0.01) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ReproError("epsilon must be in (0, 1)")
        self.epsilon = epsilon
        self._entries: List[_Entry] = []
        self._count = 0
        #: COMPRESS every ~1/(2ε) insertions (the GK schedule).
        self._compress_every = max(1, int(1.0 / (2.0 * epsilon)))

    # -- updates ------------------------------------------------------------

    def offer(self, value: float) -> None:
        """Insert one observation."""
        self._count += 1
        entries = self._entries
        if not entries or value < entries[0].value:
            entries.insert(0, _Entry(value, 1, 0))
        elif value >= entries[-1].value:
            entries.append(_Entry(value, 1, 0))
        else:
            lo, hi = 0, len(entries) - 1
            while lo < hi:
                mid = (lo + hi) // 2
                if entries[mid].value <= value:
                    lo = mid + 1
                else:
                    hi = mid
            cap = int(2 * self.epsilon * self._count)
            entries.insert(lo, _Entry(value, 1, max(0, cap - 1)))
        if self._count % self._compress_every == 0:
            self._compress()

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.offer(value)

    def _compress(self) -> None:
        """Merge adjacent entries whose combined error stays within 2εn.

        This is the inter-sample communication the sampling operator
        cannot express (paper §8).
        """
        if len(self._entries) < 3:
            return
        cap = int(2 * self.epsilon * self._count)
        merged: List[_Entry] = [self._entries[0]]
        for entry in self._entries[1:-1]:
            candidate = merged[-1]
            if candidate is not self._entries[0] and (
                candidate.g + entry.g + entry.delta <= cap
            ):
                entry.g += candidate.g
                merged[-1] = entry
            else:
                merged.append(entry)
        merged.append(self._entries[-1])
        self._entries = merged

    # -- queries ---------------------------------------------------------------

    def query(self, quantile: float) -> float:
        """The ε-approximate ``quantile``-quantile (0 <= q <= 1)."""
        if not 0.0 <= quantile <= 1.0:
            raise ReproError("quantile must be in [0, 1]")
        if not self._entries:
            raise ReproError("summary is empty")
        target = quantile * self._count
        margin = self.epsilon * self._count
        rank = 0
        for entry in self._entries:
            rank += entry.g
            if rank + entry.delta >= target - margin and rank >= target - margin:
                return entry.value
        return self._entries[-1].value

    @property
    def count(self) -> int:
        return self._count

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def space_bound(self) -> float:
        """GK's asymptotic bound (up to constants): (1/ε)·log(εn) + O(1)."""
        if self._count == 0:
            return 1.0 / self.epsilon
        return (11.0 / (2.0 * self.epsilon)) * max(
            1.0, math.log(max(self.epsilon * self._count, math.e))
        )
