"""Sample-and-hold (Estan & Varghese, SIGCOMM 2002) — extension.

A byte-oriented heavy-hitter sampler popular in the same network-
measurement setting as subset-sum sampling: each byte of a packet
independently samples its flow with probability ``p``; once a flow is
sampled, *every* subsequent byte of that flow is counted exactly
("hold").  Compared to pure packet sampling this slashes the variance of
large-flow byte counts, because a big flow is almost surely caught early
and measured exactly thereafter.

Flows whose true volume is ``V`` are caught with probability
``1 - (1-p)^V ≈ 1 - exp(-pV)``, so choosing ``p = O(1/threshold)`` makes
flows above the threshold near-certain members of the flow table while
keeping the table small.

The estimator adds the expected missed prefix ``1/p`` to each held
count (the mean number of bytes before the first sampled byte).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.errors import ReproError


@dataclass
class HeldFlow:
    """One flow being counted exactly since it was sampled."""

    key: Hashable
    held_bytes: int
    packets: int

    def estimated_bytes(self, byte_probability: float) -> float:
        """Held bytes plus the expected missed prefix (1/p)."""
        return self.held_bytes + 1.0 / byte_probability


class SampleAndHold:
    """Byte-probability flow sampling with exact post-sample counting."""

    def __init__(
        self,
        byte_probability: float,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 < byte_probability < 1.0:
            raise ReproError("byte_probability must be in (0, 1)")
        self.byte_probability = byte_probability
        self._rng = rng or random.Random(0xE5)
        self._flows: Dict[Hashable, HeldFlow] = {}
        self.packets_seen = 0

    def offer(self, flow: Hashable, size: int) -> bool:
        """Process one packet; True if its flow is (now) held."""
        if size < 0:
            raise ReproError("packet size must be non-negative")
        self.packets_seen += 1
        entry = self._flows.get(flow)
        if entry is not None:
            entry.held_bytes += size
            entry.packets += 1
            return True
        # P(at least one of `size` bytes samples) = 1 - (1-p)^size.
        if self._rng.random() < 1.0 - (1.0 - self.byte_probability) ** size:
            self._flows[flow] = HeldFlow(flow, size, 1)
            return True
        return False

    def extend(self, packets: Iterable[Tuple[Hashable, int]]) -> None:
        for flow, size in packets:
            self.offer(flow, size)

    # -- results ---------------------------------------------------------------

    def held_flows(self) -> List[HeldFlow]:
        return list(self._flows.values())

    def estimated_bytes(self, flow: Hashable) -> float:
        """Byte estimate for one flow (0 if never sampled)."""
        entry = self._flows.get(flow)
        if entry is None:
            return 0.0
        return entry.estimated_bytes(self.byte_probability)

    def heavy_hitters(self, byte_threshold: float) -> List[HeldFlow]:
        """Held flows whose estimated volume exceeds the threshold."""
        return sorted(
            (
                entry
                for entry in self._flows.values()
                if entry.estimated_bytes(self.byte_probability) >= byte_threshold
            ),
            key=lambda entry: entry.held_bytes,
            reverse=True,
        )

    def catch_probability(self, volume: float) -> float:
        """P(a flow of ``volume`` bytes enters the table)."""
        return 1.0 - math.exp(-self.byte_probability * volume)

    @property
    def table_size(self) -> int:
        return len(self._flows)

    def reset(self) -> None:
        self._flows.clear()
        self.packets_seen = 0
