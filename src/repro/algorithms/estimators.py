"""Estimator statistics: bias/variance tooling for the sampling library.

The paper's §4.4 states that subset-sum sampling's "variance of the
subset sum over S is within a factor z" of optimal, and the whole point
of the sophisticated samplers is their variance advantage over uniform
sampling on heavy-tailed measures.  This module provides the measurement
kit the tests and the variance-comparison bench use:

* :func:`replicate` — run a sampler factory over many independent
  replications of a stream and collect one estimate per run;
* :class:`EstimatorReport` — bias, relative bias, standard error,
  relative RMSE of the collected estimates against the truth;
* :func:`threshold_variance_bound` — the analytic per-item variance of
  threshold sampling, ``Var[ŵ] = w·max(0, z−w)``, summed over a
  population (Duffield–Lund–Thorup), against which the empirical variance
  can be checked;
* :func:`subset_sum_variance_gap` — the analytic variance ratio between
  uniform (Bernoulli) sampling and threshold sampling at matched expected
  sample size, quantifying the paper's motivation.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence

from repro.errors import ReproError


@dataclass(frozen=True)
class EstimatorReport:
    """Summary of replicated estimates against a known truth."""

    truth: float
    estimates: tuple

    @property
    def mean(self) -> float:
        return statistics.fmean(self.estimates)

    @property
    def bias(self) -> float:
        return self.mean - self.truth

    @property
    def relative_bias(self) -> float:
        if self.truth == 0:
            raise ReproError("relative bias undefined for zero truth")
        return self.bias / self.truth

    @property
    def std_error(self) -> float:
        if len(self.estimates) < 2:
            return 0.0
        return statistics.stdev(self.estimates)

    @property
    def variance(self) -> float:
        if len(self.estimates) < 2:
            return 0.0
        return statistics.variance(self.estimates)

    @property
    def relative_rmse(self) -> float:
        if self.truth == 0:
            raise ReproError("relative RMSE undefined for zero truth")
        mse = statistics.fmean((e - self.truth) ** 2 for e in self.estimates)
        return math.sqrt(mse) / abs(self.truth)

    def __str__(self) -> str:
        return (
            f"truth={self.truth:,.0f} mean={self.mean:,.0f}"
            f" rel.bias={self.relative_bias:+.3%}"
            f" rel.rmse={self.relative_rmse:.3%}"
            f" (n={len(self.estimates)})"
        )


def replicate(
    estimate_fn: Callable[[int], float],
    truth: float,
    replications: int = 30,
) -> EstimatorReport:
    """Collect ``replications`` estimates; ``estimate_fn(seed)`` must be a
    full independent run of the sampler returning one estimate."""
    if replications <= 0:
        raise ReproError("replications must be positive")
    estimates = tuple(estimate_fn(seed) for seed in range(replications))
    return EstimatorReport(truth=truth, estimates=estimates)


def threshold_variance_bound(weights: Iterable[float], z: float) -> float:
    """Analytic variance of the threshold-sampling total estimator.

    For inclusion probability ``min(1, w/z)`` and HT weight ``max(w, z)``:
    ``Var = Σ w·max(0, z − w)`` — zero for items above the threshold,
    at most ``z`` per unit of small-item mass.
    """
    if z <= 0:
        raise ReproError("threshold z must be positive")
    return sum(w * max(0.0, z - w) for w in weights)


def bernoulli_variance(weights: Iterable[float], p: float) -> float:
    """Analytic variance of inverse-probability-weighted Bernoulli
    sampling of the total: ``Σ w² (1−p)/p``."""
    if not 0.0 < p <= 1.0:
        raise ReproError("p must be in (0, 1]")
    return sum(w * w for w in weights) * (1.0 - p) / p


def subset_sum_variance_gap(weights: Sequence[float], sample_size: int) -> float:
    """Variance ratio (Bernoulli / threshold) at matched expected sample
    size — how much uniform sampling loses on this weight population.

    The matched Bernoulli rate is ``k/n``; the matched threshold ``z``
    solves ``Σ min(1, w/z) = k`` (reusing the cleaning-phase solver).
    Heavy-tailed weights push this ratio far above 1, which is the
    paper's §4.4 motivation in one number.
    """
    from repro.algorithms.subset_sum import solve_threshold

    n = len(weights)
    if n == 0:
        raise ReproError("weights must be non-empty")
    if not 0 < sample_size <= n:
        raise ReproError("need 0 < sample_size <= len(weights)")
    if sample_size == n:
        return 1.0
    p = sample_size / n
    z = solve_threshold(list(weights), sample_size)
    threshold_var = threshold_variance_bound(weights, z) if z > 0 else 0.0
    bernoulli_var = bernoulli_variance(weights, p)
    if threshold_var == 0.0:
        return math.inf if bernoulli_var > 0 else 1.0
    return bernoulli_var / threshold_var
