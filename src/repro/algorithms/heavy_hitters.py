"""Manku–Motwani lossy counting for heavy hitters (paper §4.2; VLDB 2002).

The stream is conceptually divided into buckets of width ``w = ceil(1/ε)``.
Each tracked element carries an entry ``(e, f, Δ)``: estimated frequency
``f`` and maximum undercount ``Δ``.  At every bucket boundary, entries
with ``f + Δ <= b_current`` are pruned.  Querying with support ``s``
returns all elements with ``f >= (s - ε) N``.

Guarantees (tested in ``tests/algorithms/test_heavy_hitters.py``):

* every element with true frequency ``>= s N`` is returned (no false
  negatives);
* no element with true frequency ``< (s - ε) N`` is returned;
* estimated frequencies undercount by at most ``ε N``;
* at most ``(1/ε) log(ε N)`` entries are retained.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class HeavyHitter:
    """One query result: the element and its estimated frequency bounds."""

    element: Hashable
    estimated_frequency: int
    max_error: int

    @property
    def frequency_lower_bound(self) -> int:
        return self.estimated_frequency

    @property
    def frequency_upper_bound(self) -> int:
        return self.estimated_frequency + self.max_error


class LossyCounting:
    """The Manku–Motwani frequency-count sketch."""

    def __init__(self, epsilon: float) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ReproError("epsilon must be in (0, 1)")
        self.epsilon = epsilon
        self.bucket_width = math.ceil(1.0 / epsilon)
        self._entries: Dict[Hashable, Tuple[int, int]] = {}  # e -> (f, delta)
        self._count = 0
        self.prunes = 0

    @property
    def stream_length(self) -> int:
        return self._count

    @property
    def current_bucket(self) -> int:
        return math.ceil(self._count / self.bucket_width) if self._count else 1

    def offer(self, element: Hashable) -> None:
        """Process one stream element."""
        self._count += 1
        entry = self._entries.get(element)
        if entry is not None:
            frequency, delta = entry
            self._entries[element] = (frequency + 1, delta)
        else:
            self._entries[element] = (1, self.current_bucket - 1)
        if self._count % self.bucket_width == 0:
            self._prune()

    def extend(self, elements: Iterable[Hashable]) -> None:
        for element in elements:
            self.offer(element)

    def _prune(self) -> None:
        """Delete entries with f + Δ <= b_current (the bucket-boundary rule)."""
        self.prunes += 1
        boundary = self.current_bucket
        self._entries = {
            element: (frequency, delta)
            for element, (frequency, delta) in self._entries.items()
            if frequency + delta > boundary
        }

    def query(self, support: float) -> List[HeavyHitter]:
        """Elements with estimated frequency >= (support - ε) * N."""
        if not 0.0 < support <= 1.0:
            raise ReproError("support must be in (0, 1]")
        if support < self.epsilon:
            raise ReproError(
                f"support {support} below epsilon {self.epsilon}: results would"
                " be meaningless"
            )
        threshold = (support - self.epsilon) * self._count
        hitters = [
            HeavyHitter(element, frequency, delta)
            for element, (frequency, delta) in self._entries.items()
            if frequency >= threshold
        ]
        hitters.sort(key=lambda h: h.estimated_frequency, reverse=True)
        return hitters

    def estimated_frequency(self, element: Hashable) -> int:
        """Lower-bound frequency estimate for one element (0 if untracked)."""
        entry = self._entries.get(element)
        return entry[0] if entry is not None else 0

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def space_bound(self) -> float:
        """The paper's space bound: (1/ε) log(ε N)."""
        if self._count == 0:
            return 1.0 / self.epsilon
        return (1.0 / self.epsilon) * max(1.0, math.log(self.epsilon * self._count))
