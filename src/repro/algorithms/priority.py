"""Priority sampling (Duffield, Lund, Thorup; 2004).

The successor of the paper's subset-sum (threshold) sampling, from the
same authors: draw one fixed-size weighted sample supporting unbiased
subset-sum estimation, *without* threshold adaptation.

Each item with weight ``w`` draws a uniform ``u ∈ (0, 1]`` and receives
priority ``q = w / u``.  The sample is the ``k`` items of highest
priority; let ``τ`` be the (k+1)-st highest priority.  Each sampled
item's estimator weight is ``max(w, τ)``, which is unbiased for every
subset-sum (Duffield et al. 2007 prove near-optimal variance).

Inside a stream operator this is attractive because it needs *no
cleaning heuristics*: a bounded heap replaces the γ-triggered
re-thresholding of dynamic subset-sum sampling.  The variance-comparison
bench pits the two (plus uniform sampling) against each other.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, List, Optional, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class PrioritySample:
    """One sampled item with its weight and draw priority."""

    key: Hashable
    weight: float
    priority: float


class PrioritySampler:
    """Fixed-size weighted sample via the priority method."""

    def __init__(self, k: int, rng: Optional[random.Random] = None) -> None:
        if k <= 0:
            raise ReproError("sample size k must be positive")
        self.k = k
        self._rng = rng or random.Random(0x9107)
        # Min-heap of (priority, counter, item); holds k+1 entries so tau
        # (the k+1-st priority) is always on hand.
        self._heap: List[Tuple[float, int, PrioritySample]] = []
        self._counter = 0
        self.offered = 0

    def offer(self, weight: float, key: Optional[Hashable] = None) -> bool:
        """Present one weighted item; True if it currently sits in the
        top-(k+1) priority heap (it may still be displaced later)."""
        if weight <= 0:
            raise ReproError("weights must be positive")
        self.offered += 1
        u = self._rng.random() or 1e-300  # avoid a zero draw
        priority = weight / u
        if key is None:
            key = self._counter
        item = PrioritySample(key, weight, priority)
        entry = (priority, self._counter, item)
        self._counter += 1
        if len(self._heap) <= self.k:
            heapq.heappush(self._heap, entry)
            return True
        if priority > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def extend(self, weights: Iterable[float]) -> None:
        for weight in weights:
            self.offer(weight)

    # -- results ---------------------------------------------------------------

    @property
    def tau(self) -> float:
        """The (k+1)-st highest priority (0 while fewer than k+1 items)."""
        if len(self._heap) <= self.k:
            return 0.0
        return self._heap[0][0]

    def sample(self) -> List[PrioritySample]:
        """The k highest-priority items (all items if fewer than k seen)."""
        entries = sorted(self._heap, reverse=True)[: self.k]
        return [item for _priority, _counter, item in entries]

    def estimate_sum(self, predicate=None) -> float:
        """Unbiased subset-sum estimate: Σ max(w, τ) over matching samples."""
        tau = self.tau
        total = 0.0
        for item in self.sample():
            if predicate is None or predicate(item):
                total += max(item.weight, tau)
        return total
