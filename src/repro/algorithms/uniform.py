"""Uniform row sampling: the baselines other DSMSs ship.

Paper §1/§2: "Many of them support random sampling, including the DROP
operator of Aurora, the SAMPLE keyword in STREAM, and sampling functions
in Gigascope.  Still, these are uniform sampling operators."  This module
provides those baselines so the sophisticated samplers have something to
be compared against:

* :class:`BernoulliSampler` — keep each tuple independently with
  probability p (STREAM's ``SAMPLE``);
* :class:`DropSampler` — Aurora's load-shedding ``DROP``: pass 1 of
  every k tuples deterministically (a systematic sample);
* :class:`EveryKthSampler` is an alias of the same mechanism with
  phase control, kept separate for query readability.

Both support sum estimation by inverse-probability weighting, which the
tests compare against subset-sum sampling to demonstrate the variance gap
on heavy-tailed measures (the reason the networking community built
subset-sum sampling at all).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Tuple

from repro.errors import ReproError


class BernoulliSampler:
    """Independent coin-flip sampling (STREAM's SAMPLE keyword)."""

    def __init__(self, probability: float, rng: Optional[random.Random] = None) -> None:
        if not 0.0 < probability <= 1.0:
            raise ReproError("sampling probability must be in (0, 1]")
        self.probability = probability
        self._rng = rng or random.Random(0xB0B)
        self.offered = 0
        self.sampled = 0

    def offer(self, _item: object = None) -> bool:
        self.offered += 1
        if self._rng.random() < self.probability:
            self.sampled += 1
            return True
        return False

    def weight(self) -> float:
        """Inverse-probability weight of every sampled tuple."""
        return 1.0 / self.probability

    def estimate_sum(self, sampled_measures: Iterable[float]) -> float:
        """Horvitz–Thompson estimate of the total from sampled measures."""
        return sum(sampled_measures) * self.weight()


class DropSampler:
    """Aurora-style DROP: deterministically keep 1 in every k tuples.

    A systematic sample: zero randomness, perfectly smooth output rate —
    which is why load shedders like it — but correlated with any
    periodicity in the input.
    """

    def __init__(self, keep_one_in: int, phase: int = 0) -> None:
        if keep_one_in <= 0:
            raise ReproError("keep_one_in must be positive")
        if not 0 <= phase < keep_one_in:
            raise ReproError("phase must be in [0, keep_one_in)")
        self.keep_one_in = keep_one_in
        self.phase = phase
        self._counter = 0
        self.sampled = 0

    def offer(self, _item: object = None) -> bool:
        keep = self._counter % self.keep_one_in == self.phase
        self._counter += 1
        if keep:
            self.sampled += 1
        return keep

    def weight(self) -> float:
        return float(self.keep_one_in)

    def estimate_sum(self, sampled_measures: Iterable[float]) -> float:
        return sum(sampled_measures) * self.weight()


#: Readability alias: `EveryKthSampler(k, phase)` reads better in tests
#: that exercise the systematic-sampling phase behaviour.
EveryKthSampler = DropSampler
