"""Sticky sampling (Manku & Motwani, VLDB 2002 — same paper as §4.2).

The probabilistic sibling of lossy counting: entries are *sampled into*
the table with rate ``1/r`` and, once present, counted exactly (sticky).
The rate halves (``r`` doubles) on a fixed schedule of ``t = (1/ε)·
log(1/(s·δ))`` arrivals per epoch; at each rate change every existing
entry is "re-flipped": its count is reduced by a geometric number of
failed coin tosses, and entries reaching zero are dropped.

Guarantees (with probability 1−δ): every element with frequency ≥ sN is
reported, none below (s−ε)N is, and estimates undercount by at most εN.
Expected space is ``(2/ε)·log(1/(sδ))`` — independent of N, which is the
advantage over lossy counting's log-growing table.

This is the example the paper's thesis predicts: a new sampling algorithm
whose admit / trigger / clean structure drops straight into the generic
operator (see ``examples/prototype_new_algorithm.py``).
"""

from __future__ import annotations

import math
import random
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.errors import ReproError
from repro.algorithms.heavy_hitters import HeavyHitter


class StickySampling:
    """The Manku–Motwani sticky-sampling frequency sketch."""

    def __init__(
        self,
        support: float,
        epsilon: Optional[float] = None,
        delta: float = 0.01,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 < support <= 1.0:
            raise ReproError("support must be in (0, 1]")
        epsilon = epsilon if epsilon is not None else support / 10.0
        if not 0.0 < epsilon < support:
            raise ReproError("need 0 < epsilon < support")
        if not 0.0 < delta < 1.0:
            raise ReproError("delta must be in (0, 1)")
        self.support = support
        self.epsilon = epsilon
        self.delta = delta
        self._rng = rng or random.Random(0x571C)
        #: Epoch length: t = (1/ε) log(1/(s δ)) arrivals.
        self.t = int(math.ceil((1.0 / epsilon) * math.log(1.0 / (support * delta))))
        self._counts: Dict[Hashable, int] = {}
        self._rate = 1  # r: sample new entries with probability 1/r
        self._count = 0
        self.rate_changes = 0

    @property
    def stream_length(self) -> int:
        return self._count

    @property
    def sampling_rate(self) -> int:
        return self._rate

    # -- stream path -----------------------------------------------------------

    def offer(self, element: Hashable) -> None:
        self._count += 1
        self._maybe_advance_epoch()
        entry = self._counts.get(element)
        if entry is not None:
            self._counts[element] = entry + 1
            return
        if self._rate == 1 or self._rng.random() < 1.0 / self._rate:
            self._counts[element] = 1

    def extend(self, elements: Iterable[Hashable]) -> None:
        for element in elements:
            self.offer(element)

    def _maybe_advance_epoch(self) -> None:
        """Epochs: first 2t arrivals at r=1, then 2t at r=2, 4t at r=4, ...

        (Manku–Motwani's schedule; each epoch doubles r.)"""
        boundary = 2 * self.t * self._rate
        if self._count <= boundary:
            return
        self._rate *= 2
        self.rate_changes += 1
        self._reflip()

    def _reflip(self) -> None:
        """Diminish each entry by a geometric number of failed tosses.

        For each entry, repeatedly toss an unbiased coin and decrement its
        count for every tail; stop at the first head.  Entries hitting
        zero are dropped.  This makes the table look as if it had been
        sampled at the new, lower rate all along.
        """
        survivors: Dict[Hashable, int] = {}
        for element, count in self._counts.items():
            while count > 0 and self._rng.random() < 0.5:
                count -= 1
            if count > 0:
                survivors[element] = count
        self._counts = survivors

    # -- queries ---------------------------------------------------------------------

    def query(self) -> List[HeavyHitter]:
        """Elements with estimated frequency >= (support - ε) N."""
        threshold = (self.support - self.epsilon) * self._count
        hitters = [
            HeavyHitter(element, count, int(self.epsilon * self._count))
            for element, count in self._counts.items()
            if count >= threshold
        ]
        hitters.sort(key=lambda h: h.estimated_frequency, reverse=True)
        return hitters

    def estimated_frequency(self, element: Hashable) -> int:
        return self._counts.get(element, 0)

    @property
    def entry_count(self) -> int:
        return len(self._counts)

    def expected_space(self) -> float:
        """The paper's bound: 2/ε · log(1/(sδ)) expected entries."""
        return (2.0 / self.epsilon) * math.log(1.0 / (self.support * self.delta))
