"""Distinct sampling (Gibbons, VLDB 2001 — the paper's reference [19]).

Maintains a uniform sample of the *distinct* values in a stream — the
problem the paper's introduction singles out as hard ("even uniform
sampling of the distinct items in the data stream is tricky", §1) —
using level-based hash thresholding:

* every value is hashed to the unit interval with the deterministic
  32-bit mixer;
* the sample retains the values whose hash falls below ``2^-level``;
* when the sample exceeds its capacity, ``level`` increments and the
  sample is subsampled by the same rule (a *cleaning phase* in the
  sampling-operator vocabulary — the SFUN pack in
  :mod:`repro.algorithms.bindings_distinct` runs this exact algorithm
  inside the generic operator).

The retained values are a uniform random sample of the distinct values
(each distinct value survives iff its hash, fixed once, is under the
threshold), so:

* distinct-count estimate: ``len(sample) * 2^level``;
* any predicate's distinct-selectivity can be estimated from the sample
  ("event reports" in Gibbons' terminology).

Multiplicity counts ride along with each retained value, enabling the
rarity estimator as in the min-hash module.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.errors import ReproError
from repro.dsms.functions import hash_to_unit


class DistinctSampler:
    """Level-based uniform sample over distinct stream values."""

    def __init__(self, capacity: int = 100, seed: int = 0) -> None:
        if capacity <= 0:
            raise ReproError("capacity must be positive")
        self.capacity = capacity
        self.seed = seed
        self.level = 0
        self._sample: Dict[int, Tuple[Hashable, int]] = {}  # value -> (value, count)
        self.cleanings = 0

    # -- stream path ----------------------------------------------------------

    @property
    def threshold(self) -> float:
        return 2.0 ** (-self.level)

    def _hash(self, value: Hashable) -> float:
        """Deterministic unit-interval hash (int values use the 32-bit
        mixer directly; everything else goes through its repr)."""
        if isinstance(value, int):
            return hash_to_unit(value, self.seed)
        return hash_to_unit(
            sum(ord(c) * 31 ** i for i, c in enumerate(repr(value)[:16])) & 0xFFFFFFFF,
            self.seed,
        )

    def offer(self, value: Hashable) -> bool:
        """Process one stream element; True if it is (now) in the sample."""
        h = self._hash(value)
        if h >= self.threshold:
            return False
        entry = self._sample.get(value)
        if entry is not None:
            self._sample[value] = (value, entry[1] + 1)
            return True
        self._sample[value] = (value, 1)
        if len(self._sample) > self.capacity:
            self._clean()
        return value in self._sample

    def extend(self, values: Iterable[Hashable]) -> None:
        for value in values:
            self.offer(value)

    def _clean(self) -> None:
        """Increment the level and drop values above the new threshold."""
        while len(self._sample) > self.capacity:
            self.level += 1
            self.cleanings += 1
            threshold = self.threshold
            self._sample = {
                value: entry
                for value, entry in self._sample.items()
                if self._hash(value) < threshold
            }
            if threshold == 0.0:  # pragma: no cover - float underflow guard
                raise ReproError("distinct sampler level underflowed")

    # -- estimators ---------------------------------------------------------------

    def sample(self) -> List[Hashable]:
        """The retained distinct values (uniform over all distinct values)."""
        return [value for value, _count in self._sample.values()]

    def multiplicity(self, value: Hashable) -> int:
        """Occurrences seen for a retained value (0 if not retained)."""
        entry = self._sample.get(value)
        return entry[1] if entry is not None else 0

    def distinct_estimate(self) -> float:
        """Estimated number of distinct values in the stream."""
        return len(self._sample) * (2.0 ** self.level)

    def rarity_estimate(self) -> float:
        """Estimated fraction of distinct values appearing exactly once."""
        if not self._sample:
            return 0.0
        singletons = sum(1 for _v, count in self._sample.values() if count == 1)
        return singletons / len(self._sample)

    def selectivity_estimate(self, predicate) -> float:
        """Estimated fraction of *distinct* values satisfying ``predicate``."""
        if not self._sample:
            return 0.0
        matching = sum(1 for value, _count in self._sample.values() if predicate(value))
        return matching / len(self._sample)

    @property
    def sample_size(self) -> int:
        return len(self._sample)
