"""Subset-sum (threshold) sampling (paper §4.4; Duffield–Lund–Thorup).

Given tuples ``(C, x)`` with measure ``x``, the sample supports unbiased
estimation of ``sum(x)`` over any color subset: each tuple is sampled
with probability ``min(1, x/z)`` and a sampled tuple's adjusted weight is
``max(x, z)``.  Large tuples are always kept; small tuples are sampled by
a running *credit counter*: add ``x`` to the counter, and whenever it
exceeds ``z`` subtract ``z`` and keep the tuple.

Three layers:

* :class:`ThresholdSampler` — the basic, fixed-``z`` algorithm (the
  paper's selection-operator baseline and the low-level prefilter of
  Fig 6);
* :func:`adjust_threshold` — the paper's "aggressive" z-adjustment rule;
* :class:`DynamicSubsetSumSampler` — fixed target sample size ``N``:
  cleaning phases re-threshold and subsample whenever the live sample
  exceeds ``γ·N``, a final cleaning enforces ``|S| ≈ N`` at the window
  border, and the threshold carries over between windows.  The *relaxed*
  variant (paper §7.1 — the re-engineering the paper contributes)
  initialises the next window's threshold at ``z/f`` (default ``f=10``),
  assuming the next window's load may be as little as ``1/f`` of the
  current one; upward adaptation is cheap (cleaning phases) while
  downward adaptation within a window is impossible, which is exactly why
  the non-relaxed version under-samples after load drops.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.errors import ReproError


@dataclass
class SampledTuple:
    """One sample: its key, original measure, and current adjusted floor.

    The unbiased estimate of the tuple's contribution to any sum is
    ``max(measure, z_final)``, where ``z_final`` is the threshold in force
    when the window closed.
    """

    key: Hashable
    measure: float
    #: Threshold the tuple has most recently survived (its weight floor).
    floor: float

    def adjusted_weight(self, z_final: float) -> float:
        return max(self.measure, z_final)


class ThresholdSampler:
    """Basic subset-sum sampling with a fixed threshold ``z``.

    Deterministic-credit variant from paper §4.4: tuples with ``x > z``
    are always sampled; smaller tuples accumulate in a credit counter and
    one is emitted each time the counter crosses ``z``.
    """

    def __init__(self, z: float) -> None:
        if z <= 0:
            raise ReproError("threshold z must be positive")
        self.z = z
        self._credit = 0.0
        self.offered = 0
        self.sampled = 0

    def offer(self, measure: float) -> bool:
        """True iff the tuple should be sampled."""
        if measure < 0:
            raise ReproError("measures must be non-negative")
        self.offered += 1
        if measure > self.z:
            self.sampled += 1
            return True
        self._credit += measure
        if self._credit > self.z:
            self._credit -= self.z
            self.sampled += 1
            return True
        return False

    def adjusted_weight(self, measure: float) -> float:
        """Estimator weight of a sampled tuple: max(x, z)."""
        return max(measure, self.z)


def adjust_threshold(
    z_old: float, live: int, target: int, big: int
) -> float:
    """The paper's aggressive z-adjustment.

    ``live`` = |S| (samples currently held), ``target`` = M (desired),
    ``big`` = B (live samples whose size exceeds the threshold).

    * ``0 <= |S| < M``:  z' = z · (|S| / M)  — too few samples, lower z;
    * ``|S| >= M``:      z' = z · max(1, (|S| − B)/(M − B)) — raise z far
      enough that the expected survivors number M.  When ``B >= M``
      (the formula's denominator is non-positive: even the always-sampled
      big tuples exceed the target) we fall back to the proportional rule
      z' = z · |S|/M, which keeps adjustment monotone and well-defined.
    """
    if z_old <= 0:
        raise ReproError("threshold z must be positive")
    if target <= 0:
        raise ReproError("target sample size must be positive")
    if live < 0 or big < 0 or big > live:
        raise ReproError("need 0 <= big <= live")
    if live < target:
        if live == 0:
            return z_old / 2.0
        return z_old * (live / target)
    if big >= target:
        return z_old * (live / target)
    return z_old * max(1.0, (live - big) / (target - big))


def solve_threshold(weights: List[float], target: int, z_min: float = 0.0) -> float:
    """The threshold z at which ``weights`` yield ``target`` expected samples.

    Solves  ``#{w > z} + (Σ_{w<=z} w) / z  =  target``  exactly — the
    paper's stated goal for the cleaning phase ("estimate a new value of z
    which will result in N tuples", §4.4).  The paper's closed-form
    aggressive rule (:func:`adjust_threshold`) assumes samples that are
    big under the old threshold stay big under the new one; with packet
    sizes capped at the MTU that assumption fails once z crosses ~1500 B
    and the rule can overshoot by orders of magnitude (B ≈ M makes its
    denominator vanish).  See DESIGN.md §4.

    Runs in O(n log n); returns at least ``z_min``.
    """
    if target <= 0:
        raise ReproError("target must be positive")
    n = len(weights)
    if n <= target:
        return max(z_min, 0.0)
    ordered = sorted(weights, reverse=True)
    # suffix[k] = sum of ordered[k:]
    suffix = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix[i] = suffix[i + 1] + ordered[i]
    for k in range(0, target):
        z = suffix[k] / (target - k)
        upper = ordered[k - 1] if k > 0 else float("inf")
        if ordered[k] <= z < upper:
            return max(z, z_min)
    # No consistent breakpoint (ties at the boundary): fall back to the
    # all-small solution, which can only under-shoot the target slightly.
    return max(suffix[0] / target, z_min)


@dataclass
class WindowReport:
    """What one closed window produced (feeds Figs 2–4)."""

    samples: List[SampledTuple]
    z_final: float
    cleaning_phases: int
    admitted: int
    estimated_sum: float


class DynamicSubsetSumSampler:
    """Dynamic subset-sum sampling with fixed target size and windows.

    Standalone counterpart of the operator-hosted version: drives the same
    state machine (admission / cleaning / final cleaning / carryover)
    against an in-memory dict of samples.  ``relax_factor=1`` is the
    non-relaxed algorithm; the paper's fix uses ``relax_factor=10``.
    """

    def __init__(
        self,
        target: int,
        z_init: float = 1.0,
        gamma: float = 2.0,
        relax_factor: float = 1.0,
        adjust_at_close: bool = True,
        adjustment: str = "solve",
        rng: Optional[random.Random] = None,
    ) -> None:
        if target <= 0:
            raise ReproError("target sample size must be positive")
        if gamma <= 1.0:
            raise ReproError("gamma must exceed 1 (cleaning needs headroom)")
        if relax_factor < 1.0:
            raise ReproError("relax_factor must be >= 1 (1 = non-relaxed)")
        if z_init <= 0:
            raise ReproError("z_init must be positive")
        self.target = target
        self.gamma = gamma
        self.relax_factor = relax_factor
        #: Apply the end-of-window threshold re-estimation ("adjusting its
        #: value to obtain an estimated N samples during the new time
        #: window", paper §4.4) *before* the output threshold is read.
        #: Paper §6.4 evaluates SELECT-clause stateful functions last, so
        #: ``ssthreshold()`` sees the adjusted value — which is what makes
        #: under-sampled non-relaxed windows grossly *under-estimate*
        #: (Fig 2).  Set False to ablate the artifact (unbiased estimator).
        self.adjust_at_close = adjust_at_close
        if adjustment not in ("solve", "aggressive"):
            raise ReproError("adjustment must be 'solve' or 'aggressive'")
        #: Upward re-thresholding rule for cleaning phases: "solve" finds z
        #: exactly (the paper's stated goal); "aggressive" is the paper's
        #: closed-form rule, which can overshoot when B ≈ M (see
        #: solve_threshold's docstring and the ablation bench).
        self.adjustment = adjustment
        self.z = z_init
        self._rng = rng or random.Random(0x55AA)
        self._credit = 0.0
        self._samples: Dict[Hashable, SampledTuple] = {}
        self._next_key = 0
        self.cleaning_phases = 0
        self.admitted = 0

    # -- per-tuple path ---------------------------------------------------------

    def offer(self, measure: float, key: Optional[Hashable] = None) -> bool:
        """Process one tuple; True if it was admitted to the sample."""
        if measure < 0:
            raise ReproError("measures must be non-negative")
        admitted = False
        if measure > self.z:
            admitted = True
        else:
            self._credit += measure
            if self._credit > self.z:
                self._credit -= self.z
                admitted = True
        if admitted:
            if key is None:
                key = self._next_key
                self._next_key += 1
            self._samples[key] = SampledTuple(key, measure, self.z)
            self.admitted += 1
            if len(self._samples) > self.gamma * self.target:
                self._clean()
        return admitted

    def extend(self, measures: Iterable[float]) -> None:
        for measure in measures:
            self.offer(measure)

    # -- cleaning ------------------------------------------------------------------

    def _live_and_big(self) -> Tuple[int, int]:
        live = len(self._samples)
        big = sum(1 for s in self._samples.values() if s.measure > self.z)
        return live, big

    def _clean(self, target: Optional[int] = None) -> None:
        """Re-threshold and subsample (paper: adjust z, then subsample S)."""
        self.cleaning_phases += 1
        goal = target if target is not None else self.target
        live, big = self._live_and_big()
        z_prev = self.z
        if self.adjustment == "solve":
            weights = [max(s.measure, z_prev) for s in self._samples.values()]
            self.z = max(solve_threshold(weights, goal), z_prev)
        else:
            self.z = adjust_threshold(self.z, live, goal, big)
        if self.z <= z_prev:
            return
        survivors: Dict[Hashable, SampledTuple] = {}
        credit = 0.0
        for sample in self._samples.values():
            weight = max(sample.measure, z_prev)
            if weight > self.z:
                sample.floor = max(sample.floor, z_prev)
                survivors[sample.key] = sample
                continue
            credit += weight
            if credit > self.z:
                credit -= self.z
                sample.floor = max(sample.floor, z_prev)
                survivors[sample.key] = sample
        self._samples = survivors

    # -- window management -------------------------------------------------------------

    def close_window(self) -> WindowReport:
        """Final cleaning, report, and carryover into the next window.

        If the window *over*-collected, a final cleaning subsamples to the
        target (paper §4.4's last step).  If it *under*-collected and
        ``adjust_at_close`` is on, the threshold is re-estimated downward
        for the anticipated next window — and because the output
        threshold is read after this adjustment (paper §6.4: SELECT-clause
        stateful functions evaluate last), the window's estimate deflates
        by roughly ``live/target``.  This reconstruction reproduces the
        non-relaxed under-estimation of Fig 2; see DESIGN.md §4.
        """
        if len(self._samples) > self.target:
            self._clean(target=self.target)
        elif self.adjust_at_close and len(self._samples) < self.target:
            live, big = self._live_and_big()
            self.z = adjust_threshold(self.z, live, self.target, big)
        report = WindowReport(
            samples=list(self._samples.values()),
            z_final=self.z,
            cleaning_phases=self.cleaning_phases,
            admitted=self.admitted,
            estimated_sum=sum(
                s.adjusted_weight(self.z) for s in self._samples.values()
            ),
        )
        # Carryover (paper §4.4 + §7.1): next window's threshold starts at
        # the adapted value, divided by the relaxation factor.
        self.z = max(self.z / self.relax_factor, 1e-9)
        self._samples = {}
        self._credit = 0.0
        self.cleaning_phases = 0
        self.admitted = 0
        return report

    # -- introspection ---------------------------------------------------------------------

    @property
    def live_samples(self) -> int:
        return len(self._samples)

    def samples(self) -> List[SampledTuple]:
        return list(self._samples.values())


def estimate_sum(
    samples: Iterable[SampledTuple],
    z_final: float,
    predicate: Optional[Callable[[SampledTuple], bool]] = None,
) -> float:
    """Unbiased subset-sum estimate over samples matching ``predicate``."""
    total = 0.0
    for sample in samples:
        if predicate is None or predicate(sample):
            total += sample.adjusted_weight(z_final)
    return total
