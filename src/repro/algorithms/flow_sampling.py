"""Integrated flow aggregation + subset-sum sampling (paper §8).

The conclusion describes a production problem: computing flow statistics
as *two* queries (flow aggregation feeding a sampling query) fails when
the stream contains "a large number of small flows consisting of only a
few packets (e.g. during DDOS attacks)" — the aggregation query's group
table grows with the number of live flows and exhausts memory.  The fix
integrates flow aggregation with sampling in a single phase: "small flows
can be quickly sampled and purged from the group table", bounding memory
at γ·N flow entries regardless of the flow arrival rate.

Two implementations are provided:

* :class:`NaiveFlowAggregator` — the failing baseline: one group per
  flow, no eviction (memory is the number of distinct flows);
* :class:`SampledFlowAggregator` — the integrated version: the flow table
  doubles as the sample; when it exceeds γ·N entries a subset-sum
  cleaning phase re-thresholds on accumulated flow bytes and purges the
  flows that lose the lottery.

An evicted flow that receives further packets re-enters as a fresh
partial flow, so per-flow byte totals are estimated, not exact — the
price of bounded memory.  The window's total-byte estimate stays
accurate because every surviving entry carries its subset-sum adjusted
weight; tests quantify both properties on the DDoS trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.errors import ReproError
from repro.streams.records import Record
from repro.algorithms.subset_sum import solve_threshold

FlowKey = Tuple[int, int, int, int, int]


def flow_key(record: Record) -> FlowKey:
    """The standard 5-tuple flow key of a packet record."""
    return (
        record["srcIP"],
        record["destIP"],
        record["srcPort"],
        record["destPort"],
        record["protocol"],
    )


@dataclass
class FlowEntry:
    """One aggregated flow with its sampling floor."""

    key: FlowKey
    bytes: int
    packets: int
    first_seen: int
    last_seen: int
    #: Subset-sum weight floor: the flow has survived thresholds up to
    #: this value, so its adjusted weight is max(bytes, floor).
    floor: float = 0.0

    @property
    def adjusted_bytes(self) -> float:
        """Unbiased contribution of this sampled flow to byte sums."""
        return max(self.bytes, self.floor)


class NaiveFlowAggregator:
    """Plain per-flow aggregation: the baseline that blows up under DDoS.

    ``memory_limit`` models the exhaustion the paper describes: exceeding
    it raises :class:`ReproError` (Gigascope "exhausts the available
    memory, and fails").  Pass ``None`` to just measure the high-water
    mark.
    """

    def __init__(self, memory_limit: Optional[int] = None) -> None:
        self.flows: Dict[FlowKey, FlowEntry] = {}
        self.memory_limit = memory_limit
        self.peak_flows = 0

    def offer(self, record: Record) -> None:
        key = flow_key(record)
        entry = self.flows.get(key)
        now = record["time"]
        if entry is None:
            self.flows[key] = FlowEntry(key, record["len"], 1, now, now)
            self.peak_flows = max(self.peak_flows, len(self.flows))
            if self.memory_limit is not None and len(self.flows) > self.memory_limit:
                raise ReproError(
                    f"flow table exhausted: {len(self.flows)} flows exceed the"
                    f" memory limit of {self.memory_limit}"
                )
        else:
            entry.bytes += record["len"]
            entry.packets += 1
            entry.last_seen = now

    def close_window(self) -> List[FlowEntry]:
        flows = list(self.flows.values())
        self.flows = {}
        return flows


class SampledFlowAggregator:
    """Flow aggregation with in-table subset-sum sampling (paper §8).

    The flow table is simultaneously the aggregation state and the
    sample.  Cleaning triggers when the table exceeds ``gamma * target``:
    the threshold z is re-solved over the current flow byte weights and
    flows are resampled; survivors record the threshold they survived as
    their weight floor.  Memory is bounded by ``gamma * target + 1``
    entries at all times.
    """

    def __init__(
        self,
        target: int,
        gamma: float = 2.0,
        relax_factor: float = 10.0,
    ) -> None:
        if target <= 0:
            raise ReproError("target sample size must be positive")
        if gamma <= 1.0:
            raise ReproError("gamma must exceed 1")
        if relax_factor < 1.0:
            raise ReproError("relax_factor must be >= 1")
        self.target = target
        self.gamma = gamma
        self.relax_factor = relax_factor
        self.z = 0.0  # 0 = no thinning yet; first cleaning sets it
        self.flows: Dict[FlowKey, FlowEntry] = {}
        self.cleaning_phases = 0
        self.peak_flows = 0
        self._credit = 0.0

    # -- per-packet path -----------------------------------------------------

    def offer(self, record: Record) -> None:
        key = flow_key(record)
        entry = self.flows.get(key)
        now = record["time"]
        if entry is not None:
            entry.bytes += record["len"]
            entry.packets += 1
            entry.last_seen = now
        else:
            if not self._admit_new_flow(record["len"]):
                return
            self.flows[key] = FlowEntry(
                key, record["len"], 1, now, now, floor=self.z
            )
            self.peak_flows = max(self.peak_flows, len(self.flows))
            if len(self.flows) > self.gamma * self.target:
                self._clean()

    def _admit_new_flow(self, first_len: int) -> bool:
        """Threshold-sample brand-new flows once a threshold is in force.

        This is the "small flows can be quickly sampled and purged" trick:
        after the first cleaning, a new flow's first packet must win the
        subset-sum lottery at the current z before it may occupy a table
        entry at all.
        """
        if self.z <= 0.0:
            return True
        if first_len > self.z:
            return True
        self._credit += first_len
        if self._credit > self.z:
            self._credit -= self.z
            return True
        return False

    # -- cleaning ------------------------------------------------------------------

    def _clean(self, goal: Optional[int] = None) -> None:
        self.cleaning_phases += 1
        goal = goal if goal is not None else self.target
        z_prev = self.z
        weights = [max(f.bytes, f.floor) for f in self.flows.values()]
        self.z = max(solve_threshold(weights, goal), z_prev)
        if self.z <= z_prev and len(self.flows) <= self.gamma * self.target:
            return
        survivors: Dict[FlowKey, FlowEntry] = {}
        credit = 0.0
        for entry in self.flows.values():
            weight = max(entry.bytes, entry.floor)
            keep = False
            if weight > self.z:
                keep = True
            else:
                credit += weight
                if credit > self.z:
                    credit -= self.z
                    keep = True
            if keep:
                if weight <= self.z:
                    # Kept through the credit lottery: the entry now stands
                    # for z worth of small-flow traffic.
                    entry.floor = max(entry.floor, self.z)
                survivors[entry.key] = entry
        self.flows = survivors

    # -- window management -----------------------------------------------------------

    def close_window(self) -> List[FlowEntry]:
        """Final subsample to the target and report the flow sample."""
        if len(self.flows) > self.target:
            self._clean(goal=self.target)
        flows = list(self.flows.values())
        self.flows = {}
        self._credit = 0.0
        self.z = max(self.z / self.relax_factor, 0.0)
        return flows

    def estimated_total_bytes(self, flows: Iterable[FlowEntry]) -> float:
        """Unbiased estimate of total bytes from a window's flow sample."""
        return sum(max(f.bytes, f.floor) for f in flows)

    @property
    def live_flows(self) -> int:
        return len(self.flows)
