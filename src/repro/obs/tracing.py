"""Structured trace events for window, cleaning and supervision activity.

A :class:`TraceSink` records typed events; every event is a ``kind``
plus a flat field dict and a sink-assigned sequence number.  Events are
*logical*: they carry no wall-clock timestamps, so a trace of a
deterministic run is itself deterministic — which is what makes the
golden-file tests (tests/obs/test_trace_golden.py) possible.

Event kinds emitted by the runtime (field schema in
docs/OBSERVABILITY.md):

===================== =====================================================
kind                  emitted when
===================== =====================================================
window_open           a sampling/aggregation window opens
window_close          a window closes (carries the window's counters)
cleaning_trigger      CLEANING WHEN evaluated TRUE for a supergroup
group_evicted         CLEANING BY evicted one group
group_emitted         a group survived HAVING and was emitted
having_rejected       HAVING rejected a group at window close
supergroup_carryover  a new supergroup inherited SFUN state from the
                      previous window's matching supergroup
shed                  the runtime shed records at ring admission
shard_restart         the supervisor restarted a shard worker
shard_checkpoint      a shard checkpoint arrived at the supervisor
shard_replay          recovery replayed journalled batches into a shard
shard_shed            the supervisor shed a batch (queue overload)
===================== =====================================================

The default sink everywhere is :data:`NULL_TRACE`, whose ``emit`` is a
no-op — tracing costs nothing unless a real sink is attached.  Sinks
checkpoint/restore alongside operator state, so a supervised restart
neither loses nor duplicates events.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One typed event: sink-assigned seq, kind, and flat fields."""

    seq: int
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"seq": self.seq, "kind": self.kind}
        out.update(self.fields)
        return out

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, default=_jsonable)


def _jsonable(value: Any) -> Any:
    """JSON fallback: tuples render as lists via repr-free conversion."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return repr(value)


class TraceSink:
    """In-memory event recorder with JSONL serialisation.

    ``limit`` bounds memory on long runs: once reached, the oldest
    events are discarded and ``dropped_events`` counts the loss (the
    sink degrades the same way the runtime does — visibly).
    """

    enabled = True

    def __init__(self, limit: Optional[int] = None) -> None:
        self.events: List[TraceEvent] = []
        self.limit = limit
        self.dropped_events = 0
        self._next_seq = 0

    def emit(self, kind: str, **fields: Any) -> None:
        event = TraceEvent(seq=self._next_seq, kind=kind, fields=fields)
        self._next_seq += 1
        self.events.append(event)
        if self.limit is not None and len(self.events) > self.limit:
            overflow = len(self.events) - self.limit
            del self.events[:overflow]
            self.dropped_events += overflow

    def __len__(self) -> int:
        return len(self.events)

    def kinds(self) -> Dict[str, int]:
        """Event count per kind (a cheap trace summary)."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def lines(self) -> Iterator[str]:
        for event in self.events:
            yield event.to_json()

    def write_jsonl(self, path: str) -> int:
        """Write one JSON object per line; returns events written."""
        with open(path, "w", encoding="utf-8") as fh:
            for line in self.lines():
                fh.write(line + "\n")
        return len(self.events)

    # -- folding (sharded runtime) ----------------------------------------

    def absorb(self, events: List[TraceEvent], **extra_fields: Any) -> None:
        """Append another sink's events, re-sequencing and stamping extra
        fields (``shard=...``) so merged traces stay attributable."""
        for event in events:
            fields = dict(event.fields)
            fields.update(extra_fields)
            self.emit(event.kind, **fields)

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        return {
            "events": [(e.seq, e.kind, dict(e.fields)) for e in self.events],
            "next_seq": self._next_seq,
            "dropped": self.dropped_events,
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        self.events = [
            TraceEvent(seq=seq, kind=kind, fields=fields)
            for seq, kind, fields in snapshot["events"]
        ]
        self._next_seq = snapshot["next_seq"]
        self.dropped_events = snapshot["dropped"]


class NullTraceSink(TraceSink):
    """Do-nothing sink: the zero-overhead default."""

    enabled = False

    def emit(self, kind: str, **fields: Any) -> None:  # noqa: D102
        return

    def absorb(self, events: List[TraceEvent], **extra_fields: Any) -> None:  # noqa: D102
        return

    def checkpoint(self) -> Dict[str, Any]:  # noqa: D102
        return {"events": [], "next_seq": 0, "dropped": 0}

    def restore(self, snapshot: Dict[str, Any]) -> None:  # noqa: D102
        return


#: Shared no-op sink (safe to share: it never mutates).
NULL_TRACE = NullTraceSink()
