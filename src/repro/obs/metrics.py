"""Labelled metrics: counters, gauges, histograms, timers.

Design constraints, in order of importance:

1. **Hot-path cheapness** — operators resolve their series *once* (at
   bind time) into plain objects whose ``inc``/``set``/``observe`` are a
   couple of attribute writes; the registry's label hashing happens only
   at registration.
2. **Exact recovery** — :meth:`MetricsRegistry.checkpoint` /
   :meth:`MetricsRegistry.restore` snapshot and reinstate every series
   *in place*, so live references held by operators stay valid and a
   supervised shard restart resumes counting from the checkpoint without
   drift (replayed batches re-increment deterministically).
3. **Shard folding** — :meth:`MetricsRegistry.absorb` merges another
   registry's snapshot, optionally stamping extra labels (``shard=...``)
   on every absorbed series; counters and histogram buckets add, gauges
   take the maximum (a folded gauge answers "worst across shards", which
   is what backlog/peak-group gauges mean).

Series identity is ``(name, sorted label items)``.  A metric *name* has
one type (counter, gauge or histogram) across all label sets; mixing
types under one name raises.

Timing metrics — any series whose name ends in ``_seconds`` — are
inherently nondeterministic, so comparison helpers
(:meth:`MetricsRegistry.comparable_items`) exclude them; everything else
is exactly reproducible run-to-run for a fixed input.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError

LabelItems = Tuple[Tuple[str, str], ...]

#: Default latency buckets (seconds): ~100 µs to 10 s, log-spaced.
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default size buckets (bytes): 256 B to 16 MiB, powers of four.
BYTES_BUCKETS: Tuple[float, ...] = tuple(256 * 4**i for i in range(9))


def _label_items(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotone counter.  ``inc`` only; negative increments raise."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, by: int = 1) -> None:
        if by < 0:
            raise ReproError(f"counter {self.name} cannot decrease (by={by})")
        self.value += by

    def _state(self) -> Any:
        return self.value

    def _load(self, state: Any) -> None:
        self.value = state

    def _merge(self, state: Any) -> None:
        self.value += state


class Gauge:
    """Point-in-time value.  Folding across shards keeps the maximum."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, by: float = 1) -> None:
        self.value += by

    def _state(self) -> Any:
        return self.value

    def _load(self, state: Any) -> None:
        self.value = state

    def _merge(self, state: Any) -> None:
        self.value = max(self.value, state)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``
    *non-cumulatively* here (the exporter cumulates); the overflow bucket
    is ``bucket_counts[-1]`` (``+Inf``).
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "total", "count")

    kind = "histogram"

    def __init__(
        self, name: str, labels: LabelItems, bounds: Sequence[float]
    ) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(tuple(bounds)):
            raise ReproError(f"histogram {name}: bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def _state(self) -> Any:
        return (self.bounds, list(self.bucket_counts), self.total, self.count)

    def _load(self, state: Any) -> None:
        bounds, buckets, total, count = state
        self.bounds = tuple(bounds)
        self.bucket_counts = list(buckets)
        self.total = total
        self.count = count

    def _merge(self, state: Any) -> None:
        bounds, buckets, total, count = state
        if tuple(bounds) != self.bounds:
            raise ReproError(
                f"histogram {self.name}: cannot merge mismatched buckets"
            )
        for i, n in enumerate(buckets):
            self.bucket_counts[i] += n
        self.total += total
        self.count += count


class Timer:
    """Context manager observing wall time into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """All metric series of one runtime instance.

    Thread-unaware by design: the runtime is synchronous and sharded
    workers each own a private registry that the parent folds afterwards.
    """

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, LabelItems], Any] = {}
        self._types: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    # -- registration ------------------------------------------------------

    def _get(self, kind: str, name: str, labels: Dict[str, Any], help: Optional[str]):
        key = (name, _label_items(labels))
        series = self._series.get(key)
        if series is not None:
            if series.kind != kind:
                raise ReproError(
                    f"metric {name!r} is a {series.kind}, not a {kind}"
                )
            return series
        declared = self._types.setdefault(name, kind)
        if declared != kind:
            raise ReproError(f"metric {name!r} is a {declared}, not a {kind}")
        if help is not None:
            self._help.setdefault(name, help)
        return None

    def counter(self, name: str, help: Optional[str] = None, **labels: Any) -> Counter:
        series = self._get("counter", name, labels, help)
        if series is None:
            series = Counter(name, _label_items(labels))
            self._series[(name, series.labels)] = series
        return series

    def gauge(self, name: str, help: Optional[str] = None, **labels: Any) -> Gauge:
        series = self._get("gauge", name, labels, help)
        if series is None:
            series = Gauge(name, _label_items(labels))
            self._series[(name, series.labels)] = series
        return series

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        help: Optional[str] = None,
        **labels: Any,
    ) -> Histogram:
        series = self._get("histogram", name, labels, help)
        if series is None:
            if buckets is None:
                buckets = SECONDS_BUCKETS if name.endswith("_seconds") else BYTES_BUCKETS
            series = Histogram(name, _label_items(labels), buckets)
            self._series[(name, series.labels)] = series
        return series

    def timer(self, name: str, help: Optional[str] = None, **labels: Any) -> Timer:
        return Timer(self.histogram(name, help=help, **labels))

    def help_text(self, name: str) -> Optional[str]:
        return self._help.get(name)

    # -- reads -------------------------------------------------------------

    def value(self, name: str, default: Any = 0, **labels: Any) -> Any:
        """The value of one exact series (histograms: the count)."""
        series = self._series.get((name, _label_items(labels)))
        if series is None:
            return default
        if series.kind == "histogram":
            return series.count
        return series.value

    def total(self, name: str, **label_filter: Any) -> float:
        """Sum of a metric over every series matching the label filter.

        Filter labels must match exactly where given; unnamed labels are
        summed over — ``total("operator_tuples_in_total", query="q")``
        adds all shards of query ``q``.
        """
        want = {str(k): str(v) for k, v in label_filter.items()}
        out: float = 0
        for (series_name, labels), series in self._series.items():
            if series_name != name:
                continue
            have = dict(labels)
            if all(have.get(k) == v for k, v in want.items()):
                out += series.count if series.kind == "histogram" else series.value
        return out

    def series(self) -> Iterator[Any]:
        """All series, in deterministic (name, labels) order."""
        for key in sorted(self._series):
            yield self._series[key]

    def names(self) -> List[str]:
        return sorted(self._types)

    # -- snapshot / restore / fold ----------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Picklable snapshot of every series."""
        return {
            "types": dict(self._types),
            "help": dict(self._help),
            "series": [
                (name, list(labels), series.kind, series._state())
                for (name, labels), series in sorted(self._series.items())
            ],
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Reinstate a snapshot *in place*.

        Series objects already registered are mutated (never replaced),
        so references held by bound operators survive the restore; series
        present live but absent from the snapshot are zeroed.
        """
        self._types.update(snapshot["types"])
        self._help.update(snapshot["help"])
        seen = set()
        for name, labels, kind, state in snapshot["series"]:
            key = (name, tuple((k, v) for k, v in labels))
            seen.add(key)
            series = self._series.get(key)
            if series is None:
                series = _KINDS[kind](name, key[1]) if kind != "histogram" else (
                    Histogram(name, key[1], state[0])
                )
                self._series[key] = series
            series._load(state)
        for key, series in self._series.items():
            if key not in seen:
                _load_zero(series)

    def absorb(
        self,
        snapshot: Dict[str, Any],
        extra_labels: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Merge a snapshot from another registry (a shard's).

        ``extra_labels`` are stamped onto every absorbed series —
        ``absorb(worker_snap, extra_labels={"shard": 0})`` keeps shard
        series distinguishable while :meth:`total` still aggregates.
        """
        extra = _label_items(extra_labels or {})
        self._help.update(snapshot["help"])
        for name, labels, kind, state in snapshot["series"]:
            declared = self._types.setdefault(name, kind)
            if declared != kind:
                raise ReproError(f"metric {name!r} is a {declared}, not a {kind}")
            merged = tuple(sorted(dict(list(labels) + list(extra)).items()))
            key = (name, merged)
            series = self._series.get(key)
            if series is None:
                if kind == "histogram":
                    series = Histogram(name, merged, state[0])
                else:
                    series = _KINDS[kind](name, merged)
                self._series[key] = series
            series._merge(state)

    def reset(self) -> None:
        """Zero every series (shape is kept, references stay valid)."""
        for series in self._series.values():
            _load_zero(series)

    # -- comparison / export ----------------------------------------------

    def comparable_items(
        self, exclude_prefixes: Sequence[str] = ()
    ) -> List[Tuple[str, LabelItems, Any]]:
        """Deterministic (name, labels, value) triples for equality tests.

        Excludes timing series (``*_seconds``: wall time is never
        reproducible) and any name starting with one of
        ``exclude_prefixes``.
        """
        out = []
        for key in sorted(self._series):
            name, labels = key
            if name.endswith("_seconds"):
                continue
            if any(name.startswith(p) for p in exclude_prefixes):
                continue
            series = self._series[key]
            if series.kind == "histogram":
                out.append((name, labels, (series.count, series.total)))
            else:
                out.append((name, labels, series.value))
        return out

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable dump of every series (the --metrics-out shape)."""
        metrics: List[Dict[str, Any]] = []
        for series in self.series():
            entry: Dict[str, Any] = {
                "name": series.name,
                "type": series.kind,
                "labels": dict(series.labels),
            }
            if series.kind == "histogram":
                entry["buckets"] = [
                    {"le": bound, "count": count}
                    for bound, count in zip(series.bounds, series.bucket_counts)
                ]
                entry["buckets"].append(
                    {"le": "+Inf", "count": series.bucket_counts[-1]}
                )
                entry["sum"] = series.total
                entry["count"] = series.count
            else:
                entry["value"] = series.value
            metrics.append(entry)
        return {"metrics": metrics}


def _zero_state(series: Any) -> Any:
    if series.kind == "histogram":
        return (series.bounds, [0] * (len(series.bounds) + 1), 0.0, 0)
    return 0


def _load_zero(series: Any) -> None:
    series._load(_zero_state(series))
