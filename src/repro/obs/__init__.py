"""Observability layer: metrics registry, tracing, exporters.

The paper's evaluation (§7, Figures 2–6) is entirely observational —
CPU per sampling phase, cleaning-phase counts, samples per period, drop
rates under overload.  This package makes those quantities inspectable
on *any* query instead of only inside the benchmark scripts:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labelled
  counters, gauges and histograms, plus a :class:`Timer` for wall-time
  profiling.  Registries snapshot/restore with operator state (so
  supervised restarts keep counts exact) and fold across the sharded
  runtime's fork boundary.
* :mod:`repro.obs.tracing` — a :class:`TraceSink` of typed, determinstic
  events (window open/close, cleaning trigger, group eviction, emit /
  HAVING rejection, supergroup carryover, shard restart/checkpoint/
  replay, shed decisions) serialisable as JSONL.
* :mod:`repro.obs.export` — Prometheus-style text rendering and JSON
  dumping of a registry.

See docs/OBSERVABILITY.md for the metric catalogue and event schema.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.tracing import NULL_TRACE, NullTraceSink, TraceEvent, TraceSink
from repro.obs.export import render_prometheus, write_metrics, write_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "TraceEvent",
    "TraceSink",
    "NullTraceSink",
    "NULL_TRACE",
    "render_prometheus",
    "write_metrics",
    "write_trace",
]
