"""Exporters: Prometheus text format and JSON files.

``render_prometheus`` follows the text exposition format (the subset a
Prometheus scraper needs): one ``# HELP``/``# TYPE`` pair per metric
name, label escaping, and cumulative ``_bucket``/``_sum``/``_count``
series for histograms.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.metrics import MetricsRegistry


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(items, extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in items]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_number(value: Any) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every series in the Prometheus text exposition format."""
    lines = []
    last_name = None
    for series in registry.series():
        if series.name != last_name:
            help_text = registry.help_text(series.name)
            if help_text:
                lines.append(f"# HELP {series.name} {_escape(help_text)}")
            lines.append(f"# TYPE {series.name} {series.kind}")
            last_name = series.name
        if series.kind == "histogram":
            cumulative = 0
            for bound, count in zip(series.bounds, series.bucket_counts):
                cumulative += count
                le = 'le="' + _format_number(bound) + '"'
                lines.append(
                    f"{series.name}_bucket{_labels(series.labels, le)} {cumulative}"
                )
            cumulative += series.bucket_counts[-1]
            inf = 'le="+Inf"'
            lines.append(
                f"{series.name}_bucket{_labels(series.labels, inf)} {cumulative}"
            )
            lines.append(
                f"{series.name}_sum{_labels(series.labels)} {series.total!r}"
            )
            lines.append(
                f"{series.name}_count{_labels(series.labels)} {series.count}"
            )
        else:
            lines.append(
                f"{series.name}{_labels(series.labels)}"
                f" {_format_number(series.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(registry: MetricsRegistry, path: str) -> int:
    """Write a registry to ``path``: Prometheus text for ``.prom`` /
    ``.txt`` extensions, JSON otherwise.  Returns series written."""
    if path.endswith((".prom", ".txt")):
        content = render_prometheus(registry)
    else:
        content = json.dumps(registry.as_dict(), indent=2, sort_keys=True) + "\n"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content)
    return sum(1 for _ in registry.series())


def write_trace(sink, path: str) -> int:
    """Write a trace sink's events to ``path`` as JSONL; returns count."""
    return sink.write_jsonl(path)
