"""The three hash tables of the sampling-operator implementation.

Paper §6.4 maintains:

* **group table** — group-by key -> per-group aggregate structure;
* **supergroup table** (two copies, *old* and *new*) — supergroup key
  (excluding ordered variables, which are constant within a window) ->
  SFUN states and superaggregates.  The old copy holds last window's
  supergroups so new states can be initialised from them;
* **supergroup-group table** — supergroup key -> the set of group keys
  currently in that supergroup (the cleaning phase iterates it).

Keys are tuples of evaluated group-by variable values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.dsms.aggregates import Aggregate
from repro.dsms.stateful import StatefulState
from repro.core.superaggregates import SuperAggregate

GroupKey = Tuple[Any, ...]
SuperGroupKey = Tuple[Any, ...]


@dataclass
class GroupEntry:
    """One group: its key values and its aggregate vector."""

    key: GroupKey
    aggregates: List[Aggregate]
    supergroup_key: SuperGroupKey


@dataclass
class SuperGroupEntry:
    """One supergroup: SFUN states and superaggregate vector."""

    key: SuperGroupKey
    states: Dict[str, StatefulState]
    superaggregates: List[SuperAggregate]


class GroupTables:
    """Container bundling the tables with the swap/clear choreography."""

    def __init__(self) -> None:
        self.groups: Dict[GroupKey, GroupEntry] = {}
        self.new_supergroups: Dict[SuperGroupKey, SuperGroupEntry] = {}
        self.old_supergroups: Dict[SuperGroupKey, SuperGroupEntry] = {}
        # dict-as-ordered-set: group keys in insertion order per supergroup
        self.supergroup_groups: Dict[SuperGroupKey, Dict[GroupKey, None]] = {}

    def groups_of(self, supergroup_key: SuperGroupKey) -> List[GroupKey]:
        """Group keys currently registered under a supergroup."""
        return list(self.supergroup_groups.get(supergroup_key, ()))

    def add_group(self, entry: GroupEntry) -> None:
        self.groups[entry.key] = entry
        self.supergroup_groups.setdefault(entry.supergroup_key, {})[entry.key] = None

    def remove_group(self, group_key: GroupKey) -> Optional[GroupEntry]:
        """Drop a group from both the group table and its supergroup's set."""
        entry = self.groups.pop(group_key, None)
        if entry is not None:
            members = self.supergroup_groups.get(entry.supergroup_key)
            if members is not None:
                members.pop(group_key, None)
        return entry

    def end_window(self) -> None:
        """Paper §6.4: clear group tables, move new supergroups to old."""
        self.groups.clear()
        self.supergroup_groups.clear()
        self.old_supergroups = self.new_supergroups
        self.new_supergroups = {}

    @property
    def group_count(self) -> int:
        return len(self.groups)

    @property
    def supergroup_count(self) -> int:
        return len(self.new_supergroups)
