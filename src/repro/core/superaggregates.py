"""Superaggregates: aggregates of the supergroup rather than the group.

Paper §6.3: *"To be able to maintain superaggregate, we need to maintain
group aggregate of the same type.  When a new group is added or deleted
(as a result of the cleaning phase), we need to update the supergroup
aggregate by adding or subtracting the group aggregate value."*

Two feeding disciplines cover the paper's uses:

* **group-fed** (``feeds == "group"``): the superaggregate summarises one
  value per *group* (its argument evaluated against the group key).  Used
  by ``count_distinct$(*)`` (number of groups) and
  ``Kth_smallest_value$(HX, k)`` (kth smallest group-by value, the KMV
  threshold of the min-hash query).  Updated on group creation/eviction.

* **tuple-fed** (``feeds == "tuple"``): the superaggregate summarises a
  per-tuple value over all admitted tuples; it tracks each group's
  contribution internally so an evicted group's contribution can be
  subtracted exactly.  Used by ``sum$``/``count$``.

``value()`` may be read at any time: per-tuple in WHERE (min-hash),
per-trigger in CLEANING WHEN, per-group in HAVING/CLEANING BY, and in the
output SELECT list.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, RegistryError

GroupKey = Hashable


class SuperAggregate:
    """Base class.  Subclasses set ``feeds`` and override the hooks."""

    feeds: str = "group"  # or "tuple"

    def on_group_added(self, group_key: GroupKey, value: Any) -> None:
        """A new group joined the supergroup (group-fed only)."""

    def on_tuple(self, group_key: GroupKey, value: Any) -> None:
        """An admitted tuple contributed ``value`` (tuple-fed only)."""

    def on_group_removed(self, group_key: GroupKey, value: Any) -> None:
        """A group was evicted; ``value`` is its group-fed argument value
        (tuple-fed implementations use their internal contribution table
        and may ignore it)."""

    def value(self) -> Any:
        raise NotImplementedError


class CountDistinctSuper(SuperAggregate):
    """``count_distinct$(*)`` — the number of groups in the supergroup."""

    feeds = "group"

    def __init__(self) -> None:
        self._count = 0

    def on_group_added(self, group_key: GroupKey, value: Any) -> None:
        self._count += 1

    def on_group_removed(self, group_key: GroupKey, value: Any) -> None:
        self._count -= 1
        if self._count < 0:
            raise ExecutionError("count_distinct$ went negative: unbalanced eviction")

    def value(self) -> int:
        return self._count


class KthSmallestSuper(SuperAggregate):
    """``Kth_smallest_value$(x, k)`` — kth smallest group value of ``x``.

    While fewer than ``k`` groups exist the value is ``+inf`` so admission
    predicates of the form ``HX <= Kth_smallest_value$(HX, k)`` accept
    everything, exactly as KMV sampling requires.

    The sorted list is kept over *all* current group values (cleaning keeps
    the population near ``k``, so the list stays small); removal must
    handle arbitrary evicted values.
    """

    feeds = "group"

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ExecutionError(f"Kth_smallest_value$ needs k >= 1, got {k}")
        self.k = k
        self._values: List[Any] = []

    def on_group_added(self, group_key: GroupKey, value: Any) -> None:
        bisect.insort(self._values, value)

    def on_group_removed(self, group_key: GroupKey, value: Any) -> None:
        index = bisect.bisect_left(self._values, value)
        if index >= len(self._values) or self._values[index] != value:
            raise ExecutionError(
                f"Kth_smallest_value$: evicted value {value!r} was never added"
            )
        self._values.pop(index)

    def value(self) -> Any:
        if len(self._values) < self.k:
            return float("inf")
        return self._values[self.k - 1]


class SumSuper(SuperAggregate):
    """``sum$(x)`` — sum of ``x`` over all admitted tuples of live groups."""

    feeds = "tuple"

    def __init__(self) -> None:
        self._total: Any = 0
        self._contributions: Dict[GroupKey, Any] = {}

    def on_tuple(self, group_key: GroupKey, value: Any) -> None:
        self._total += value
        self._contributions[group_key] = self._contributions.get(group_key, 0) + value

    def on_group_removed(self, group_key: GroupKey, value: Any) -> None:
        contribution = self._contributions.pop(group_key, 0)
        self._total -= contribution

    def value(self) -> Any:
        return self._total


class CountSuper(SuperAggregate):
    """``count$(*)`` — tuples admitted into live groups."""

    feeds = "tuple"

    def __init__(self) -> None:
        self._total = 0
        self._contributions: Dict[GroupKey, int] = {}

    def on_tuple(self, group_key: GroupKey, value: Any) -> None:
        self._total += 1
        self._contributions[group_key] = self._contributions.get(group_key, 0) + 1

    def on_group_removed(self, group_key: GroupKey, value: Any) -> None:
        self._total -= self._contributions.pop(group_key, 0)

    def value(self) -> int:
        return self._total


class MaxSuper(SuperAggregate):
    """``max$(x)`` over live group values (recomputes after removal)."""

    feeds = "group"

    def __init__(self) -> None:
        self._values: List[Any] = []

    def on_group_added(self, group_key: GroupKey, value: Any) -> None:
        bisect.insort(self._values, value)

    def on_group_removed(self, group_key: GroupKey, value: Any) -> None:
        index = bisect.bisect_left(self._values, value)
        if index >= len(self._values) or self._values[index] != value:
            raise ExecutionError(f"max$: evicted value {value!r} was never added")
        self._values.pop(index)

    def value(self) -> Any:
        return self._values[-1] if self._values else None


class MinSuper(SuperAggregate):
    """``min$(x)`` over live group values."""

    feeds = "group"

    def __init__(self) -> None:
        self._values: List[Any] = []

    def on_group_added(self, group_key: GroupKey, value: Any) -> None:
        bisect.insort(self._values, value)

    def on_group_removed(self, group_key: GroupKey, value: Any) -> None:
        index = bisect.bisect_left(self._values, value)
        if index >= len(self._values) or self._values[index] != value:
            raise ExecutionError(f"min$: evicted value {value!r} was never added")
        self._values.pop(index)

    def value(self) -> Any:
        return self._values[0] if self._values else None


class AvgSuper(SuperAggregate):
    """``avg$(x)`` over all admitted tuples of live groups."""

    feeds = "tuple"

    def __init__(self) -> None:
        self._total: Any = 0
        self._count = 0
        self._contributions: Dict[GroupKey, Tuple[Any, int]] = {}

    def on_tuple(self, group_key: GroupKey, value: Any) -> None:
        self._total += value
        self._count += 1
        total, count = self._contributions.get(group_key, (0, 0))
        self._contributions[group_key] = (total + value, count + 1)

    def on_group_removed(self, group_key: GroupKey, value: Any) -> None:
        total, count = self._contributions.pop(group_key, (0, 0))
        self._total -= total
        self._count -= count

    def value(self) -> Optional[float]:
        if self._count == 0:
            return None
        return self._total / self._count


SuperAggregateFactory = Callable[[Sequence[Any]], SuperAggregate]


def _make_count_distinct(const_args: Sequence[Any]) -> SuperAggregate:
    return CountDistinctSuper()


def _make_kth_smallest(const_args: Sequence[Any]) -> SuperAggregate:
    if len(const_args) != 1:
        raise RegistryError(
            "Kth_smallest_value$(x, k) takes exactly one constant argument k"
        )
    return KthSmallestSuper(int(const_args[0]))


def _make_sum(const_args: Sequence[Any]) -> SuperAggregate:
    return SumSuper()


def _make_count(const_args: Sequence[Any]) -> SuperAggregate:
    return CountSuper()


def _make_max(const_args: Sequence[Any]) -> SuperAggregate:
    return MaxSuper()


def _make_min(const_args: Sequence[Any]) -> SuperAggregate:
    return MinSuper()


def _make_avg(const_args: Sequence[Any]) -> SuperAggregate:
    return AvgSuper()


class SuperAggregateRegistry:
    """Name -> factory registry.  Names are registered *without* the ``$``."""

    def __init__(self) -> None:
        self._factories: Dict[str, SuperAggregateFactory] = {}

    def register(
        self, name: str, factory: SuperAggregateFactory, replace: bool = False
    ) -> None:
        if name.endswith("$"):
            name = name[:-1]
        if not replace and name in self._factories:
            raise RegistryError(f"superaggregate {name!r} already registered")
        self._factories[name] = factory

    def __contains__(self, name: str) -> bool:
        return name.rstrip("$") in self._factories

    def create(self, name: str, const_args: Sequence[Any]) -> SuperAggregate:
        key = name.rstrip("$")
        try:
            factory = self._factories[key]
        except KeyError:
            raise RegistryError(f"unknown superaggregate {name!r}") from None
        return factory(const_args)

    def names(self) -> List[str]:
        return sorted(self._factories)

    def copy(self) -> "SuperAggregateRegistry":
        clone = SuperAggregateRegistry()
        clone._factories = dict(self._factories)
        return clone


def default_superaggregate_registry() -> SuperAggregateRegistry:
    registry = SuperAggregateRegistry()
    registry.register("count_distinct", _make_count_distinct)
    registry.register("Kth_smallest_value", _make_kth_smallest)
    registry.register("sum", _make_sum)
    registry.register("count", _make_count)
    registry.register("max", _make_max)
    registry.register("min", _make_min)
    registry.register("avg", _make_avg)
    return registry
