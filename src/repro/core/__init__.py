"""The paper's primary contribution: the generic stream sampling operator.

* :mod:`repro.core.superaggregates` — supergroup-level aggregates
  (``count_distinct$``, ``Kth_smallest_value$``, ``sum$`` ...), maintained
  incrementally as groups are added and evicted (paper §6.3).
* :mod:`repro.core.group_tables` — the three hash tables of the
  implementation (group, supergroup, supergroup-group) plus the old/new
  supergroup pair used for window-to-window state carryover (paper §6.4).
* :mod:`repro.core.sampling_operator` — the operator itself: per-tuple
  admission (WHERE), cleaning phases (CLEANING WHEN / CLEANING BY), window
  finalisation (HAVING) and output production (paper §5, §6.4).
"""

from repro.core.superaggregates import (
    SuperAggregate,
    CountDistinctSuper,
    KthSmallestSuper,
    SumSuper,
    CountSuper,
    MaxSuper,
    MinSuper,
    AvgSuper,
    SuperAggregateRegistry,
    default_superaggregate_registry,
)
from repro.core.group_tables import GroupEntry, SuperGroupEntry, GroupTables
from repro.core.sampling_operator import SamplingOperator

__all__ = [
    "SuperAggregate",
    "CountDistinctSuper",
    "KthSmallestSuper",
    "SumSuper",
    "CountSuper",
    "MaxSuper",
    "MinSuper",
    "AvgSuper",
    "SuperAggregateRegistry",
    "default_superaggregate_registry",
    "GroupEntry",
    "SuperGroupEntry",
    "GroupTables",
    "SamplingOperator",
]
