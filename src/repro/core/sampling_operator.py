"""The generic stream-sampling operator (paper §5 and §6.4).

Per-tuple evaluation, in the paper's order:

1. Evaluate the group-by expressions; the ordered ones form the window id.
   A change of window id closes the window: states get their
   ``on_window_final`` signal, HAVING filters the groups, survivors are
   emitted, tables are cleared and the new supergroup table becomes the
   old one.
2. Find or create the tuple's supergroup.  A new supergroup's SFUN states
   are initialised from the matching old-window supergroup when one
   exists (window-to-window carryover, e.g. the subset-sum threshold).
3. Evaluate WHERE (which may call SFUNs and read superaggregates).  FALSE
   discards the tuple.
4. Update tuple-fed superaggregates; find or create the group and update
   its aggregates; register new groups with group-fed superaggregates.
5. Evaluate CLEANING WHEN against the supergroup.  If TRUE, run a
   cleaning phase: evaluate CLEANING BY on every group of the supergroup
   and evict the groups for which it is FALSE (updating superaggregates).

The operator never blocks: output is produced at window boundaries (and
by :meth:`finish` for the trailing window).

Deviation note (documented in DESIGN.md): §6.4's prose contains a typo —
"If the condition evaluates to FALSE, then delete the group" appears
attached to CLEANING WHEN; deleting the current group whenever the
cleaning trigger is false would delete every group on every tuple.  We
follow §5's unambiguous statement: during a cleaning phase a group is
removed when **CLEANING BY evaluates to FALSE**.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.dsms.cost import CostModel, NULL_COST_MODEL
from repro.dsms.expr import (
    AggregateCall,
    EvalContext,
    Expr,
    StatefulCall,
    SuperAggregateCall,
    evaluate,
)
from repro.dsms.functions import FunctionRegistry
from repro.dsms.parser.planner import SamplingSpec
from repro.dsms.stateful import StatefulLibrary
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACE, TraceSink
from repro.core.group_tables import GroupEntry, GroupTables, SuperGroupEntry
from repro.streams.records import Record


@dataclass
class WindowStats:
    """Per-window observability counters (back the accuracy figures)."""

    window: Tuple[Any, ...]
    tuples_seen: int = 0
    tuples_admitted: int = 0
    groups_created: int = 0
    groups_evicted: int = 0
    cleaning_phases: int = 0
    output_tuples: int = 0
    #: Tuples whose window id ordered *before* the current window: they
    #: arrive after their window already closed and are dropped (the
    #: standard DSMS policy for streams whose ordered attribute is only
    #: approximately monotone; Gigascope marks time `increasing` and
    #: assumes the NIC delivers it that way).
    late_tuples: int = 0
    #: Tuples whose window id could not be compared with the current one
    #: (a ``TypeError``, e.g. a malformed string timestamp in an integer
    #: feed).  They are counted and dropped; treating them as a window
    #: change would destroy all in-window sampling state.
    incomparable_tuples: int = 0
    #: Tuples the runtime refused at admission during this window because
    #: the ring-buffer backlog crossed the load-shed threshold (the
    #: paper's drop-under-overload behavior, §1/§7, made deliberate and
    #: observable instead of arbitrary packet loss).
    shed_tuples: int = 0
    #: Tuples the runtime dead-lettered at admission during this window
    #: because they failed schema validation/coercion (malformed or
    #: corrupt input routed to the quarantine stream instead of raising
    #: mid-query).  Like shed tuples, they never reached the operator.
    quarantined_tuples: int = 0
    #: High-water mark of the group table during the window — the memory
    #: figure the paper's §8 flow-sampling discussion is about.
    peak_groups: int = 0


class _TupleContext(EvalContext):
    """WHERE-time context: raw columns, group-by variables, SFUNs,
    superaggregates."""

    def __init__(self, operator: "SamplingOperator") -> None:
        self._op = operator
        self.record: Optional[Record] = None
        self.gb_values: Tuple[Any, ...] = ()
        self.supergroup: Optional[SuperGroupEntry] = None

    def column(self, name: str) -> Any:
        # Prefer the record's own columns: for a plain-column group-by
        # variable the value is identical, and the group-by expressions
        # themselves are evaluated before gb_values exists.  Derived
        # variables (time/20 AS tb, H(destIP) AS HX) resolve via gb_values.
        assert self.record is not None
        if name in self.record.schema:
            return self.record[name]
        index = self._op._gb_index.get(name)
        if index is not None and self.gb_values:
            return self.gb_values[index]
        raise ExecutionError(f"column {name!r} not available at WHERE time")

    def call_scalar(self, name: str, args: Sequence[Any]) -> Any:
        self._op._charge("function_call")
        return self._op._scalars.call(name, args)

    def call_stateful(self, node: StatefulCall, args: Sequence[Any]) -> Any:
        self._op._charge("sfun_call")
        assert self.supergroup is not None
        return self._op._stateful.invoke(node.name, self.supergroup.states, args)

    def superaggregate_value(self, node: SuperAggregateCall) -> Any:
        assert self.supergroup is not None
        return self.supergroup.superaggregates[node.slot].value()


class _GroupContext(EvalContext):
    """Group-time context (CLEANING BY / HAVING / SELECT): group-by
    variable values, finalized aggregates, SFUNs, superaggregates."""

    def __init__(self, operator: "SamplingOperator") -> None:
        self._op = operator
        self.group: Optional[GroupEntry] = None
        self.supergroup: Optional[SuperGroupEntry] = None

    def column(self, name: str) -> Any:
        index = self._op._gb_index.get(name)
        if index is None:
            raise ExecutionError(
                f"column {name!r} is not a group-by variable"
            )
        assert self.group is not None
        return self.group.key[index]

    def call_scalar(self, name: str, args: Sequence[Any]) -> Any:
        self._op._charge("function_call")
        return self._op._scalars.call(name, args)

    def call_stateful(self, node: StatefulCall, args: Sequence[Any]) -> Any:
        self._op._charge("sfun_call")
        assert self.supergroup is not None
        return self._op._stateful.invoke(node.name, self.supergroup.states, args)

    def aggregate_value(self, node: AggregateCall) -> Any:
        assert self.group is not None
        return self.group.aggregates[node.slot].value()

    def superaggregate_value(self, node: SuperAggregateCall) -> Any:
        assert self.supergroup is not None
        return self.supergroup.superaggregates[node.slot].value()


class _SuperGroupContext(EvalContext):
    """CLEANING WHEN context: supergroup variables, SFUNs, superaggregates."""

    def __init__(self, operator: "SamplingOperator") -> None:
        self._op = operator
        self.supergroup: Optional[SuperGroupEntry] = None
        self.gb_values: Tuple[Any, ...] = ()

    def column(self, name: str) -> Any:
        index = self._op._gb_index.get(name)
        if index is None:
            raise ExecutionError(f"column {name!r} is not a group-by variable")
        return self.gb_values[index]

    def call_scalar(self, name: str, args: Sequence[Any]) -> Any:
        self._op._charge("function_call")
        return self._op._scalars.call(name, args)

    def call_stateful(self, node: StatefulCall, args: Sequence[Any]) -> Any:
        self._op._charge("sfun_call")
        assert self.supergroup is not None
        return self._op._stateful.invoke(node.name, self.supergroup.states, args)

    def superaggregate_value(self, node: SuperAggregateCall) -> Any:
        assert self.supergroup is not None
        return self.supergroup.superaggregates[node.slot].value()


class SamplingOperator:
    """Executable instance of one sampling query."""

    #: value of the ``operator`` label on this operator's metric series
    kind_label = "sampling"

    def __init__(
        self,
        spec: SamplingSpec,
        scalars: FunctionRegistry,
        stateful: StatefulLibrary,
        aggregate_factory,
        superaggregate_factory,
        cost_model: CostModel = NULL_COST_MODEL,
        account: str = "sampling",
    ) -> None:
        self.spec = spec
        self._scalars = scalars
        self._stateful = stateful
        self._aggregate_factory = aggregate_factory
        self._superaggregate_factory = superaggregate_factory
        self._cost = cost_model
        self._account = account

        self.output_schema = spec.output_schema
        self._gb_index = {item.name: i for i, item in enumerate(spec.group_by)}
        self._tables = GroupTables()
        self._current_window: Optional[Tuple[Any, ...]] = None
        self._window_stats: List[WindowStats] = []
        self._active_stats: Optional[WindowStats] = None
        #: shed tuples reported before any window is open (folded into the
        #: next window's stats)
        self._pending_shed = 0
        #: likewise for tuples dead-lettered at admission
        self._pending_quarantined = 0

        self._tuple_ctx = _TupleContext(self)
        self._group_ctx = _GroupContext(self)
        self._super_ctx = _SuperGroupContext(self)
        self.bind_obs(MetricsRegistry(), NULL_TRACE, account)

    # -- observability -----------------------------------------------------------
    #
    # SamplingOperator is not an Operator subclass (its push protocol
    # predates the operator base), but it speaks the same bind_obs
    # protocol so the runtime can re-bind it onto the instance-wide
    # registry.  Conservation identity (docs/OBSERVABILITY.md):
    #   in == filtered + admitted + late + incomparable
    #   groups_created == rows_out + groups_evicted + having_rejected

    def bind_obs(
        self, metrics: MetricsRegistry, trace: TraceSink, query: str
    ) -> None:
        """Attach metric series and the trace sink (see Operator.bind_obs)."""
        self.obs_metrics = metrics
        self.obs_trace = trace
        self.obs_query = query
        common = {"query": query, "operator": self.kind_label}
        self.m_in = metrics.counter(
            "operator_tuples_in_total",
            help="input tuples presented to the operator",
            **common,
        )
        self.m_filtered = metrics.counter(
            "operator_tuples_filtered_total",
            help="input tuples rejected by WHERE",
            **common,
        )
        self.m_admitted = metrics.counter(
            "operator_tuples_admitted_total",
            help="tuples that passed WHERE and fed a group",
            **common,
        )
        self.m_late = metrics.counter(
            "operator_late_tuples_total",
            help="tuples dropped because their window already closed",
            **common,
        )
        self.m_incomparable = metrics.counter(
            "operator_incomparable_tuples_total",
            help="tuples dropped because their window id was unorderable",
            **common,
        )
        self.m_shed = metrics.counter(
            "operator_shed_tuples_total",
            help="tuples shed upstream at admission (never reached process)",
            **common,
        )
        self.m_quarantined = metrics.counter(
            "operator_quarantined_tuples_total",
            help="tuples dead-lettered upstream at admission (malformed)",
            **common,
        )
        self.m_rows_out = metrics.counter(
            "operator_rows_out_total",
            help="output records emitted (per window for windowed operators)",
            **common,
        )
        self.m_windows = metrics.counter(
            "operator_windows_total", help="windows closed", **common
        )
        self.m_groups_created = metrics.counter(
            "operator_groups_created_total", help="group-table inserts", **common
        )
        self.m_groups_evicted = metrics.counter(
            "operator_groups_evicted_total",
            help="groups evicted by CLEANING BY during cleaning phases",
            **common,
        )
        self.m_having_rejected = metrics.counter(
            "operator_having_rejected_total",
            help="groups rejected by HAVING at window close",
            **common,
        )
        self.m_cleaning_phases = metrics.counter(
            "operator_cleaning_phases_total",
            help="cleaning phases triggered by CLEANING WHEN",
            **common,
        )
        self.m_carryover = metrics.counter(
            "operator_supergroup_carryover_total",
            help="supergroups whose SFUN states carried over from the old window",
            **common,
        )
        self.g_peak_groups = metrics.gauge(
            "operator_peak_groups",
            help="high-water mark of the group table",
            **common,
        )

    # -- public API -------------------------------------------------------------

    def process(self, record: Record) -> List[Record]:
        """Feed one input record; returns output records (non-empty only
        when this record closed a window)."""
        outputs: List[Record] = []
        self._charge("tuple_read")
        self.m_in.inc()
        self._tuple_ctx.record = record
        self._tuple_ctx.supergroup = None
        self._tuple_ctx.gb_values = ()

        gb_values = tuple(
            evaluate(item.expr, self._tuple_ctx) for item in self.spec.group_by
        )
        self._tuple_ctx.gb_values = gb_values
        window = tuple(gb_values[i] for i in self.spec.ordered_indices)

        if self._current_window is None:
            self._open_window(window)
        elif window != self._current_window:
            try:
                is_late = window < self._current_window
            except TypeError:
                # A malformed tuple whose window id cannot be ordered
                # against the current window must not close the window
                # (that would drop every live group and SFUN state).
                assert self._active_stats is not None
                self._active_stats.incomparable_tuples += 1
                self.m_incomparable.inc()
                return outputs
            if is_late:
                # The tuple's window already closed and was emitted; state
                # for it no longer exists.  Count and drop.
                assert self._active_stats is not None
                self._active_stats.late_tuples += 1
                self.m_late.inc()
                return outputs
            outputs = self._close_window()
            self._open_window(window)

        stats = self._active_stats
        assert stats is not None
        stats.tuples_seen += 1

        supergroup = self._lookup_supergroup(gb_values)
        self._tuple_ctx.supergroup = supergroup

        if self.spec.where is not None:
            self._charge("predicate_eval")
            if not evaluate(self.spec.where, self._tuple_ctx):
                self.m_filtered.inc()
                return outputs

        stats.tuples_admitted += 1
        self.m_admitted.inc()

        group_key = gb_values
        for sa_spec, sa in zip(self.spec.superaggregates, supergroup.superaggregates):
            if sa_spec.feeds == "tuple":
                value = evaluate(sa_spec.value_expr, self._tuple_ctx)
                sa.on_tuple(group_key, value)
                self._charge("aggregate_update")

        self._charge("hash_probe")
        group = self._tables.groups.get(group_key)
        is_new_group = group is None
        if is_new_group:
            group = GroupEntry(
                key=group_key,
                aggregates=[
                    self._aggregate_factory(node.name) for node in self.spec.aggregates
                ],
                supergroup_key=supergroup.key,
            )
            self._tables.add_group(group)
            stats.groups_created += 1
            self.m_groups_created.inc()
            if self._tables.group_count > stats.peak_groups:
                stats.peak_groups = self._tables.group_count
                self.g_peak_groups.set(
                    max(self.g_peak_groups.value, self._tables.group_count)
                )
            self._charge("hash_insert")
        for node, aggregate in zip(self.spec.aggregates, group.aggregates):
            arg = node.args[0] if node.args else None
            value = evaluate(arg, self._tuple_ctx) if arg is not None else 1
            aggregate.update(value)
            self._charge("aggregate_update")

        if is_new_group:
            # Register the brand-new group with the group-fed superaggregates.
            self._group_ctx.group = group
            self._group_ctx.supergroup = supergroup
            for sa_spec, sa in zip(
                self.spec.superaggregates, supergroup.superaggregates
            ):
                if sa_spec.feeds == "group":
                    value = evaluate(sa_spec.value_expr, self._group_ctx)
                    sa.on_group_added(group_key, value)
                    self._charge("aggregate_update")

        if self.spec.cleaning_when is not None:
            self._super_ctx.supergroup = supergroup
            self._super_ctx.gb_values = gb_values
            self._charge("predicate_eval")
            if evaluate(self.spec.cleaning_when, self._super_ctx):
                if self.obs_trace.enabled:
                    self.obs_trace.emit(
                        "cleaning_trigger",
                        query=self.obs_query,
                        window=list(self._current_window or ()),
                        supergroup=list(supergroup.key),
                    )
                self._run_cleaning_phase(supergroup)

        return outputs

    def run(self, records: Iterable[Record]) -> Iterator[Record]:
        """Process an entire stream, yielding outputs as windows close."""
        for record in records:
            for out in self.process(record):
                yield out
        for out in self.finish():
            yield out

    def finish(self) -> List[Record]:
        """Close the trailing window and return its output."""
        if self._current_window is None:
            return []
        outputs = self._close_window()
        self._current_window = None
        self._active_stats = None
        return outputs

    def flush(self) -> List[Record]:
        """Operator-protocol alias for :meth:`finish`."""
        return self.finish()

    @property
    def window_stats(self) -> List[WindowStats]:
        """Stats for all *closed* windows."""
        return list(self._window_stats)

    @property
    def tables(self) -> GroupTables:
        return self._tables

    def note_shed(self, count: int) -> None:
        """Record ``count`` input tuples shed upstream by the runtime's
        overload admission check (they never reached :meth:`process`)."""
        if self._active_stats is not None:
            self._active_stats.shed_tuples += count
        else:
            self._pending_shed += count
        self.m_shed.inc(count)

    def note_quarantined(self, count: int) -> None:
        """Record ``count`` input tuples dead-lettered upstream at
        admission (malformed input routed to the quarantine stream)."""
        if self._active_stats is not None:
            self._active_stats.quarantined_tuples += count
        else:
            self._pending_quarantined += count
        self.m_quarantined.inc(count)

    def overload_counters(self) -> Dict[str, int]:
        """Degradation counters over all windows (closed and active).

        These are the "did the sample quietly degrade?" numbers: tuples
        dropped because they arrived late, tuples with unorderable window
        ids, tuples shed at admission under overload, and tuples
        dead-lettered at admission as malformed.
        """
        stats = list(self._window_stats)
        if self._active_stats is not None:
            stats.append(self._active_stats)
        return {
            "late_tuples": sum(s.late_tuples for s in stats),
            "incomparable_tuples": sum(s.incomparable_tuples for s in stats),
            "shed_tuples": sum(s.shed_tuples for s in stats) + self._pending_shed,
            "quarantined_tuples": (
                sum(s.quarantined_tuples for s in stats)
                + self._pending_quarantined
            ),
        }

    # -- crash-recovery checkpoints -------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Picklable snapshot of the full operator state.

        Groups (aggregate vectors) and superaggregates deepcopy/pickle
        directly; SFUN states are snapshotted by *state name* plus field
        dict because their classes are closure-local inside the
        ``*_library`` factories (see ``StatefulState.checkpoint``).
        Group insertion order is preserved by the group list, which also
        reconstructs the supergroup-group table — the cleaning pass
        depends on visiting groups in arrival order.
        """

        def snap_supergroups(table: Dict[Any, SuperGroupEntry]) -> List[Tuple]:
            return [
                (
                    entry.key,
                    self._stateful.checkpoint_states(entry.states),
                    copy.deepcopy(entry.superaggregates),
                )
                for entry in table.values()
            ]

        return {
            "current_window": self._current_window,
            "window_stats": copy.deepcopy(self._window_stats),
            "active_stats": copy.deepcopy(self._active_stats),
            "pending_shed": self._pending_shed,
            "pending_quarantined": self._pending_quarantined,
            "groups": [
                (entry.key, copy.deepcopy(entry.aggregates), entry.supergroup_key)
                for entry in self._tables.groups.values()
            ],
            "new_supergroups": snap_supergroups(self._tables.new_supergroups),
            "old_supergroups": snap_supergroups(self._tables.old_supergroups),
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Reinstate a :meth:`checkpoint` snapshot on a fresh operator."""

        def rebuild(snaps: List[Tuple]) -> Dict[Any, SuperGroupEntry]:
            return {
                key: SuperGroupEntry(
                    key=key,
                    states=self._stateful.restore_states(states),
                    superaggregates=copy.deepcopy(superaggs),
                )
                for key, states, superaggs in snaps
            }

        tables = GroupTables()
        tables.new_supergroups = rebuild(snapshot["new_supergroups"])
        tables.old_supergroups = rebuild(snapshot["old_supergroups"])
        for key, aggregates, supergroup_key in snapshot["groups"]:
            tables.add_group(
                GroupEntry(
                    key=key,
                    aggregates=copy.deepcopy(aggregates),
                    supergroup_key=supergroup_key,
                )
            )
        self._tables = tables
        self._current_window = snapshot["current_window"]
        self._window_stats = copy.deepcopy(snapshot["window_stats"])
        self._active_stats = copy.deepcopy(snapshot["active_stats"])
        self._pending_shed = snapshot["pending_shed"]
        # Pre-quarantine snapshots lack the key.
        self._pending_quarantined = snapshot.get("pending_quarantined", 0)

    # -- internals -----------------------------------------------------------------

    def _charge(self, operation: str, count: int = 1) -> None:
        self._cost.charge(self._account, operation, count)

    def _open_window(self, window: Tuple[Any, ...]) -> None:
        self._current_window = window
        self._active_stats = WindowStats(window=window)
        if self._pending_shed:
            self._active_stats.shed_tuples = self._pending_shed
            self._pending_shed = 0
        if self._pending_quarantined:
            self._active_stats.quarantined_tuples = self._pending_quarantined
            self._pending_quarantined = 0
        if self.obs_trace.enabled:
            self.obs_trace.emit(
                "window_open", query=self.obs_query, window=list(window)
            )

    def _lookup_supergroup(self, gb_values: Tuple[Any, ...]) -> SuperGroupEntry:
        key = tuple(gb_values[i] for i in self.spec.nonordered_supergroup_indices)
        self._charge("hash_probe")
        entry = self._tables.new_supergroups.get(key)
        if entry is not None:
            return entry
        old_entry = self._tables.old_supergroups.get(key)
        old_states = old_entry.states if old_entry is not None else None
        if old_entry is not None:
            self.m_carryover.inc()
            if self.obs_trace.enabled:
                self.obs_trace.emit(
                    "supergroup_carryover",
                    query=self.obs_query,
                    window=list(self._current_window or ()),
                    supergroup=list(key),
                )
        states = self._stateful.instantiate_states(self.spec.state_names, old_states)
        superaggs = [
            self._superaggregate_factory(sa.name, sa.const_args)
            for sa in self.spec.superaggregates
        ]
        entry = SuperGroupEntry(key=key, states=states, superaggregates=superaggs)
        self._tables.new_supergroups[key] = entry
        self._charge("hash_insert")
        return entry

    def _run_cleaning_phase(self, supergroup: SuperGroupEntry) -> None:
        stats = self._active_stats
        assert stats is not None
        stats.cleaning_phases += 1
        self.m_cleaning_phases.inc()
        self._charge("cleaning_phase")
        self._group_ctx.supergroup = supergroup
        for group_key in self._tables.groups_of(supergroup.key):
            group = self._tables.groups.get(group_key)
            if group is None:
                continue
            self._group_ctx.group = group
            self._charge("cleaning_per_group")
            keep = (
                True
                if self.spec.cleaning_by is None
                else bool(evaluate(self.spec.cleaning_by, self._group_ctx))
            )
            if not keep:
                self._evict_group(group, supergroup)
                stats.groups_evicted += 1
                self.m_groups_evicted.inc()
                if self.obs_trace.enabled:
                    self.obs_trace.emit(
                        "group_evicted",
                        query=self.obs_query,
                        window=list(self._current_window or ()),
                        group=list(group.key),
                    )

    def _evict_group(self, group: GroupEntry, supergroup: SuperGroupEntry) -> None:
        self._group_ctx.group = group
        self._group_ctx.supergroup = supergroup
        for sa_spec, sa in zip(self.spec.superaggregates, supergroup.superaggregates):
            if sa_spec.feeds == "group":
                value = evaluate(sa_spec.value_expr, self._group_ctx)
                sa.on_group_removed(group.key, value)
            else:
                sa.on_group_removed(group.key, None)
        self._tables.remove_group(group.key)
        self._charge("hash_delete")

    def _close_window(self) -> List[Record]:
        stats = self._active_stats
        assert stats is not None
        self._charge("window_flush")

        # 1. Signal window end to every state (paper: final_init()).
        for supergroup in self._tables.new_supergroups.values():
            for state in supergroup.states.values():
                state.on_window_final()

        # 2. HAVING filters groups; survivors are emitted.
        outputs: List[Record] = []
        for group_key in list(self._tables.groups.keys()):
            group = self._tables.groups.get(group_key)
            if group is None:
                continue
            supergroup = self._tables.new_supergroups[group.supergroup_key]
            self._group_ctx.group = group
            self._group_ctx.supergroup = supergroup
            if self.spec.having is not None:
                self._charge("predicate_eval")
                if not evaluate(self.spec.having, self._group_ctx):
                    self._evict_group(group, supergroup)
                    self.m_having_rejected.inc()
                    if self.obs_trace.enabled:
                        self.obs_trace.emit(
                            "having_rejected",
                            query=self.obs_query,
                            window=list(stats.window),
                            group=list(group.key),
                        )
                    continue
            values = [
                evaluate(item.expr, self._group_ctx) for item in self.spec.select_items
            ]
            outputs.append(Record(self.spec.output_schema, values))
            self._charge("output_tuple")
            if self.obs_trace.enabled:
                self.obs_trace.emit(
                    "group_emitted",
                    query=self.obs_query,
                    window=list(stats.window),
                    group=list(group.key),
                )

        stats.output_tuples = len(outputs)
        self._window_stats.append(stats)
        self.m_windows.inc()
        self.m_rows_out.inc(len(outputs))
        if self.obs_trace.enabled:
            self.obs_trace.emit(
                "window_close",
                query=self.obs_query,
                window=list(stats.window),
                rows_out=len(outputs),
                groups_created=stats.groups_created,
                groups_evicted=stats.groups_evicted,
                cleaning_phases=stats.cleaning_phases,
            )

        # 3. Swap tables (paper §6.4).
        self._tables.end_window()
        return outputs
