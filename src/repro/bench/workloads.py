"""Experiment workloads: materialised, reusable traces.

Accuracy experiments use the bursty research-center feed ("its high
variability will tend to emphasize estimation problems", paper §7);
performance experiments use the steady data-center feed ("its low
variability and high data rate make measurements much more consistent").

Traces are materialised once per (kind, seed, duration) and replayed, so
every configuration of an experiment sees byte-identical input — the
equivalent of the paper running query variants simultaneously on one tap.

``rate_scale`` shrinks packet counts so experiments run in Python time;
the cost model normalises CPU%% by the *scaled* stream duration
(``duration * rate_scale`` seconds of full-rate traffic), keeping the
per-packet arithmetic identical to the full-rate feed.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.streams.records import Record
from repro.streams.traces import TraceConfig, data_center_feed, research_center_feed

#: The paper's accuracy experiments use 20-second windows (§7.1).
ACCURACY_WINDOW_SECONDS = 20
#: Performance runs also report per-period numbers over 20 s windows.
PERFORMANCE_WINDOW_SECONDS = 20

_cache: Dict[Tuple[str, int, int, float], List[Record]] = {}


def accuracy_trace(
    duration_seconds: int = 300,
    rate_scale: float = 0.01,
    seed: int = 20050614,
) -> List[Record]:
    """Bursty research-center trace (materialised, cached)."""
    key = ("accuracy", seed, duration_seconds, rate_scale)
    if key not in _cache:
        config = TraceConfig(
            duration_seconds=duration_seconds, rate_scale=rate_scale, seed=seed
        )
        _cache[key] = list(research_center_feed(config))
    return _cache[key]


def performance_trace(
    duration_seconds: int = 60,
    rate_scale: float = 0.01,
    seed: int = 20050614,
) -> List[Record]:
    """Steady data-center trace (materialised, cached)."""
    key = ("performance", seed, duration_seconds, rate_scale)
    if key not in _cache:
        config = TraceConfig(
            duration_seconds=duration_seconds, rate_scale=rate_scale, seed=seed
        )
        _cache[key] = list(data_center_feed(config))
    return _cache[key]


def stream_seconds(duration_seconds: int, rate_scale: float) -> float:
    """Full-rate stream time represented by a scaled trace.

    A trace generated at ``rate_scale`` carries ``rate_scale`` times the
    packets of the full-rate feed, so for CPU%% normalisation it stands
    for ``duration * rate_scale`` seconds of full-rate traffic.
    """
    return duration_seconds * rate_scale
