"""Experiment runners: one Gigascope instance per configuration.

Each runner replays a materialised trace through a fresh DSMS instance
(so cost accounts and SFUN states are isolated) and distils the operator
and cost-model observables the figures plot.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dsms.cost import CostModel
from repro.dsms.runtime import Gigascope
from repro.streams.records import Record
from repro.streams.schema import TCP_SCHEMA
from repro.algorithms.bindings import (
    BASIC_SUBSET_SUM_QUERY,
    PREFILTER_QUERY,
    basic_subset_sum_library,
    subset_sum_library,
    subset_sum_query,
)
from repro.bench.workloads import stream_seconds


@dataclass
class SubsetSumRun:
    """Distilled result of one dynamic subset-sum configuration."""

    label: str
    target: int
    window_seconds: int
    #: window id -> estimated sum of packet lengths
    estimates: Dict[int, float]
    #: window id -> tuples admitted into the sample during the window
    admitted: Dict[int, int]
    #: window id -> cleaning phases run during the window
    cleanings: Dict[int, int]
    #: window id -> output (final sample) size
    outputs: Dict[int, int]
    #: cost-model CPU%% of the sampling query node (None if not measured)
    cpu_percent: Optional[float] = None
    #: cost-model CPU%% of the low-level feeder node
    low_level_cpu_percent: Optional[float] = None

    def windows(self) -> List[int]:
        return sorted(self.estimates)


def _new_instance(with_cost: bool) -> Gigascope:
    gs = Gigascope(cost_model=CostModel() if with_cost else None)
    gs.register_stream(TCP_SCHEMA)
    return gs


def run_actual_sums(
    trace: Sequence[Record], window_seconds: int
) -> Dict[int, float]:
    """Exact per-window sum(len): the paper's "actual" series (Fig 2)."""
    gs = _new_instance(with_cost=False)
    query = gs.add_query(
        f"SELECT tb, sum(len) FROM TCP GROUP BY time/{window_seconds} as tb",
        name="actual",
    )
    gs.run(iter(trace))
    return {row[0]: row[1] for row in query.results}


def run_subset_sum(
    trace: Sequence[Record],
    target: int,
    window_seconds: int,
    relax_factor: float,
    gamma: float = 2.0,
    adjustment: str = "solve",
    adjust_at_close: bool = True,
    measure_cost: bool = False,
    trace_duration_seconds: Optional[int] = None,
    rate_scale: Optional[float] = None,
    label: Optional[str] = None,
) -> SubsetSumRun:
    """Run the §6.1 dynamic subset-sum query over a trace."""
    gs = _new_instance(with_cost=measure_cost)
    gs.use_stateful_library(
        subset_sum_library(
            relax_factor=relax_factor,
            gamma=gamma,
            adjustment=adjustment,
            adjust_at_close=adjust_at_close,
        )
    )
    query = gs.add_query(
        subset_sum_query(window=window_seconds, target=target), name="ss"
    )
    gs.run(iter(trace))

    estimates: Dict[int, float] = defaultdict(float)
    outputs: Dict[int, int] = defaultdict(int)
    for row in query.results:
        estimates[row[0]] += row[3]
        outputs[row[0]] += 1
    admitted = {ws.window[0]: ws.tuples_admitted for ws in query.operator.window_stats}
    cleanings = {ws.window[0]: ws.cleaning_phases for ws in query.operator.window_stats}

    cpu = low_cpu = None
    if measure_cost:
        if trace_duration_seconds is None or rate_scale is None:
            raise ValueError("cost measurement needs trace duration and rate_scale")
        seconds = stream_seconds(trace_duration_seconds, rate_scale)
        cpu = gs.cpu_percent("ss", seconds)
        low_cpu = gs.cpu_percent("ss__lowsel", seconds)

    return SubsetSumRun(
        label=label or f"relax={relax_factor}",
        target=target,
        window_seconds=window_seconds,
        estimates=dict(estimates),
        admitted=admitted,
        cleanings=cleanings,
        outputs=dict(outputs),
        cpu_percent=cpu,
        low_level_cpu_percent=low_cpu,
    )


def run_basic_subset_sum(
    trace: Sequence[Record],
    z: float,
    trace_duration_seconds: int,
    rate_scale: float,
) -> Tuple[int, float]:
    """Basic subset-sum as a selection UDF (Fig 5's baseline).

    Returns (sampled tuple count, CPU%% of the selection node).
    """
    gs = _new_instance(with_cost=True)
    gs.use_stateful_library(basic_subset_sum_library())
    query = gs.add_query(
        BASIC_SUBSET_SUM_QUERY.format(z=z), name="basic", keep_results=False
    )
    gs.run(iter(trace))
    seconds = stream_seconds(trace_duration_seconds, rate_scale)
    state = query.operator.states["basic_subsetsum_state"]
    return state.sampled, gs.cpu_percent("basic", seconds)


def run_prefiltered_subset_sum(
    trace: Sequence[Record],
    target: int,
    window_seconds: int,
    prefilter_z: float,
    relax_factor: float,
    trace_duration_seconds: int,
    rate_scale: float,
) -> SubsetSumRun:
    """Fig 6's improved plan: a basic-SS low-level subquery feeds the
    dynamic subset-sum sampling query."""
    gs = _new_instance(with_cost=True)
    gs.use_stateful_library(basic_subset_sum_library())
    gs.use_stateful_library(subset_sum_library(relax_factor=relax_factor))
    gs.add_query(
        PREFILTER_QUERY.format(z=prefilter_z), name="pre", keep_results=False
    )
    query = gs.add_query(
        subset_sum_query(window=window_seconds, target=target, stream="pre"),
        name="ss",
    )
    gs.run(iter(trace))

    estimates: Dict[int, float] = defaultdict(float)
    outputs: Dict[int, int] = defaultdict(int)
    for row in query.results:
        estimates[row[0]] += row[3]
        outputs[row[0]] += 1
    admitted = {ws.window[0]: ws.tuples_admitted for ws in query.operator.window_stats}
    cleanings = {ws.window[0]: ws.cleaning_phases for ws in query.operator.window_stats}
    seconds = stream_seconds(trace_duration_seconds, rate_scale)
    return SubsetSumRun(
        label=f"prefilter z={prefilter_z:g}",
        target=target,
        window_seconds=window_seconds,
        estimates=dict(estimates),
        admitted=admitted,
        cleanings=cleanings,
        outputs=dict(outputs),
        cpu_percent=gs.cpu_percent("ss", seconds),
        low_level_cpu_percent=gs.cpu_percent("pre", seconds),
    )
