"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Any, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned text table (the benches print these)."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}" if abs(value) < 10 else f"{value:.2f}"
    return str(value)
