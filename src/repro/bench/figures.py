"""Per-figure reproductions of the paper's §7 evaluation.

Each ``figureN`` function is deterministic, takes size knobs so the same
code serves quick benchmark runs and full reproductions, and returns a
result object with a ``to_text()`` rendering of the series the paper
plots.  EXPERIMENTS.md records a full run next to the paper's claims.

Scaling notes (see DESIGN.md §3): accuracy experiments replay the bursty
feed at 1/100 rate with proportionally smaller sample targets — every
quantity the figures compare is a per-window *ratio*, which rate scaling
preserves.  CPU experiments run the steady feed at full per-second packet
density over short spans, so per-packet cost arithmetic matches the
paper's 100 kpps operating point exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import (
    SubsetSumRun,
    run_actual_sums,
    run_basic_subset_sum,
    run_prefiltered_subset_sum,
    run_subset_sum,
)
from repro.bench.reporting import format_table
from repro.bench.workloads import (
    ACCURACY_WINDOW_SECONDS,
    accuracy_trace,
    performance_trace,
)

# ---------------------------------------------------------------------------
# Figures 2-4: accuracy, samples per period, cleaning phases
# ---------------------------------------------------------------------------


@dataclass
class AccuracyResult:
    """Shared result for Figs 2-4: per-window series for both variants."""

    windows: List[int]
    actual: Dict[int, float]
    relaxed: SubsetSumRun
    nonrelaxed: SubsetSumRun
    target: int

    # -- figure 2 --------------------------------------------------------------

    def estimate_ratio(self, run: SubsetSumRun) -> Dict[int, float]:
        return {
            w: (run.estimates.get(w, 0.0) / self.actual[w]) if self.actual[w] else 0.0
            for w in self.windows
        }

    def to_text(self) -> str:
        relaxed_ratio = self.estimate_ratio(self.relaxed)
        nonrelaxed_ratio = self.estimate_ratio(self.nonrelaxed)
        rows = [
            (
                w,
                self.actual[w],
                self.relaxed.estimates.get(w, 0.0),
                self.nonrelaxed.estimates.get(w, 0.0),
                relaxed_ratio[w],
                nonrelaxed_ratio[w],
            )
            for w in self.windows
        ]
        return format_table(
            ["window", "actual", "est(relaxed)", "est(nonrelaxed)",
             "ratio(rel)", "ratio(nonrel)"],
            rows,
        )

    def samples_to_text(self) -> str:
        rows = [
            (
                w,
                self.target,
                self.relaxed.admitted.get(w, 0),
                self.nonrelaxed.admitted.get(w, 0),
                self.relaxed.outputs.get(w, 0),
                self.nonrelaxed.outputs.get(w, 0),
            )
            for w in self.windows
        ]
        return format_table(
            ["window", "target", "admitted(rel)", "admitted(nonrel)",
             "final(rel)", "final(nonrel)"],
            rows,
        )

    def cleanings_to_text(self) -> str:
        rows = [
            (w, self.relaxed.cleanings.get(w, 0), self.nonrelaxed.cleanings.get(w, 0))
            for w in self.windows
        ]
        return format_table(["window", "cleanings(rel)", "cleanings(nonrel)"], rows)


def _accuracy_experiment(
    target: int,
    duration_seconds: int,
    rate_scale: float,
    relax_factor: float = 10.0,
    seed: int = 20050614,
) -> AccuracyResult:
    trace = accuracy_trace(duration_seconds, rate_scale, seed)
    window = ACCURACY_WINDOW_SECONDS
    actual = run_actual_sums(trace, window)
    relaxed = run_subset_sum(
        trace, target, window, relax_factor=relax_factor, label="relaxed"
    )
    nonrelaxed = run_subset_sum(
        trace, target, window, relax_factor=1.0, label="nonrelaxed"
    )
    return AccuracyResult(
        windows=sorted(actual),
        actual=actual,
        relaxed=relaxed,
        nonrelaxed=nonrelaxed,
        target=target,
    )


def figure2(
    target: int = 200,
    duration_seconds: int = 300,
    rate_scale: float = 0.02,
    seed: int = 20050614,
) -> AccuracyResult:
    """Fig 2: accuracy of summation, actual vs estimated, per window.

    Paper claim: non-relaxed under-estimates on many windows (those after
    sharp load drops); relaxed (f=10) matches the actual sum closely.
    """
    return _accuracy_experiment(target, duration_seconds, rate_scale, seed=seed)


def figure3(**kwargs) -> AccuracyResult:
    """Fig 3: samples collected per period.

    Paper claim: relaxed occasionally over-samples (admissions above the
    target, later cleaned); non-relaxed frequently under-samples.
    """
    return figure2(**kwargs)


def figure4(**kwargs) -> AccuracyResult:
    """Fig 4: cleaning phases per period.

    Paper claim: after warm-up, relaxed runs ~4 cleaning phases per
    window, non-relaxed ~1.
    """
    return figure2(**kwargs)


# ---------------------------------------------------------------------------
# Figure 5: CPU usage vs samples per period
# ---------------------------------------------------------------------------


@dataclass
class CpuUsageResult:
    """Fig 5: CPU%% of each variant at each samples-per-period target."""

    targets: List[int]
    relaxed: Dict[int, float]
    nonrelaxed: Dict[int, float]
    basic: Dict[int, float]
    low_level: Dict[int, float]

    def to_text(self) -> str:
        rows = [
            (
                t,
                self.relaxed[t],
                self.nonrelaxed[t],
                self.basic[t],
                self.low_level[t],
            )
            for t in self.targets
        ]
        return format_table(
            ["samples/period", "SS relaxed %", "SS nonrelaxed %",
             "basic SS %", "low-level sel %"],
            rows,
        )


def figure5(
    targets: Sequence[int] = (100, 1000, 10000),
    duration_seconds: int = 4,
    window_seconds: int = 1,
    seed: int = 20050614,
) -> CpuUsageResult:
    """Fig 5: CPU usage for sampling, steady 100 kpps feed.

    Paper claims: the sampling operator costs only ~3-5%% more CPU than a
    basic-subset-sum selection; the relaxed variant costs at most ~2%%
    over non-relaxed; the low-level selection feeding them costs ~60%% of
    a CPU (memory copies).
    """
    trace = performance_trace(duration_seconds, rate_scale=1.0, seed=seed)
    total_len = sum(r["len"] for r in trace)
    windows = max(1, duration_seconds // window_seconds)

    relaxed: Dict[int, float] = {}
    nonrelaxed: Dict[int, float] = {}
    basic: Dict[int, float] = {}
    low_level: Dict[int, float] = {}
    for target in targets:
        for relax, out in ((10.0, relaxed), (1.0, nonrelaxed)):
            run = run_subset_sum(
                trace,
                target,
                window_seconds,
                relax_factor=relax,
                measure_cost=True,
                trace_duration_seconds=duration_seconds,
                rate_scale=1.0,
            )
            out[target] = run.cpu_percent or 0.0
            if relax == 10.0:
                low_level[target] = run.low_level_cpu_percent or 0.0
        # Basic subset-sum selection producing ~target samples per window.
        z = total_len / windows / target
        _, cpu = run_basic_subset_sum(trace, z, duration_seconds, rate_scale=1.0)
        basic[target] = cpu
    return CpuUsageResult(
        targets=list(targets),
        relaxed=relaxed,
        nonrelaxed=nonrelaxed,
        basic=basic,
        low_level=low_level,
    )


# ---------------------------------------------------------------------------
# Figure 6: effect of the low-level query type
# ---------------------------------------------------------------------------


@dataclass
class LowLevelResult:
    """Fig 6: dynamic-SS CPU%% under each low-level feeding plan."""

    targets: List[int]
    selection_fed: Dict[int, float]
    prefilter_fed: Dict[int, float]
    selection_low_cpu: float
    prefilter_low_cpu: Dict[int, float]

    def to_text(self) -> str:
        rows = [
            (
                t,
                self.selection_fed[t],
                self.prefilter_fed[t],
                self.selection_low_cpu,
                self.prefilter_low_cpu[t],
            )
            for t in self.targets
        ]
        return format_table(
            ["samples/period", "SS% (selection subquery)",
             "SS% (basic-SS subquery)", "low-level sel %",
             "low-level basic-SS %"],
            rows,
        )


def figure6(
    targets: Sequence[int] = (100, 1000, 10000),
    duration_seconds: int = 4,
    window_seconds: int = 1,
    seed: int = 20050614,
) -> LowLevelResult:
    """Fig 6: a basic-SS low-level subquery (threshold 1/10th of the
    dynamic level) collapses both the low-level cost (~60%% -> ~4%%) and
    the sampler's own cost."""
    trace = performance_trace(duration_seconds, rate_scale=1.0, seed=seed)
    total_len = sum(r["len"] for r in trace)
    windows = max(1, duration_seconds // window_seconds)

    selection_fed: Dict[int, float] = {}
    prefilter_fed: Dict[int, float] = {}
    prefilter_low: Dict[int, float] = {}
    selection_low = 0.0
    for target in targets:
        run = run_subset_sum(
            trace,
            target,
            window_seconds,
            relax_factor=10.0,
            measure_cost=True,
            trace_duration_seconds=duration_seconds,
            rate_scale=1.0,
        )
        selection_fed[target] = run.cpu_percent or 0.0
        selection_low = run.low_level_cpu_percent or 0.0
        z_dynamic = total_len / windows / target
        pre = run_prefiltered_subset_sum(
            trace,
            target,
            window_seconds,
            prefilter_z=z_dynamic / 10.0,
            relax_factor=10.0,
            trace_duration_seconds=duration_seconds,
            rate_scale=1.0,
        )
        prefilter_fed[target] = pre.cpu_percent or 0.0
        prefilter_low[target] = pre.low_level_cpu_percent or 0.0
    return LowLevelResult(
        targets=list(targets),
        selection_fed=selection_fed,
        prefilter_fed=prefilter_fed,
        selection_low_cpu=selection_low,
        prefilter_low_cpu=prefilter_low,
    )


# ---------------------------------------------------------------------------
# In-text experiments and ablations
# ---------------------------------------------------------------------------


@dataclass
class SweepResult:
    """A labelled family of accuracy summaries (mean |1 - est/actual|)."""

    label: str
    rows: List[Tuple]
    headers: List[str]

    def to_text(self) -> str:
        return format_table(self.headers, self.rows)


def _mean_abs_error(result: AccuracyResult, run: SubsetSumRun) -> float:
    ratios = result.estimate_ratio(run)
    # Skip the warm-up window: both variants start from a cold threshold.
    usable = [w for w in result.windows[1:]]
    if not usable:
        usable = result.windows
    return sum(abs(1.0 - ratios[w]) for w in usable) / len(usable)


def accuracy_sweep(
    targets: Sequence[int] = (20, 200, 2000),
    duration_seconds: int = 300,
    rate_scale: float = 0.02,
) -> SweepResult:
    """§7.1 in-text: repeating the accuracy experiment at 100 / 1 000 /
    10 000 samples per period gives "nearly identical results"."""
    rows = []
    for target in targets:
        result = _accuracy_experiment(target, duration_seconds, rate_scale)
        rows.append(
            (
                target,
                _mean_abs_error(result, result.relaxed),
                _mean_abs_error(result, result.nonrelaxed),
            )
        )
    return SweepResult(
        label="accuracy-sweep",
        headers=["samples/period", "mean |err| relaxed", "mean |err| nonrelaxed"],
        rows=rows,
    )


def gamma_sweep(
    gammas: Sequence[float] = (1.5, 2.0, 4.0, 8.0),
    target: int = 1000,
    duration_seconds: int = 4,
    window_seconds: int = 1,
) -> SweepResult:
    """§7.2 in-text: CPU load depends only weakly on the cleaning trigger γ."""
    trace = performance_trace(duration_seconds, rate_scale=1.0)
    rows = []
    for gamma in gammas:
        run = run_subset_sum(
            trace,
            target,
            window_seconds,
            relax_factor=10.0,
            gamma=gamma,
            measure_cost=True,
            trace_duration_seconds=duration_seconds,
            rate_scale=1.0,
        )
        total_cleanings = sum(run.cleanings.values())
        rows.append((gamma, run.cpu_percent or 0.0, total_cleanings))
    return SweepResult(
        label="gamma-sweep",
        headers=["gamma", "SS relaxed CPU %", "total cleanings"],
        rows=rows,
    )


def ablation_relax_factor(
    factors: Sequence[float] = (1.0, 2.0, 5.0, 10.0, 30.0, 100.0),
    target: int = 200,
    duration_seconds: int = 300,
    rate_scale: float = 0.02,
) -> SweepResult:
    """Relaxation-factor ablation: accuracy vs cleaning cost."""
    trace = accuracy_trace(duration_seconds, rate_scale)
    actual = run_actual_sums(trace, ACCURACY_WINDOW_SECONDS)
    windows = sorted(actual)
    rows = []
    for factor in factors:
        run = run_subset_sum(
            trace, target, ACCURACY_WINDOW_SECONDS, relax_factor=factor
        )
        usable = windows[1:] or windows
        err = sum(
            abs(1.0 - (run.estimates.get(w, 0.0) / actual[w])) for w in usable
        ) / len(usable)
        cleanings = sum(run.cleanings.values()) / max(1, len(windows))
        rows.append((factor, err, cleanings))
    return SweepResult(
        label="relax-factor-ablation",
        headers=["relax factor f", "mean |err|", "cleanings/window"],
        rows=rows,
    )


def ablation_adjustment(
    target: int = 200,
    duration_seconds: int = 300,
    rate_scale: float = 0.02,
) -> SweepResult:
    """Exact re-threshold solve vs the paper's aggressive rule.

    The aggressive rule can overshoot when B ≈ M (DESIGN.md §4); this
    ablation quantifies the resulting under-collection.
    """
    trace = accuracy_trace(duration_seconds, rate_scale)
    actual = run_actual_sums(trace, ACCURACY_WINDOW_SECONDS)
    windows = sorted(actual)
    rows = []
    for adjustment in ("solve", "aggressive"):
        run = run_subset_sum(
            trace,
            target,
            ACCURACY_WINDOW_SECONDS,
            relax_factor=10.0,
            adjustment=adjustment,
        )
        usable = windows[1:] or windows
        err = sum(
            abs(1.0 - (run.estimates.get(w, 0.0) / actual[w])) for w in usable
        ) / len(usable)
        short = sum(
            1 for w in usable if run.outputs.get(w, 0) < 0.9 * target
        )
        rows.append((adjustment, err, short))
    return SweepResult(
        label="adjustment-ablation",
        headers=["rule", "mean |err|", "windows short of target"],
        rows=rows,
    )


def ablation_prefilter(
    fractions: Sequence[float] = (1.0, 0.5, 0.2, 0.1, 0.02),
    target: int = 1000,
    duration_seconds: int = 4,
    window_seconds: int = 1,
) -> SweepResult:
    """Low-level prefilter threshold sweep (the paper fixes 1/10).

    Smaller prefilter thresholds forward more tuples (higher low-level
    recall, more copies); larger ones risk starving the dynamic sampler.
    """
    trace = performance_trace(duration_seconds, rate_scale=1.0)
    total_len = sum(r["len"] for r in trace)
    windows = max(1, duration_seconds // window_seconds)
    z_dynamic = total_len / windows / target
    rows = []
    for fraction in fractions:
        pre = run_prefiltered_subset_sum(
            trace,
            target,
            window_seconds,
            prefilter_z=z_dynamic * fraction,
            relax_factor=10.0,
            trace_duration_seconds=duration_seconds,
            rate_scale=1.0,
        )
        mean_output = sum(pre.outputs.values()) / max(1, len(pre.outputs))
        rows.append(
            (
                fraction,
                pre.low_level_cpu_percent or 0.0,
                pre.cpu_percent or 0.0,
                mean_output,
            )
        )
    return SweepResult(
        label="prefilter-ablation",
        headers=["z_pre / z_dyn", "low-level CPU %", "SS CPU %",
                 "mean final samples"],
        rows=rows,
    )
