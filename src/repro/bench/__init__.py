"""Benchmark harness reproducing the paper's §7 evaluation.

One entry point per figure (plus the in-text experiments):

========================  ====================================================
:func:`figures.figure2`   Accuracy of summation (actual vs relaxed vs
                          non-relaxed estimates per 20 s window)
:func:`figures.figure3`   Samples collected per period
:func:`figures.figure4`   Cleaning phases per period
:func:`figures.figure5`   CPU%% vs samples/period for SS-relaxed,
                          SS-non-relaxed and basic-SS selection
:func:`figures.figure6`   CPU%% of the dynamic sampler with a plain
                          selection vs a basic-SS low-level subquery
:func:`figures.accuracy_sweep`   §7.1 repeat at 100 / 1 000 / 10 000 samples
:func:`figures.gamma_sweep`      §7.2 γ-sensitivity study
:func:`figures.ablation_relax_factor`  relaxation-factor ablation
:func:`figures.ablation_adjustment`    solve-vs-aggressive re-threshold rule
:func:`figures.ablation_prefilter`     low-level prefilter threshold sweep
========================  ====================================================

Every function is deterministic (seeded traces) and returns a structured
result object whose ``to_text()`` renders the series the paper plots.
"""

from repro.bench.workloads import (
    accuracy_trace,
    performance_trace,
    ACCURACY_WINDOW_SECONDS,
    PERFORMANCE_WINDOW_SECONDS,
)
from repro.bench.harness import (
    SubsetSumRun,
    run_actual_sums,
    run_subset_sum,
    run_basic_subset_sum,
    run_prefiltered_subset_sum,
)
from repro.bench import figures

__all__ = [
    "accuracy_trace",
    "performance_trace",
    "ACCURACY_WINDOW_SECONDS",
    "PERFORMANCE_WINDOW_SECONDS",
    "SubsetSumRun",
    "run_actual_sums",
    "run_subset_sum",
    "run_basic_subset_sum",
    "run_prefiltered_subset_sum",
    "figures",
]
