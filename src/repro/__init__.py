"""repro — reproduction of "Sampling Algorithms in a Stream Operator"
(Johnson, Muthukrishnan, Rozenbaum; SIGMOD 2005).

The package provides, from the bottom up:

* :mod:`repro.streams` — stream schemas, records and synthetic network
  feeds standing in for the paper's live AT&T taps;
* :mod:`repro.dsms` — a Gigascope-like DSMS: ring buffer, GSQL-subset
  query language (with ``SUPERGROUP`` / ``CLEANING WHEN`` / ``CLEANING
  BY``), UDAFs, stateful functions, a two-level low/high query runtime,
  and a cycle-cost model for the CPU-usage experiments;
* :mod:`repro.core` — the paper's contribution: the generic stream
  sampling operator with groups, supergroups and superaggregates;
* :mod:`repro.algorithms` — reservoir sampling, Manku–Motwani heavy
  hitters, min-hash/KMV, subset-sum sampling (basic / dynamic / relaxed)
  and Greenwald–Khanna quantiles, each as a standalone class and (where
  applicable) as an SFUN pack runnable inside the operator;
* :mod:`repro.bench` — the harness regenerating every figure of the
  paper's §7 evaluation.

Quick start::

    from repro import Gigascope, TCP_SCHEMA, research_center_feed
    from repro.algorithms import subset_sum_library, SUBSET_SUM_QUERY

    gs = Gigascope()
    gs.register_stream(TCP_SCHEMA)
    gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
    query = gs.add_query(SUBSET_SUM_QUERY.format(window=20, target=1000))
    gs.run(research_center_feed())
    for row in query.results[:5]:
        print(row)
"""

from repro.errors import ReproError
from repro.streams import (
    Attribute,
    Ordering,
    Record,
    StreamSchema,
    PKT_SCHEMA,
    TCP_SCHEMA,
    TraceConfig,
    research_center_feed,
    data_center_feed,
    ddos_feed,
)
from repro.dsms import Gigascope, ShardedGigascope, CostModel, CostBook, RingBuffer
from repro.core import SamplingOperator

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "Attribute",
    "Ordering",
    "Record",
    "StreamSchema",
    "PKT_SCHEMA",
    "TCP_SCHEMA",
    "TraceConfig",
    "research_center_feed",
    "data_center_feed",
    "ddos_feed",
    "Gigascope",
    "ShardedGigascope",
    "CostModel",
    "CostBook",
    "RingBuffer",
    "SamplingOperator",
    "__version__",
]
