"""``python -m repro`` — regenerate the paper's evaluation tables.

Delegates to the same per-figure entry points as
``scripts/run_experiments.py`` but with smaller default sizes so a first
run finishes in ~30 seconds.  Pass ``--full`` for reproduction scale.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import figures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the SIGMOD 2005 sampling-operator figures.",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at full reproduction scale (~2 minutes)",
    )
    args = parser.parse_args(argv)

    if args.full:
        acc_kwargs = dict(target=200, duration_seconds=300, rate_scale=0.02)
        cpu_kwargs = dict(targets=(100, 1000, 10000), duration_seconds=3)
    else:
        acc_kwargs = dict(target=100, duration_seconds=120, rate_scale=0.01)
        cpu_kwargs = dict(targets=(100, 1000), duration_seconds=1)

    acc = figures.figure2(**acc_kwargs)
    print("=== Figure 2: accuracy of summation ===")
    print(acc.to_text())
    print("\n=== Figure 3: samples per period ===")
    print(acc.samples_to_text())
    print("\n=== Figure 4: cleaning phases per period ===")
    print(acc.cleanings_to_text())

    print("\n=== Figure 5: CPU usage for sampling (cost model) ===")
    print(figures.figure5(**cpu_kwargs).to_text())

    print("\n=== Figure 6: effect of low-level query type (cost model) ===")
    print(figures.figure6(**cpu_kwargs).to_text())
    return 0


if __name__ == "__main__":
    sys.exit(main())
